"""Hand-optimized baselines that bypass the Zen language layer."""

from .batfish_acl import BatfishAclEncoder, find_packet_matching_last_line

__all__ = ["BatfishAclEncoder", "find_packet_matching_last_line"]
