"""A hand-optimized, direct-to-BDD ACL verifier (the "Batfish" baseline).

Figure 10 (left) compares Zen's automatically generated BDD encoding
against Batfish's hand-optimized BDD encoding of ACLs.  This module is
that baseline: it bypasses the Zen language entirely and encodes ACL
matching straight into BDD operations with the classic tricks —

* one BDD variable per header bit, MSB first, fields laid out
  ``dst_ip, src_ip, dst_port, src_port, protocol``;
* prefixes as linear-size cubes over the top bits;
* port intervals via the standard recursive range construction
  (linear in the bit width, not in the interval size);
* first-match-wins fold with a running "not matched earlier" BDD.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd
from ..core.budget import start_meter
from ..network.acl import Acl, AclRule
from ..network.packet import Header

_FIELDS = (
    ("dst_ip", 32),
    ("src_ip", 32),
    ("dst_port", 16),
    ("src_port", 16),
    ("protocol", 8),
)


class BatfishAclEncoder:
    """Encodes an ACL into BDDs over a dedicated manager."""

    def __init__(self, budget=None) -> None:
        self.manager = Bdd()
        meter = start_meter(budget)
        if meter is not None:
            self.manager.set_budget(meter)
        self._field_vars: Dict[str, List[int]] = {}
        for name, width in _FIELDS:
            # MSB-first var order within each field: prefix matches
            # constrain a contiguous leading block of variables.
            indices = []
            for _ in range(width):
                self.manager.new_var()
                indices.append(self.manager.num_vars - 1)
            self._field_vars[name] = indices

    # ------------------------------------------------------------------
    # Primitive encodings
    # ------------------------------------------------------------------

    def field_vars(self, name: str) -> List[int]:
        """MSB-first variable indices of a header field."""
        return list(self._field_vars[name])

    def prefix_bdd(self, field: str, address: int, length: int) -> int:
        """BDD for ``field matches address/length`` (a cube)."""
        variables = self._field_vars[field]
        width = len(variables)
        literals = {
            variables[i]: bool((address >> (width - 1 - i)) & 1)
            for i in range(length)
        }
        return self.manager.cube(literals)

    def range_bdd(self, field: str, low: int, high: int) -> int:
        """BDD for ``low <= field <= high`` (linear in bit width)."""
        variables = self._field_vars[field]
        width = len(variables)
        return self.manager.and_(
            self._geq(variables, low, width),
            self._leq(variables, high, width),
        )

    def _geq(self, variables: List[int], bound: int, width: int) -> int:
        # Build from LSB to MSB: geq_i = value of comparing suffix.
        manager = self.manager
        result = 1  # empty suffix: >= 0 residue is true (equality case)
        for i in reversed(range(width)):
            bit = (bound >> (width - 1 - i)) & 1
            var = manager.var(variables[i])
            if bit:
                result = manager.and_(var, result)
            else:
                result = manager.or_(var, result)
        return result

    def _leq(self, variables: List[int], bound: int, width: int) -> int:
        manager = self.manager
        result = 1
        for i in reversed(range(width)):
            bit = (bound >> (width - 1 - i)) & 1
            var = manager.var(variables[i])
            if bit:
                result = manager.or_(manager.not_(var), result)
            else:
                result = manager.and_(manager.not_(var), result)
        return result

    def rule_bdd(self, rule: AclRule) -> int:
        """BDD for one rule's match condition."""
        conjuncts = [
            self.prefix_bdd("src_ip", rule.src.address, rule.src.length),
            self.prefix_bdd("dst_ip", rule.dst.address, rule.dst.length),
        ]
        if rule.src_ports is not None:
            conjuncts.append(self.range_bdd("src_port", *rule.src_ports))
        if rule.dst_ports is not None:
            conjuncts.append(self.range_bdd("dst_port", *rule.dst_ports))
        if rule.protocol is not None:
            conjuncts.append(
                self.range_bdd("protocol", rule.protocol, rule.protocol)
            )
        return self.manager.and_many(conjuncts)

    # ------------------------------------------------------------------
    # ACL-level queries
    # ------------------------------------------------------------------

    def match_line_bdds(self, acl: Acl) -> List[int]:
        """Per-line BDDs of packets whose *first* match is that line."""
        manager = self.manager
        unmatched = 1  # packets that fell through all earlier lines
        result = []
        for rule in acl.rules:
            match = self.rule_bdd(rule)
            result.append(manager.and_(unmatched, match))
            unmatched = manager.and_(unmatched, manager.not_(match))
        return result

    def allowed_bdd(self, acl: Acl) -> int:
        """BDD of all packets the ACL permits."""
        return self.manager.or_many(
            line
            for line, rule in zip(self.match_line_bdds(acl), acl.rules)
            if rule.action
        )

    def decode(self, assignment: Dict[int, bool]) -> Header:
        """Decode a BDD assignment into a concrete header."""
        values = {}
        for name, width in _FIELDS:
            variables = self._field_vars[name]
            value = 0
            for i in range(width):
                value = (value << 1) | int(assignment.get(variables[i], False))
            values[name] = value
        return Header(**values)


def find_packet_matching_last_line(
    acl: Acl, budget=None
) -> Optional[Header]:
    """The Figure-10 query: a packet whose first match is the last line.

    Returns a concrete header, or None when the last line is dead.
    `budget` bounds the whole encode-and-solve (the baseline plays by
    the same resource-governance rules as the Zen pipeline it is
    compared against).
    """
    encoder = BatfishAclEncoder(budget=budget)
    lines = encoder.match_line_bdds(acl)
    target = lines[-1]
    assignment = encoder.manager.any_sat(target)
    if assignment is None:
        return None
    return encoder.decode(assignment)
