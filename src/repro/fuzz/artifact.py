"""Structured JSON repro artifacts for fuzz-farm failures.

An artifact is the complete, self-contained record of one confirmed
failure: the original scenario, the minimized scenario, the failure
signature and detail, every backend's verdict/witness, the
counterexample input, the per-attempt service records and telemetry
profiles (when the failure surfaced through the query engine), and
the generator coordinates needed to regenerate everything from
scratch.  ``python -m repro.fuzz replay <artifact.json>`` re-runs the
oracle on the minimized scenario and must reproduce the same failure
signature — artifacts are the farm's contract with the human who
triages them later, possibly on another machine.

Concrete model inputs (witnesses, counterexamples) are encoded as
tagged JSON (``{"_type": "Header", ...}``) so the decoded objects are
bit-for-bit the dataclasses the evaluators consume.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network.packet import Header, Packet
from ..network.routemap import Route

__all__ = [
    "ARTIFACT_VERSION",
    "artifact_path",
    "build_artifact",
    "decode_inputs",
    "encode_inputs",
    "load_artifact",
    "write_artifact",
]

ARTIFACT_VERSION = 1


# ----------------------------------------------------------------------
# Concrete input encoding
# ----------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, Header):
        return {
            "_type": "Header",
            "dst_ip": value.dst_ip,
            "src_ip": value.src_ip,
            "dst_port": value.dst_port,
            "src_port": value.src_port,
            "protocol": value.protocol,
        }
    if isinstance(value, Packet):
        return {
            "_type": "Packet",
            "overlay_header": _encode_value(value.overlay_header),
            "underlay_header": (
                None
                if value.underlay_header is None
                else _encode_value(value.underlay_header)
            ),
        }
    if isinstance(value, Route):
        return {
            "_type": "Route",
            "prefix": value.prefix,
            "prefix_len": value.prefix_len,
            "local_pref": value.local_pref,
            "med": value.med,
            "as_path": list(value.as_path),
            "communities": list(value.communities),
        }
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into an artifact")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "_type" in value:
        tag = value["_type"]
        if tag == "Header":
            return Header(
                dst_ip=value["dst_ip"],
                src_ip=value["src_ip"],
                dst_port=value["dst_port"],
                src_port=value["src_port"],
                protocol=value["protocol"],
            )
        if tag == "Packet":
            return Packet(
                overlay_header=_decode_value(value["overlay_header"]),
                underlay_header=(
                    None
                    if value["underlay_header"] is None
                    else _decode_value(value["underlay_header"])
                ),
            )
        if tag == "Route":
            return Route(
                prefix=value["prefix"],
                prefix_len=value["prefix_len"],
                local_pref=value["local_pref"],
                med=value["med"],
                as_path=list(value["as_path"]),
                communities=list(value["communities"]),
            )
        raise TypeError(f"unknown artifact value tag {tag!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_inputs(inputs: Optional[Sequence[Any]]) -> Optional[List[Any]]:
    """Encode a concrete input tuple for JSON storage."""
    if inputs is None:
        return None
    return [_encode_value(v) for v in inputs]


def decode_inputs(data: Optional[Sequence[Any]]) -> Optional[Tuple[Any, ...]]:
    """Rebuild a concrete input tuple from its JSON encoding."""
    if data is None:
        return None
    return tuple(_decode_value(v) for v in data)


# ----------------------------------------------------------------------
# Artifact assembly
# ----------------------------------------------------------------------


def build_artifact(
    report: Any,
    minimized: Dict[str, Any],
    *,
    shrink_info: Optional[Dict[str, Any]] = None,
    farm: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON artifact for a failing :class:`OracleReport`.

    ``report`` is the (confirmed) failure, ``minimized`` the shrunk
    scenario, ``shrink_info`` the shrink statistics, and ``farm``
    free-form campaign metadata (seed, counts, budget).
    """
    attempts: Dict[str, List[Dict[str, Any]]] = {}
    profiles: Dict[str, Optional[Dict[str, Any]]] = {}
    disagreement = getattr(report, "disagreement", None)
    if disagreement is not None:
        for backend, records in disagreement.attempts_by_backend.items():
            attempts[backend] = [dataclasses.asdict(r) for r in records]
        for backend, profile in disagreement.profiles.items():
            profiles[backend] = (
                dataclasses.asdict(profile) if profile is not None else None
            )
    return {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "fuzz-failure",
        "created_unix": time.time(),
        "signature": list(report.signature or ()),
        "detail": report.detail,
        "mode": report.mode,
        "scenario": report.scenario,
        "minimized": minimized,
        "verdicts": dict(report.verdicts),
        "witnesses": {
            backend: encode_inputs(witness)
            for backend, witness in report.witnesses.items()
        },
        "counterexample": encode_inputs(report.counterexample),
        "probes_checked": report.probes_checked,
        "attempts": attempts,
        "profiles": profiles,
        "shrink": dict(shrink_info or {}),
        "farm": dict(farm or {}),
    }


def artifact_path(directory: str, artifact: Dict[str, Any]) -> str:
    """The canonical filename for an artifact in ``directory``."""
    scenario = artifact.get("minimized") or artifact.get("scenario") or {}
    signature = "-".join(artifact.get("signature") or ["failure"])
    name = (
        f"fuzz-s{scenario.get('seed', 0)}-i{scenario.get('index', 0)}"
        f"-{signature.replace('_', '-')}.json"
    )
    return os.path.join(directory, name)


def write_artifact(path: str, artifact: Dict[str, Any]) -> str:
    """Write an artifact to ``path`` (creating parent directories)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    """Read an artifact back; raises ValueError on schema mismatch."""
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or artifact.get("kind") != "fuzz-failure":
        raise ValueError(f"{path} is not a fuzz-failure artifact")
    version = artifact.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"{path} has artifact_version {version!r}, expected "
            f"{ARTIFACT_VERSION}"
        )
    return artifact
