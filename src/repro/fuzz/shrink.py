"""Delta-debugging shrinker for failing fuzz scenarios.

Given a failing scenario and a ``failing(candidate) -> bool`` predicate
(does the candidate reproduce the *same failure signature*?),
:func:`shrink_scenario` greedily searches for a smaller scenario that
still fails.  The search is ddmin-flavoured:

* **structural removal** — drop chunks of every rule/clause/device
  list, largest chunks first, halving the chunk size as removals stop
  sticking;
* **scalar simplification** — null out optional match/action fields
  (port ranges, protocol, tunnel endpoints, per-interface ACLs, ...),
  zero or halve integers;
* **AST hoisting** — replace a random-Zen-program node with one of its
  own subtrees, or with a terminal leaf.

Every candidate is validated against the scenario schema first (free)
and only then run through the caller's oracle (expensive, counted
against ``max_checks``), so the proposal grammar can be aggressive.
Everything is deterministic: proposals are enumerated in a fixed
order, so the same failing scenario always minimizes to the same
artifact.  On a scenario that is already minimal the shrinker returns
it unchanged — which also makes shrinking idempotent.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from .scenario import validate_scenario

__all__ = ["scenario_size", "shrink_scenario"]

#: Dict keys whose list values hold independently-removable elements.
_REMOVABLE_LISTS = (
    "rules",
    "acl",
    "clauses",
    "devices",
    "fib",
    "match_prefixes",
    "nat",
    "links",
)

#: Dict keys whose values may be simplified to None.
_NULLABLE_KEYS = (
    "src_ports",
    "dst_ports",
    "protocol",
    "translate_src",
    "translate_dst",
    "set_src_port",
    "set_dst_port",
    "match_community",
    "match_as_path_contains",
    "set_local_pref",
    "set_med",
    "add_community",
    "prepend_as",
    "acl_in",
    "acl_out",
    "gre_start",
    "gre_end",
    "check_local_pref",
    "nat",
    "headers",
    "target",
)

#: Keys whose integers the scalar pass may zero/halve.  ``version``,
#: ``seed``, ``index`` and list-lengths are identity/bound fields the
#: shrinker must leave alone.
_SCALAR_SKIP_KEYS = {"version", "seed", "index", "max_list_length", "vars"}

_AST_TERMINALS = (["const", 0], ["var", 0], ["true"], ["false"])


def scenario_size(obj: Any) -> int:
    """The scenario's size: its count of JSON atoms.

    The metric every shrink step must strictly decrease — which both
    guarantees termination and matches the intuition of "a smaller
    repro".
    """
    if isinstance(obj, dict):
        return sum(scenario_size(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(scenario_size(v) for v in obj)
    return 0 if obj is None else 1


def shrink_scenario(
    data: Dict[str, Any],
    failing: Callable[[Dict[str, Any]], bool],
    max_checks: int = 500,
) -> Dict[str, Any]:
    """Greedily minimize ``data`` while ``failing`` keeps returning True.

    ``failing`` should re-run the oracle and compare failure
    signatures; it is invoked at most ``max_checks`` times.  Returns
    the smallest reproducer found (possibly ``data`` itself, as a deep
    copy).
    """
    best = copy.deepcopy(data)
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _proposals(best):
            if checks >= max_checks:
                break
            if scenario_size(candidate) >= scenario_size(best):
                continue
            try:
                validate_scenario(candidate)
            except (ValueError, TypeError, KeyError, IndexError):
                continue
            checks += 1
            if failing(candidate):
                best = candidate
                improved = True
                break  # restart proposals from the smaller scenario
    return best


# ----------------------------------------------------------------------
# Proposal enumeration (deterministic order: big edits first)
# ----------------------------------------------------------------------


def _proposals(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield from _list_removals(data)
    yield from _ast_hoists(data)
    yield from _scalar_simplifications(data)


def _edit(data: Dict[str, Any], path: Tuple[Any, ...], value: Any) -> Dict[str, Any]:
    """A deep copy of ``data`` with the value at ``path`` replaced."""
    result = copy.deepcopy(data)
    target = result
    for step in path[:-1]:
        target = target[step]
    target[path[-1]] = value
    return result


def _walk(
    obj: Any, path: Tuple[Any, ...] = ()
) -> Iterator[Tuple[Tuple[Any, ...], Any]]:
    """Yield (path, value) for every node of the JSON tree, preorder."""
    yield path, obj
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from _walk(value, path + (key,))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from _walk(value, path + (i,))


def _list_removals(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Chunk-removal proposals for every removable element list."""
    for path, value in _walk(data["payload"], ("payload",)):
        if not (
            path
            and isinstance(path[-1], str)
            and path[-1] in _REMOVABLE_LISTS
            and isinstance(value, list)
            and value
        ):
            continue
        # Line-targeted payloads (acl target_line, routemap
        # target_line) pin their list length: removing lines without
        # renumbering the target either invalidates the scenario or
        # changes which line is asked about.  Propose the
        # renumber-adjusted removal first, then the raw one.
        target = (
            data["payload"].get("target_line")
            if len(path) == 2 and path[-1] in ("rules", "clauses")
            else None
        )
        n = len(value)
        chunk = n
        while chunk >= 1:
            for start in range(0, n, chunk):
                remaining = value[:start] + value[start + chunk:]
                if len(remaining) == n:
                    continue
                removed = n - len(remaining)
                if isinstance(target, int) and target > start:
                    adjusted = _edit(data, path, remaining)
                    adjusted["payload"]["target_line"] = max(
                        start, target - removed
                    )
                    yield adjusted
                yield _edit(data, path, remaining)
            chunk //= 2


def _is_ast_node(value: Any) -> bool:
    return (
        isinstance(value, list) and bool(value) and isinstance(value[0], str)
    )


def _ast_hoists(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Replace zen AST nodes with their own subtrees, then with leaves."""
    if data.get("kind") != "zen":
        return
    nodes = [
        (path, value)
        for path, value in _walk(data["payload"]["ast"], ("payload", "ast"))
        if _is_ast_node(value) and len(value) > 1
    ]
    # Subtree hoists first (big wins), terminal replacements second.
    for path, node in nodes:
        for child in node[1:]:
            if _is_ast_node(child):
                yield _edit(data, path, copy.deepcopy(child))
    for path, node in nodes:
        for terminal in _AST_TERMINALS:
            if node != terminal:
                yield _edit(data, path, copy.deepcopy(terminal))


def _scalar_simplifications(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    nulls: List[Tuple[Tuple[Any, ...], Any]] = []
    ints: List[Tuple[Tuple[Any, ...], int]] = []
    for path, value in _walk(data["payload"], ("payload",)):
        if not path:
            continue
        key = path[-1]
        if isinstance(key, str) and key in _NULLABLE_KEYS and value is not None:
            nulls.append((path, value))
        elif (
            isinstance(value, int)
            and not isinstance(value, bool)
            and value != 0
            and not (isinstance(key, str) and key in _SCALAR_SKIP_KEYS)
        ):
            ints.append((path, value))
    for path, _ in nulls:
        yield _edit(data, path, None)
    for path, value in ints:
        yield _edit(data, path, 0)
    for path, value in ints:
        if abs(value) > 1:
            yield _edit(data, path, value // 2)
