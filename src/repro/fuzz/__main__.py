"""Command-line entry points of the differential fuzz farm.

``python -m repro.fuzz run``    — run a seeded campaign; exit 1 when
any unexplained failure was found (artifacts are written for each).

``python -m repro.fuzz replay`` — re-run a repro artifact's minimized
scenario; exit 0 when the recorded failure reproduces.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..core.budget import Budget
from .farm import DEFAULT_BUDGET, FarmConfig, replay_artifact, run_farm
from .reference import KNOWN_BUGS
from .scenario import SCENARIO_KINDS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing farm (SAT vs BDD vs concrete "
        "vs reference)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a seeded fuzz campaign")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--count", type=int, default=200)
    run.add_argument(
        "--kinds",
        default=",".join(SCENARIO_KINDS),
        help="comma-separated scenario kinds "
        f"(default: {','.join(SCENARIO_KINDS)})",
    )
    run.add_argument(
        "--inject-bug",
        default=None,
        choices=sorted(KNOWN_BUGS),
        help="plant a named reference-interpreter bug (canary mode)",
    )
    run.add_argument("--probe-count", type=int, default=8)
    run.add_argument(
        "--deadline-s",
        type=float,
        default=DEFAULT_BUDGET.deadline_s,
        help="per-query cooperative budget deadline",
    )
    run.add_argument(
        "--service-every",
        type=int,
        default=8,
        help="route every Nth scenario through the QueryEngine "
        "(0 = never, 1 = always)",
    )
    run.add_argument("--pool-size", type=int, default=2)
    run.add_argument("--timeout-s", type=float, default=30.0)
    run.add_argument(
        "--chaos-every",
        type=int,
        default=0,
        help="inject a worker fault before every Nth service-routed "
        "scenario (0 = never)",
    )
    run.add_argument(
        "--chaos-kinds",
        default="kill,stall",
        help="comma-separated fault kinds for --chaos-every "
        "(kill, stall, oom)",
    )
    run.add_argument("--max-failures", type=int, default=5)
    run.add_argument("--shrink-checks", type=int, default=300)
    run.add_argument(
        "--wall-budget",
        type=float,
        default=None,
        help="stop generating after this many seconds",
    )
    run.add_argument(
        "--artifact-dir",
        default=None,
        help="write a JSON repro artifact per failure into this directory",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the campaign summary as JSON on stdout",
    )
    run.add_argument("--quiet", action="store_true")

    replay = sub.add_parser(
        "replay", help="re-run a repro artifact's minimized scenario"
    )
    replay.add_argument("artifact", help="path to a fuzz-failure artifact")
    replay.add_argument("--json", action="store_true")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    kinds = tuple(k for k in args.kinds.split(",") if k)
    config = FarmConfig(
        seed=args.seed,
        count=args.count,
        kinds=kinds,
        inject_bug=args.inject_bug,
        probe_count=args.probe_count,
        budget=Budget(
            deadline_s=args.deadline_s,
            max_conflicts=DEFAULT_BUDGET.max_conflicts,
            max_bdd_nodes=DEFAULT_BUDGET.max_bdd_nodes,
        ),
        timeout_s=args.timeout_s,
        service_every=args.service_every,
        pool_size=args.pool_size,
        max_failures=args.max_failures,
        shrink_checks=args.shrink_checks,
        wall_budget_s=args.wall_budget,
        chaos_every=args.chaos_every,
        chaos_kinds=tuple(
            k for k in args.chaos_kinds.split(",") if k
        ),
    )
    progress = None if args.quiet else lambda message: print(
        f"[fuzz] {message}", file=sys.stderr
    )
    result = run_farm(
        config, artifact_dir=args.artifact_dir, progress=progress
    )
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"checked {summary['checked']} scenarios "
            f"(seed {summary['seed']}): {summary['clean']} clean, "
            f"{summary['explained']} explained, "
            f"{summary['failed']} failed"
            + (" [truncated]" if summary["truncated"] else "")
        )
        if summary["chaos_injected"]:
            faults = ", ".join(
                f"{kind}x{n}"
                for kind, n in sorted(summary["chaos_faults"].items())
            )
            print(
                f"  chaos: {summary['chaos_injected']} faults injected"
                f" ({faults}); {summary['chaos_absorbed']}"
                f" transport failures absorbed"
            )
        for signature, count in summary["signatures"].items():
            print(f"  {signature}: {count}")
        for path in summary["artifacts"]:
            print(f"  artifact: {path}")
    return 0 if result.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    reproduced, report = replay_artifact(args.artifact)
    payload = {
        "artifact": args.artifact,
        "reproduced": reproduced,
        "signature": list(report.signature or ()),
        "detail": report.detail,
        "explained": report.explained,
        "probes_checked": report.probes_checked,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif reproduced:
        print(
            f"reproduced {'/'.join(payload['signature'])}: "
            f"{report.detail}"
        )
    else:
        print(
            f"did NOT reproduce (got "
            f"{'/'.join(payload['signature']) or 'clean'}"
            f"{', explained ' + report.explained if report.explained else ''})"
        )
    return 0 if reproduced else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_replay(args)


if __name__ == "__main__":
    sys.exit(main())
