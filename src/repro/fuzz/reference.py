"""Independent reference interpreter for fuzz scenarios.

This module re-implements every scenario family's semantics in plain
Python, **directly from the JSON payload**, sharing no code with the
Zen models, the concrete evaluator, or the solver backends.  That
independence is what makes it an oracle: when the reference and the
model-under-test disagree on a concrete input, one of the two
derivations of the spec is wrong, and the farm has found a bug (in the
backends, in the models, or in this file — all three are findings).

Two entry points:

* :func:`reference_result` — the reference's verdict for one concrete
  input tuple;
* :func:`reference_inputs` — deterministic probe inputs for a
  scenario: targeted inputs aimed at each rule/clause/branch plus
  uniform random ones, all respecting the scenario's bounds
  (``max_list_length``, integer widths) so a probe can never "refute"
  a verdict that is correct under the bounded encoding.

Bug injection
-------------
``scenario["bug"]`` names an entry of :data:`KNOWN_BUGS` and plants
that defect *in this interpreter only*.  The farm must then flag the
reference/model divergence, shrink it, and replay it from the artifact
— the end-to-end canary proving the oracle loop actually fires.  The
bug name lives inside the scenario dict, so shrinking and artifact
round-trips preserve it with no extra plumbing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network.packet import Header, Packet
from ..network.routemap import Route

__all__ = [
    "KNOWN_BUGS",
    "SYSTEM_BUGS",
    "reference_inputs",
    "reference_result",
]

#: Injectable oracle defects (canaries). Values describe the planted bug.
KNOWN_BUGS = {
    "acl-last-match": (
        "ACL matching uses last-match-wins instead of first-match-wins"
    ),
    "fib-shortest-match": (
        "forwarding uses shortest- instead of longest-prefix match"
    ),
    "zen-sub-swapped": "subtraction computes right - left",
}

#: Injectable defects planted in the *system under test* instead of in
#: this interpreter (the reference stays correct for these, so any
#: divergence indicts the named subsystem).  Scenario validation
#: accepts them alongside :data:`KNOWN_BUGS`; each is interpreted by
#: the module it names.
SYSTEM_BUGS = {
    "compose-drop-assumption": (
        "the recomposer skips assume-guarantee discharge and chains "
        "rewriting shards as if they were filters (interpreted by "
        "repro.compose.recompose)"
    ),
}

_IP_MASK = 0xFFFFFFFF


def _prefix_mask(length: int) -> int:
    return (_IP_MASK << (32 - length)) & _IP_MASK if length else 0


def _in_prefix(ip: int, prefix: Sequence[int]) -> bool:
    mask = _prefix_mask(prefix[1])
    return (ip & mask) == (prefix[0] & mask)


# ----------------------------------------------------------------------
# ACL
# ----------------------------------------------------------------------


def _acl_rule_matches(rule: Dict[str, Any], h: Header) -> bool:
    if not _in_prefix(h.src_ip, rule["src"]):
        return False
    if not _in_prefix(h.dst_ip, rule["dst"]):
        return False
    ports = rule.get("src_ports")
    if ports is not None and not ports[0] <= h.src_port <= ports[1]:
        return False
    ports = rule.get("dst_ports")
    if ports is not None and not ports[0] <= h.dst_port <= ports[1]:
        return False
    proto = rule.get("protocol")
    if proto is not None and h.protocol != proto:
        return False
    return True


def _acl_match_line(
    rules: Sequence[Dict[str, Any]], h: Header, bug: Optional[str]
) -> int:
    """1-based first matching line, 0 when nothing matches."""
    if bug == "acl-last-match":
        for i in range(len(rules) - 1, -1, -1):
            if _acl_rule_matches(rules[i], h):
                return i + 1
        return 0
    for i, rule in enumerate(rules):
        if _acl_rule_matches(rule, h):
            return i + 1
    return 0


def _acl_allows(
    rules: Sequence[Dict[str, Any]], h: Header, bug: Optional[str]
) -> bool:
    line = _acl_match_line(rules, h, bug)
    return bool(rules[line - 1]["action"]) if line else False


# ----------------------------------------------------------------------
# NAT
# ----------------------------------------------------------------------


def _translate(prefix: Sequence[int], ip: int) -> int:
    mask = _prefix_mask(prefix[1])
    return (ip & (mask ^ _IP_MASK)) | (prefix[0] & mask)


def _apply_nat(rules: Sequence[Dict[str, Any]], h: Header) -> Header:
    for rule in rules:
        if _in_prefix(h.src_ip, rule["match_src"]) and _in_prefix(
            h.dst_ip, rule["match_dst"]
        ):
            src_ip, dst_ip = h.src_ip, h.dst_ip
            src_port, dst_port = h.src_port, h.dst_port
            if rule.get("translate_src") is not None:
                src_ip = _translate(rule["translate_src"], src_ip)
            if rule.get("translate_dst") is not None:
                dst_ip = _translate(rule["translate_dst"], dst_ip)
            if rule.get("set_src_port") is not None:
                src_port = rule["set_src_port"]
            if rule.get("set_dst_port") is not None:
                dst_port = rule["set_dst_port"]
            return Header(
                dst_ip=dst_ip,
                src_ip=src_ip,
                dst_port=dst_port,
                src_port=src_port,
                protocol=h.protocol,
            )
    return h


# ----------------------------------------------------------------------
# Route maps
# ----------------------------------------------------------------------


def _clause_matches(clause: Dict[str, Any], r: Route) -> bool:
    entries = clause.get("match_prefixes", [])
    if entries:
        if not any(
            _in_prefix(r.prefix, entry[0])
            and r.prefix_len >= max(entry[1], entry[0][1])
            and r.prefix_len <= entry[2]
            for entry in entries
        ):
            return False
    community = clause.get("match_community")
    if community is not None and community not in list(r.communities):
        return False
    asn = clause.get("match_as_path_contains")
    if asn is not None and asn not in list(r.as_path):
        return False
    return True


def _route_map_match_line(clauses: Sequence[Dict[str, Any]], r: Route) -> int:
    for i, clause in enumerate(clauses):
        if _clause_matches(clause, r):
            return i + 1
    return 0


def _apply_route_map(
    clauses: Sequence[Dict[str, Any]], r: Route
) -> Optional[Route]:
    line = _route_map_match_line(clauses, r)
    if line == 0:
        return None
    clause = clauses[line - 1]
    if not clause["action"]:
        return None
    local_pref = r.local_pref
    med = r.med
    communities = list(r.communities)
    as_path = list(r.as_path)
    if clause.get("set_local_pref") is not None:
        local_pref = clause["set_local_pref"]
    if clause.get("set_med") is not None:
        med = clause["set_med"]
    if clause.get("add_community") is not None:
        communities = [clause["add_community"]] + communities
    if clause.get("prepend_as") is not None:
        as_path = [clause["prepend_as"]] + as_path
    return Route(
        prefix=r.prefix,
        prefix_len=r.prefix_len,
        local_pref=local_pref,
        med=med,
        as_path=as_path,
        communities=communities,
    )


# ----------------------------------------------------------------------
# Forwarding paths
# ----------------------------------------------------------------------


def _sorted_fib(fib: Sequence[Sequence[Any]]) -> List[Sequence[Any]]:
    """Descending prefix length, stable — mirrors ``FwdTable.of``."""
    return sorted(fib, key=lambda rule: rule[0][1], reverse=True)


def _lpm_port(
    fib: Sequence[Sequence[Any]], dst_ip: int, bug: Optional[str]
) -> int:
    order = _sorted_fib(fib)
    if bug == "fib-shortest-match":
        order = list(reversed(order))
    for rule in order:
        if _in_prefix(dst_ip, rule[0]):
            return rule[1]
    return 0


def _forward_along_chain(
    devices: Sequence[Dict[str, Any]], pkt: Packet, bug: Optional[str]
) -> bool:
    """Whether the packet survives the implicit device chain.

    Mirrors ``forward_along_path`` over the in(1)/out(2) interface
    pairs scenario payloads describe: inbound ACL on the effective
    (underlay-preferring) header, decap, LPM + outbound ACL + encap,
    drop unless the forwarding decision picks the chain's out port.
    """
    overlay: Header = pkt.overlay_header
    underlay: Optional[Header] = pkt.underlay_header
    for desc in devices:
        intf_in = desc["interfaces"]["in"]
        intf_out = desc["interfaces"]["out"]
        # fwd_in: ACL on the effective header, then decap.
        header = underlay if underlay is not None else overlay
        acl = intf_in.get("acl_in")
        if acl is not None and not _acl_allows(acl, header, bug):
            return False
        if intf_in.get("gre_end") is not None:
            underlay = None
        # fwd_out: LPM and ACL on the (possibly decapped) effective
        # header, encap, and the port must equal the out interface id.
        header = underlay if underlay is not None else overlay
        port = _lpm_port(desc["fib"], header.dst_ip, bug)
        acl = intf_out.get("acl_out")
        if acl is not None and not _acl_allows(acl, header, bug):
            return False
        if port != 2:
            return False
        tunnel = intf_out.get("gre_start")
        if tunnel is not None:
            underlay = Header(
                dst_ip=tunnel[1],
                src_ip=tunnel[0],
                dst_port=overlay.dst_port,
                src_port=overlay.src_port,
                protocol=47,
            )
    return True


# ----------------------------------------------------------------------
# Compose topologies
# ----------------------------------------------------------------------

_COVER_WIDTHS = {
    "dst_ip": 32,
    "src_ip": 32,
    "dst_port": 16,
    "src_port": 16,
    "protocol": 8,
}


def _in_cover(cover: Optional[Sequence[Dict[str, Any]]], h: Header) -> bool:
    """Membership in a compose header cover (None = universe)."""
    if cover is None:
        return True
    for cube in cover:
        if all(
            (getattr(h, fld) & mask) == (value & mask)
            for fld, (value, mask) in cube.items()
        ):
            return True
    return False


def _walk_topology(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    h: Header,
    bug: Optional[str],
) -> Optional[Header]:
    """Walk one header through the topology's hop pipeline.

    Returns the delivered header, or None when the packet drops or
    loops.  This mirrors the pipeline contract of
    :mod:`repro.compose.topo` from scratch — acl_in, NAT rewrite, LPM,
    acl_out, then linked ports hand off before the sink delivers —
    using only this module's own helpers.
    """
    links: Dict[Tuple[str, int], Tuple[str, int]] = {}
    for dev_a, port_a, dev_b, port_b in topo.get("links", []):
        links[(dev_a, int(port_a))] = (dev_b, int(port_b))
        links[(dev_b, int(port_b))] = (dev_a, int(port_a))
    sink = (query["sink"][0], int(query["sink"][1]))
    device, port = query["source"][0], int(query["source"][1])
    seen = set()
    for _ in range(4 * len(topo["devices"]) + 8):
        spec = topo["devices"][device]
        acl_in = {int(p): r for p, r in spec.get("acl_in", {}).items()}
        if acl_in.get(port) is not None and not _acl_allows(
            acl_in[port], h, bug
        ):
            return None
        h = _apply_nat(spec.get("nat") or [], h)
        out_port = _lpm_port(spec.get("fib", []), h.dst_ip, bug)
        if out_port == 0:
            return None
        acl_out = {int(p): r for p, r in spec.get("acl_out", {}).items()}
        if acl_out.get(out_port) is not None and not _acl_allows(
            acl_out[out_port], h, bug
        ):
            return None
        neighbour = links.get((device, out_port))
        if neighbour is not None:
            if (device, out_port, h) in seen:
                return None  # forwarding loop
            seen.add((device, out_port, h))
            device, port = neighbour
            continue
        return h if (device, out_port) == sink else None
    return None


# ----------------------------------------------------------------------
# Random Zen programs
# ----------------------------------------------------------------------


def _eval_int(
    node: Sequence[Any], env: Tuple[int, ...], width: int, bug: Optional[str]
) -> int:
    mask = (1 << width) - 1
    op = node[0]
    if op == "var":
        return env[node[1]]
    if op == "const":
        return node[1] & mask
    if op == "bnot":
        return ~_eval_int(node[1], env, width, bug) & mask
    if op == "neg":
        return -_eval_int(node[1], env, width, bug) & mask
    if op == "ite":
        if _eval_bool(node[1], env, width, bug):
            return _eval_int(node[2], env, width, bug)
        return _eval_int(node[3], env, width, bug)
    left = _eval_int(node[1], env, width, bug)
    right = _eval_int(node[2], env, width, bug)
    if op == "add":
        return (left + right) & mask
    if op == "sub":
        if bug == "zen-sub-swapped":
            return (right - left) & mask
        return (left - right) & mask
    if op == "mul":
        return (left * right) & mask
    if op == "band":
        return left & right
    if op == "bor":
        return left | right
    if op == "bxor":
        return left ^ right
    if op == "shl":
        return (left << right) & mask if right < width else 0
    # op == "shr"; unsigned, so shifting by >= width floors to 0.
    return left >> right if right < width else 0


def _eval_bool(
    node: Sequence[Any], env: Tuple[int, ...], width: int, bug: Optional[str]
) -> bool:
    op = node[0]
    if op == "true":
        return True
    if op == "false":
        return False
    if op == "not":
        return not _eval_bool(node[1], env, width, bug)
    if op == "and":
        return _eval_bool(node[1], env, width, bug) and _eval_bool(
            node[2], env, width, bug
        )
    if op == "or":
        return _eval_bool(node[1], env, width, bug) or _eval_bool(
            node[2], env, width, bug
        )
    if op == "bif":
        if _eval_bool(node[1], env, width, bug):
            return _eval_bool(node[2], env, width, bug)
        return _eval_bool(node[3], env, width, bug)
    left = _eval_int(node[1], env, width, bug)
    right = _eval_int(node[2], env, width, bug)
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "gt":
        return left > right
    return left >= right  # "ge"


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def reference_result(data: Dict[str, Any], inputs: Sequence[Any]) -> bool:
    """The reference verdict of the scenario model on concrete inputs.

    ``inputs`` is the argument tuple of the scenario's ZenFunction: a
    single Header / Route / Packet for the network kinds, a pair of
    ints for ``zen``.
    """
    kind = data["kind"]
    payload = data["payload"]
    bug = data.get("bug")
    if kind == "acl":
        line = _acl_match_line(payload["rules"], inputs[0], bug)
        return line == payload["target_line"]
    if kind == "nat":
        translated = _apply_nat(payload["rules"], inputs[0])
        return _acl_allows(payload["acl"], translated, bug)
    if kind == "routemap":
        route = inputs[0]
        line = _route_map_match_line(payload["clauses"], route)
        if line != payload["target_line"]:
            return False
        check = payload.get("check_local_pref")
        if check is None:
            return True
        outcome = _apply_route_map(payload["clauses"], route)
        return outcome is not None and outcome.local_pref == check
    if kind == "path":
        return _forward_along_chain(payload["devices"], inputs[0], bug)
    if kind == "topology":
        topo, query = payload["topo"], payload["query"]
        h = inputs[0]
        if not _in_cover(query.get("headers"), h):
            return False
        final = _walk_topology(topo, query, h, bug)
        return final is not None and _in_cover(query.get("target"), final)
    # kind == "zen"
    env = tuple(inputs)
    return _eval_bool(payload["ast"], env, payload["width"], bug)


def reference_inputs(
    data: Dict[str, Any], rng: random.Random, count: int = 12
) -> List[Tuple[Any, ...]]:
    """Deterministic probe inputs for a scenario.

    Half are *targeted* — aimed at individual rules, clauses, and FIB
    entries so at least some probes exercise the interesting branches
    of small-probability match conditions — and the rest uniform.  All
    stay inside the scenario's bounds (list lengths, widths), so a
    True reference verdict on a probe genuinely refutes an ``unsat``.
    """
    kind = data["kind"]
    payload = data["payload"]
    probes: List[Tuple[Any, ...]] = []
    for i in range(count):
        targeted = i < (count + 1) // 2
        if kind == "acl":
            probes.append((_probe_header(payload["rules"], rng, targeted),))
        elif kind == "nat":
            # Alternate between aiming at NAT match rules and at the
            # downstream ACL (reached through whatever NAT does).
            rules = payload["rules"] if i % 2 == 0 else payload["acl"]
            probes.append((_probe_header(rules, rng, targeted),))
        elif kind == "routemap":
            probes.append(
                (
                    _probe_route(
                        payload["clauses"],
                        rng,
                        targeted,
                        data["max_list_length"],
                    ),
                )
            )
        elif kind == "path":
            probes.append((_probe_packet(payload["devices"], rng, targeted),))
        elif kind == "topology":
            probes.append(
                (
                    _probe_topology_header(
                        payload["topo"],
                        payload["query"],
                        rng,
                        targeted,
                    ),
                )
            )
        else:  # zen
            width = payload["width"]
            pool = (0, 1, 2, (1 << width) - 1, 1 << (width - 1), width)
            if targeted:
                env = tuple(rng.choice(pool) for _ in range(2))
            else:
                env = tuple(rng.randrange(1 << width) for _ in range(2))
            probes.append(env)
    return probes


def _random_in_prefix(prefix: Sequence[int], rng: random.Random) -> int:
    mask = _prefix_mask(prefix[1])
    return (prefix[0] & mask) | (rng.getrandbits(32) & (mask ^ _IP_MASK))


def _probe_header(
    rules: Sequence[Dict[str, Any]], rng: random.Random, targeted: bool
) -> Header:
    """A header aimed at one rule (or uniform when not targeted).

    Works for both ACL rules and NAT rules: NAT rules have match_src /
    match_dst where ACL rules have src / dst, and no port intervals.
    """
    if not targeted or not rules:
        return Header(
            dst_ip=rng.getrandbits(32),
            src_ip=rng.getrandbits(32),
            dst_port=rng.getrandbits(16),
            src_port=rng.getrandbits(16),
            protocol=rng.getrandbits(8),
        )
    rule = rng.choice(list(rules))
    src = rule.get("src") or rule.get("match_src") or [0, 0]
    dst = rule.get("dst") or rule.get("match_dst") or [0, 0]
    src_ports = rule.get("src_ports")
    dst_ports = rule.get("dst_ports")
    proto = rule.get("protocol")
    return Header(
        dst_ip=_random_in_prefix(dst, rng),
        src_ip=_random_in_prefix(src, rng),
        dst_port=(
            rng.randint(*dst_ports) if dst_ports else rng.getrandbits(16)
        ),
        src_port=(
            rng.randint(*src_ports) if src_ports else rng.getrandbits(16)
        ),
        protocol=proto if proto is not None else rng.getrandbits(8),
    )


def _probe_topology_header(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    rng: random.Random,
    targeted: bool,
) -> Header:
    """A header probe for a compose topology scenario.

    Targeted probes aim ``dst_ip`` at a random device's FIB prefixes so
    they actually route somewhere specific; all probes then conform to
    the query's header cover (when present) by overlaying the cubes'
    pinned bits, so True reference verdicts refute composed ``unsat``.
    """
    h = Header(
        dst_ip=rng.getrandbits(32),
        src_ip=rng.getrandbits(32),
        dst_port=rng.getrandbits(16),
        src_port=rng.getrandbits(16),
        protocol=rng.getrandbits(8),
    )
    if targeted:
        spec = topo["devices"][rng.choice(sorted(topo["devices"]))]
        prefixes = [entry[0] for entry in spec.get("fib", []) if entry[0][1]]
        if prefixes:
            h = dataclasses.replace(
                h, dst_ip=_random_in_prefix(rng.choice(prefixes), rng)
            )
    cover = query.get("headers")
    if cover:
        cube = rng.choice(list(cover))
        fields = dataclasses.asdict(h)
        for fld, (value, mask) in cube.items():
            width_mask = (1 << _COVER_WIDTHS[fld]) - 1
            fields[fld] = (fields[fld] & ~mask & width_mask) | (value & mask)
        h = Header(**fields)
    return h


def _probe_route(
    clauses: Sequence[Dict[str, Any]],
    rng: random.Random,
    targeted: bool,
    max_list_length: int,
) -> Route:
    communities = [
        rng.getrandbits(17) for _ in range(rng.randint(0, max_list_length))
    ]
    as_path = [
        rng.getrandbits(15) for _ in range(rng.randint(0, max_list_length))
    ]
    prefix = rng.getrandbits(32)
    prefix_len = rng.randint(0, 32)
    if targeted and clauses:
        clause = rng.choice(list(clauses))
        entries = clause.get("match_prefixes", [])
        if entries:
            entry = rng.choice(list(entries))
            prefix = _random_in_prefix(entry[0], rng)
            low = max(entry[1], entry[0][1])
            if low <= entry[2]:
                prefix_len = rng.randint(low, entry[2])
        if clause.get("match_community") is not None:
            communities = communities[: max_list_length - 1]
            communities.insert(
                rng.randint(0, len(communities)), clause["match_community"]
            )
        if clause.get("match_as_path_contains") is not None:
            as_path = as_path[: max_list_length - 1]
            as_path.insert(
                rng.randint(0, len(as_path)), clause["match_as_path_contains"]
            )
    return Route(
        prefix=prefix,
        prefix_len=prefix_len,
        local_pref=rng.randrange(1 << 10),
        med=rng.randrange(1 << 10),
        as_path=as_path,
        communities=communities,
    )


def _probe_packet(
    devices: Sequence[Dict[str, Any]], rng: random.Random, targeted: bool
) -> Packet:
    overlay = Header(
        dst_ip=rng.getrandbits(32),
        src_ip=rng.getrandbits(32),
        dst_port=rng.getrandbits(16),
        src_port=rng.getrandbits(16),
        protocol=rng.getrandbits(8),
    )
    underlay: Optional[Header] = None
    if targeted and devices:
        desc = rng.choice(list(devices))
        fib = desc["fib"]
        if fib:
            rule = rng.choice(list(fib))
            overlay = Header(
                dst_ip=_random_in_prefix(rule[0], rng),
                src_ip=overlay.src_ip,
                dst_port=overlay.dst_port,
                src_port=overlay.src_port,
                protocol=overlay.protocol,
            )
        # Sometimes arrive already encapsulated, aimed at a decap
        # interface's tunnel so the decap branch is exercised.
        tunnels = [
            spec.get(key)
            for dev in devices
            for spec in dev["interfaces"].values()
            for key in ("gre_start", "gre_end")
            if spec.get(key) is not None
        ]
        if tunnels and rng.random() < 0.5:
            tunnel = rng.choice(tunnels)
            underlay = Header(
                dst_ip=tunnel[1],
                src_ip=tunnel[0],
                dst_port=overlay.dst_port,
                src_port=overlay.src_port,
                protocol=47,
            )
    elif rng.random() < 0.2:
        underlay = Header(
            dst_ip=rng.getrandbits(32),
            src_ip=rng.getrandbits(32),
            dst_port=rng.getrandbits(16),
            src_port=rng.getrandbits(16),
            protocol=rng.getrandbits(8),
        )
    return Packet(overlay_header=overlay, underlay_header=underlay)
