"""The fuzz farm: generate → cross-check → shrink → file artifacts.

:func:`run_farm` drives a whole campaign:

1. generate scenario ``i`` deterministically from ``(seed, i)``;
2. run it through the differential oracle
   (:func:`~repro.fuzz.oracle.check_scenario`) — in-process for
   throughput, and periodically through a fault-isolated
   :class:`~repro.service.QueryEngine` so the full subprocess path
   (worker pools, hard deadlines, ``run_differential``'s own
   disagreement detection) stays exercised;
3. on an unexplained failure, re-confirm it, delta-debug the scenario
   to a minimal reproducer (pinning the original counterexample so
   shrink steps cannot dodge the failure), and write a JSON repro
   artifact;
4. stop early once ``max_failures`` artifacts are filed or the
   ``wall_budget_s`` is spent — a CI smoke run must terminate even
   when everything is on fire.

The whole campaign is a pure function of its configuration: same
config, same scenarios, same verdicts, same artifacts (artifact files
embed a wall-clock timestamp; everything else is deterministic).

``chaos_every`` relaxes that determinism deliberately: every Nth
service-routed scenario also gets a worker fault (kill/stall) injected
into the engine right before the query, proving a campaign survives
mid-run worker churn.  The *verdicts* stay deterministic anyway —
any failure observed on a chaos-poisoned engine is re-checked by the
in-process oracle before an artifact is filed, so transport casualties
(a crash caused by the injected kill, a shed caused by the injected
load) can never masquerade as solver bugs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.budget import Budget
from ..obs.recorder import RECORDER
from .artifact import (
    artifact_path,
    build_artifact,
    decode_inputs,
    load_artifact,
    write_artifact,
)
from .oracle import OracleReport, check_scenario
from .scenario import SCENARIO_KINDS, ScenarioGenerator
from .shrink import scenario_size, shrink_scenario

__all__ = ["FarmConfig", "FarmResult", "run_farm", "replay_artifact"]

#: Default per-query cooperative budget: generous enough that the tiny
#: scenarios the generator emits essentially never trip it, tight
#: enough that a pathological one (random 16-bit multiplies under the
#: BDD backend) degrades to an *explained* outcome in bounded time.
DEFAULT_BUDGET = Budget(
    deadline_s=2.0, max_conflicts=200_000, max_bdd_nodes=1_000_000
)


@dataclass(frozen=True)
class FarmConfig:
    """One fuzz campaign's configuration (fully determines its runs).

    ``service_every`` routes every Nth scenario through a
    :class:`~repro.service.QueryEngine` (0 = never, 1 = always);
    the rest solve in-process.  ``inject_bug`` plants a named
    reference-interpreter defect (see
    :data:`~repro.fuzz.reference.KNOWN_BUGS`) — the canary mode used
    by tests to prove the farm catches, shrinks, and reproduces real
    bugs.
    """

    seed: int = 0
    count: int = 200
    kinds: Tuple[str, ...] = SCENARIO_KINDS
    inject_bug: Optional[str] = None
    probe_count: int = 8
    budget: Budget = DEFAULT_BUDGET
    timeout_s: float = 30.0
    service_every: int = 8
    pool_size: int = 2
    max_failures: int = 5
    shrink_checks: int = 300
    wall_budget_s: Optional[float] = None
    #: Run the composed-vs-monolith joint fixpoint on every Nth
    #: *topology* scenario (0 = never).  The monolith pays a
    #: multi-second BDD relation floor even on two-device chains, so
    #: campaigns sample it; every topology scenario still gets the
    #: cheap arms (composed verdict, probe cross-checks, witness
    #: replay) unconditionally.
    monolith_every: int = 3
    #: Inject a worker fault before every Nth service-routed scenario
    #: (0 = never).  Faults are drawn from ``chaos_kinds`` by a
    #: seed-derived RNG; see the module docstring for how verdicts
    #: stay deterministic regardless.
    chaos_every: int = 0
    chaos_kinds: Tuple[str, ...] = ("kill", "stall")


@dataclass
class FarmResult:
    """Campaign totals plus every failure's artifact."""

    config: FarmConfig
    checked: int = 0
    clean: int = 0
    explained: int = 0
    failed: int = 0
    service_checked: int = 0
    chaos_injected: int = 0
    chaos_absorbed: int = 0
    elapsed_s: float = 0.0
    truncated: bool = False
    signatures: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    explanations: Dict[str, int] = field(default_factory=dict)
    chaos_faults: Dict[str, int] = field(default_factory=dict)
    artifacts: List[Dict[str, Any]] = field(default_factory=list)
    artifact_paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready campaign summary (no embedded live objects)."""
        return {
            "seed": self.config.seed,
            "count": self.config.count,
            "kinds": list(self.config.kinds),
            "inject_bug": self.config.inject_bug,
            "checked": self.checked,
            "clean": self.clean,
            "explained": self.explained,
            "failed": self.failed,
            "service_checked": self.service_checked,
            "chaos_injected": self.chaos_injected,
            "chaos_absorbed": self.chaos_absorbed,
            "chaos_faults": dict(self.chaos_faults),
            "elapsed_s": round(self.elapsed_s, 3),
            "truncated": self.truncated,
            "signatures": {
                "/".join(sig): n for sig, n in self.signatures.items()
            },
            "explanations": dict(self.explanations),
            "artifacts": list(self.artifact_paths),
            "ok": self.ok,
        }


def run_farm(
    config: FarmConfig,
    *,
    artifact_dir: Optional[str] = None,
    engine: Any = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FarmResult:
    """Run one campaign; returns totals plus artifacts for failures.

    ``engine`` may be a caller-managed
    :class:`~repro.service.QueryEngine`; otherwise one is created
    lazily when ``config.service_every`` routes a scenario through the
    service, and closed before returning.
    """
    generator = ScenarioGenerator(
        seed=config.seed, kinds=config.kinds, inject_bug=config.inject_bug
    )
    result = FarmResult(config=config)
    own_engine = None
    started = time.monotonic()
    say = progress or (lambda message: None)
    chaos_rng = random.Random(f"repro-fuzz-chaos:{config.seed}")
    service_index = 0
    topology_index = 0
    try:
        for index in range(config.count):
            if (
                config.wall_budget_s is not None
                and time.monotonic() - started > config.wall_budget_s
            ):
                result.truncated = True
                say(
                    f"wall budget exhausted after {result.checked} "
                    f"scenarios; stopping early"
                )
                break
            data = generator.scenario(index)
            use_service = (
                config.service_every > 0
                and index % config.service_every == 0
            )
            if use_service and engine is None and own_engine is None:
                from ..service import QueryEngine

                own_engine = QueryEngine(
                    pool_size=config.pool_size,
                    retries=1,
                    default_timeout_s=config.timeout_s,
                )
            active = (engine or own_engine) if use_service else None
            chaos_active = False
            if use_service:
                service_index += 1
                if (
                    config.chaos_every > 0
                    and service_index % config.chaos_every == 0
                ):
                    chaos_active = _inject_chaos(
                        active, config, chaos_rng, result, say
                    )
            run_monolith = True
            if data["kind"] == "topology":
                run_monolith = (
                    config.monolith_every > 0
                    and topology_index % config.monolith_every == 0
                )
                topology_index += 1
            report = check_scenario(
                data,
                engine=active,
                probe_count=config.probe_count,
                budget=config.budget,
                timeout_s=config.timeout_s if use_service else None,
                monolith=run_monolith,
            )
            if report.failed and chaos_active:
                # The engine this ran on had a fault injected moments
                # ago; a crash or transport failure here may be our own
                # chaos, not a solver bug.  Only the deterministic
                # in-process oracle's verdict files an artifact.
                recheck = check_scenario(
                    data,
                    probe_count=config.probe_count,
                    budget=config.budget,
                    monolith=run_monolith,
                )
                if recheck.failed:
                    report = recheck
                else:
                    result.chaos_absorbed += 1
                    say(
                        f"scenario {index} failed only on the "
                        f"chaos-poisoned engine "
                        f"({'/'.join(report.signature or ('unknown',))})"
                        f" — absorbed, not filed"
                    )
                    report = recheck
            result.checked += 1
            if use_service:
                result.service_checked += 1
            if report.failed:
                result.failed += 1
                signature = report.signature or ("unknown",)
                result.signatures[signature] = (
                    result.signatures.get(signature, 0) + 1
                )
                say(
                    f"scenario {index} ({data['kind']}) failed: "
                    f"{'/'.join(signature)} — shrinking"
                )
                artifact = _file_failure(config, report, artifact_dir)
                result.artifacts.append(artifact)
                if artifact_dir is not None:
                    result.artifact_paths.append(
                        artifact_path(artifact_dir, artifact)
                    )
                # New finding: freeze a flight-recorder debug bundle
                # next to the repro artifact (the operational context
                # — metrics, recent attempts — the artifact lacks).
                RECORDER.trigger(
                    "fuzz_finding",
                    detail="/".join(signature),
                    bundle_dir=artifact_dir,
                    context={
                        "scenario_index": index,
                        "scenario_kind": data["kind"],
                        "seed": config.seed,
                        "detail": report.detail,
                    },
                )
                if result.failed >= config.max_failures:
                    result.truncated = True
                    say(
                        f"max_failures={config.max_failures} reached; "
                        f"stopping early"
                    )
                    break
            elif report.explained is not None:
                result.explained += 1
                result.explanations[report.explained] = (
                    result.explanations.get(report.explained, 0) + 1
                )
            else:
                result.clean += 1
            if progress and result.checked % 50 == 0:
                say(
                    f"{result.checked}/{config.count} checked "
                    f"({result.clean} clean, {result.explained} "
                    f"explained, {result.failed} failed)"
                )
    finally:
        if own_engine is not None:
            own_engine.close()
    result.elapsed_s = time.monotonic() - started
    return result


def _inject_chaos(
    engine: Any,
    config: FarmConfig,
    rng: random.Random,
    result: FarmResult,
    say: Callable[[str], None],
) -> bool:
    """Aim one worker fault at the campaign's engine.

    Returns True when a fault actually landed (a ``kill`` against an
    empty pool lands nothing).  The fault kind is drawn from
    ``config.chaos_kinds`` by the campaign's seed-derived RNG, so the
    *schedule* of faults is reproducible even though their victims
    (live worker pids) are not.
    """
    from ..service.chaos import inject_worker_fault

    kind, pid = inject_worker_fault(
        engine,
        kind=rng.choice(list(config.chaos_kinds)),
        rng=rng,
        stall_ms=100.0,
    )
    if pid is None and kind == "kill":
        return False
    result.chaos_injected += 1
    result.chaos_faults[kind] = result.chaos_faults.get(kind, 0) + 1
    say(f"chaos: injected {kind}" + (f" (pid {pid})" if pid else ""))
    return True


def _signature_preserving(
    config: FarmConfig,
    signature: Tuple[str, ...],
    pinned: Sequence[Tuple[Any, ...]],
) -> Callable[[Dict[str, Any]], bool]:
    """The shrinker's oracle: same failure *class*, in-process.

    Compares only the signature head (e.g. ``ref_divergence``) so a
    failure may legitimately move between its witness and probe
    flavours while the scenario shrinks.
    """

    def failing(candidate: Dict[str, Any]) -> bool:
        report = check_scenario(
            candidate,
            probe_count=config.probe_count,
            budget=config.budget,
            extra_inputs=pinned,
        )
        return (
            report.failed
            and report.signature is not None
            and report.signature[0] == signature[0]
        )

    return failing


def _file_failure(
    config: FarmConfig,
    report: OracleReport,
    artifact_dir: Optional[str],
) -> Dict[str, Any]:
    """Shrink a confirmed failure and assemble (and maybe write) its
    artifact."""
    signature = report.signature or ("unknown",)
    pinned = (
        [report.counterexample] if report.counterexample is not None else []
    )
    minimized = shrink_scenario(
        report.scenario,
        _signature_preserving(config, signature, pinned),
        max_checks=config.shrink_checks,
    )
    # Re-confirm the minimized scenario so the artifact records *its*
    # failure detail (witnesses, counterexample), not the original's.
    confirmed = check_scenario(
        minimized,
        probe_count=config.probe_count,
        budget=config.budget,
        extra_inputs=pinned,
    )
    final = confirmed if confirmed.failed else report
    artifact = build_artifact(
        final,
        minimized,
        shrink_info={
            "original_size": scenario_size(report.scenario),
            "minimized_size": scenario_size(minimized),
            "max_checks": config.shrink_checks,
            "pinned_counterexample": bool(pinned),
        },
        farm={
            "seed": config.seed,
            "scenario_index": report.scenario.get("index"),
            "count": config.count,
            "kinds": list(config.kinds),
            "inject_bug": config.inject_bug,
            "probe_count": config.probe_count,
        },
    )
    if artifact_dir is not None:
        write_artifact(artifact_path(artifact_dir, artifact), artifact)
    return artifact


def replay_artifact(
    source: Any, *, probe_count: Optional[int] = None
) -> Tuple[bool, OracleReport]:
    """Re-run the oracle on an artifact's minimized scenario.

    ``source`` is an artifact path or an already-loaded artifact dict.
    Returns ``(reproduced, report)`` — ``reproduced`` is True when the
    failure fires again with the artifact's signature head.  The
    replay pins the artifact's counterexample (when recorded), exactly
    as the shrinker did, so reproduction does not depend on probe
    luck.
    """
    artifact = (
        load_artifact(source) if isinstance(source, str) else source
    )
    scenario = artifact.get("minimized") or artifact["scenario"]
    pinned_tuple = decode_inputs(artifact.get("counterexample"))
    pinned = [pinned_tuple] if pinned_tuple is not None else []
    farm_meta = artifact.get("farm", {})
    report = check_scenario(
        scenario,
        probe_count=(
            probe_count
            if probe_count is not None
            else farm_meta.get("probe_count", 8)
        ),
        budget=DEFAULT_BUDGET,
        extra_inputs=pinned,
    )
    expected = tuple(artifact.get("signature") or ())
    reproduced = (
        report.failed
        and report.signature is not None
        and bool(expected)
        and report.signature[0] == expected[0]
    )
    return reproduced, report
