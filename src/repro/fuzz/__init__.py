"""Differential fuzzing farm for the compositional network models.

The farm mass-produces random verification scenarios (ACLs, route
maps, NAT chains, tunnel paths, raw Zen programs), cross-checks each
one across four independent derivations of the same semantics — the
SAT backend, the BDD backend, the concrete evaluator, and a
from-scratch reference interpreter — then delta-debugs any failure to
a minimal scenario and files a JSON repro artifact.

Quickstart::

    python -m repro.fuzz run --seed 7 --count 200 --artifact-dir out/
    python -m repro.fuzz replay out/fuzz-s7-i42-unsound-sat.json

or from Python::

    from repro.fuzz import FarmConfig, run_farm
    result = run_farm(FarmConfig(seed=7, count=200))
    assert result.ok, result.summary()
"""

from .artifact import (
    build_artifact,
    decode_inputs,
    encode_inputs,
    load_artifact,
    write_artifact,
)
from .farm import DEFAULT_BUDGET, FarmConfig, FarmResult, replay_artifact, run_farm
from .oracle import ORACLE_BACKENDS, OracleReport, check_scenario, make_specs
from .reference import KNOWN_BUGS, reference_inputs, reference_result
from .scenario import (
    SCENARIO_KINDS,
    ScenarioGenerator,
    build_scenario_model,
    prop_never,
    validate_scenario,
)
from .shrink import scenario_size, shrink_scenario

__all__ = [
    "DEFAULT_BUDGET",
    "FarmConfig",
    "FarmResult",
    "KNOWN_BUGS",
    "ORACLE_BACKENDS",
    "OracleReport",
    "SCENARIO_KINDS",
    "ScenarioGenerator",
    "build_artifact",
    "build_scenario_model",
    "check_scenario",
    "decode_inputs",
    "encode_inputs",
    "load_artifact",
    "make_specs",
    "prop_never",
    "reference_inputs",
    "reference_result",
    "replay_artifact",
    "run_farm",
    "scenario_size",
    "shrink_scenario",
    "validate_scenario",
    "write_artifact",
]
