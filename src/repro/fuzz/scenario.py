"""Scenario grammar and seeded generation for the differential fuzz farm.

A *scenario* is a fully JSON-serializable description of one random
verification problem: a network-function composition (ACL, route map,
NAT + ACL, a multi-device tunnel path, a sharded compose topology) or
a random Zen program, plus the query to ask of it.  Scenarios are the unit the farm generates,
cross-checks, shrinks, and files in repro artifacts, so everything
about them is plain data:

* :class:`ScenarioGenerator` derives every scenario deterministically
  from ``(seed, index)`` — same pair, same scenario, on any platform
  and in any process (string seeding of ``random.Random`` hashes with
  SHA-512, independent of ``PYTHONHASHSEED``);
* :func:`build_scenario_model` rebuilds the boolean-valued
  :class:`~repro.core.function.ZenFunction` from the JSON payload.  It
  is a module-level callable so a
  :class:`~repro.service.spec.QuerySpec` can reference it as
  ``"repro.fuzz.scenario:build_scenario_model"`` with the payload as a
  (picklable) builder argument and any subprocess worker can rebuild
  the exact model;
* :func:`validate_scenario` rejects malformed payloads, which lets the
  shrinker propose aggressive edits and cheaply discard the nonsense
  ones.

Every model is boolean-valued, so ``find`` needs no predicate and
``verify`` uses the single generic invariant :func:`prop_never`
("the model never returns True"), whose counterexample is exactly a
``find`` witness.  SAT and BDD must agree on satisfiability, any
witness must replay concretely, and the independent reference
interpreter (:mod:`repro.fuzz.reference`) must concur — that triple
agreement is the farm's oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.function import ZenFunction
from ..lang import Byte, UShort, Zen, constant, if_
from ..network.acl import Acl, AclRule, acl_allows, acl_match_line
from ..network.device import Device, Interface, forward_along_path
from ..network.fib import FwdRule, FwdTable
from ..network.gre import GreTunnel
from ..network.ip import Prefix
from ..network.nat import NatRule, NatTable, apply_nat
from ..network.packet import Header, Packet
from ..network.routemap import (
    PrefixRange,
    Route,
    RouteMap,
    RouteMapClause,
    apply_route_map,
    route_map_match_line,
)
from ..workloads.generators import (
    random_acl_rule,
    random_nat_rule,
    random_port_range,
    random_prefix,
)

__all__ = [
    "SCENARIO_KINDS",
    "SCENARIO_VERSION",
    "ScenarioGenerator",
    "build_scenario_model",
    "prop_never",
    "scenario_label",
    "scenario_rng",
    "validate_scenario",
]

SCENARIO_VERSION = 1

#: Scenario families the generator can emit.
SCENARIO_KINDS = ("acl", "routemap", "nat", "path", "zen", "topology")

#: Integer operators of the random-Zen-program grammar.
_INT_BINOPS = ("add", "sub", "mul", "band", "bor", "bxor", "shl", "shr")
_CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_BOOL_BINOPS = ("and", "or")


def scenario_rng(seed: int, index: int) -> random.Random:
    """The deterministic random stream of scenario ``(seed, index)``."""
    return random.Random(f"repro-fuzz:{seed}:{index}")


def scenario_label(data: Dict[str, Any]) -> str:
    """A short human identifier, echoed through specs and artifacts."""
    return f"fuzz-{data.get('kind')}-s{data.get('seed')}-i{data.get('index')}"


def prop_never(*args: Zen) -> Zen:
    """The generic ``verify`` invariant: the model never returns True.

    The last argument is the model's (boolean) result, so a
    counterexample to this invariant is exactly a ``find`` witness —
    which keeps find- and verify-flavoured scenarios comparable under
    the same oracle.
    """
    return ~args[-1]


# ----------------------------------------------------------------------
# JSON encoding of model fragments
# ----------------------------------------------------------------------


def _prefix_to_json(prefix: Prefix) -> List[int]:
    return [prefix.address, prefix.length]


def _prefix_from_json(data: Sequence[int]) -> Prefix:
    return Prefix(int(data[0]), int(data[1]))


def _ports_to_json(ports: Optional[Tuple[int, int]]) -> Optional[List[int]]:
    return None if ports is None else [ports[0], ports[1]]


def _ports_from_json(data: Optional[Sequence[int]]) -> Optional[Tuple[int, int]]:
    return None if data is None else (int(data[0]), int(data[1]))


def _acl_rule_to_json(rule: AclRule) -> Dict[str, Any]:
    return {
        "action": rule.action,
        "src": _prefix_to_json(rule.src),
        "dst": _prefix_to_json(rule.dst),
        "src_ports": _ports_to_json(rule.src_ports),
        "dst_ports": _ports_to_json(rule.dst_ports),
        "protocol": rule.protocol,
    }


def _acl_rule_from_json(data: Dict[str, Any]) -> AclRule:
    return AclRule(
        action=bool(data["action"]),
        src=_prefix_from_json(data["src"]),
        dst=_prefix_from_json(data["dst"]),
        src_ports=_ports_from_json(data.get("src_ports")),
        dst_ports=_ports_from_json(data.get("dst_ports")),
        protocol=data.get("protocol"),
    )


def _acl_from_json(rules: Sequence[Dict[str, Any]], name: str) -> Acl:
    return Acl.of(name, [_acl_rule_from_json(rule) for rule in rules])


def _nat_rule_to_json(rule: NatRule) -> Dict[str, Any]:
    return {
        "match_src": _prefix_to_json(rule.match_src),
        "match_dst": _prefix_to_json(rule.match_dst),
        "translate_src": (
            None
            if rule.translate_src is None
            else _prefix_to_json(rule.translate_src)
        ),
        "translate_dst": (
            None
            if rule.translate_dst is None
            else _prefix_to_json(rule.translate_dst)
        ),
        "set_src_port": rule.set_src_port,
        "set_dst_port": rule.set_dst_port,
    }


def _nat_rule_from_json(data: Dict[str, Any]) -> NatRule:
    return NatRule(
        match_src=_prefix_from_json(data["match_src"]),
        match_dst=_prefix_from_json(data["match_dst"]),
        translate_src=(
            None
            if data.get("translate_src") is None
            else _prefix_from_json(data["translate_src"])
        ),
        translate_dst=(
            None
            if data.get("translate_dst") is None
            else _prefix_from_json(data["translate_dst"])
        ),
        set_src_port=data.get("set_src_port"),
        set_dst_port=data.get("set_dst_port"),
    )


def _clause_to_json(clause: RouteMapClause) -> Dict[str, Any]:
    return {
        "action": clause.action,
        "match_prefixes": [
            [_prefix_to_json(entry.prefix), entry.ge, entry.le]
            for entry in clause.match_prefixes
        ],
        "match_community": clause.match_community,
        "match_as_path_contains": clause.match_as_path_contains,
        "set_local_pref": clause.set_local_pref,
        "set_med": clause.set_med,
        "add_community": clause.add_community,
        "prepend_as": clause.prepend_as,
    }


def _clause_from_json(data: Dict[str, Any]) -> RouteMapClause:
    return RouteMapClause(
        action=bool(data["action"]),
        match_prefixes=tuple(
            PrefixRange(_prefix_from_json(entry[0]), ge=entry[1], le=entry[2])
            for entry in data.get("match_prefixes", [])
        ),
        match_community=data.get("match_community"),
        match_as_path_contains=data.get("match_as_path_contains"),
        set_local_pref=data.get("set_local_pref"),
        set_med=data.get("set_med"),
        add_community=data.get("add_community"),
        prepend_as=data.get("prepend_as"),
    )


# ----------------------------------------------------------------------
# Model builders (the QuerySpec builder target)
# ----------------------------------------------------------------------


def build_scenario_model(data: Dict[str, Any]) -> ZenFunction:
    """Rebuild the boolean Zen model a scenario payload describes.

    This is the fuzz farm's ``QuerySpec`` builder: the payload dict is
    picklable and JSON-serializable, so the same scenario can cross a
    worker pipe, live in a repro artifact, and be rebuilt bit-for-bit
    in any process.
    """
    validate_scenario(data)
    kind = data["kind"]
    payload = data["payload"]
    name = scenario_label(data)
    if kind == "acl":
        acl = _acl_from_json(payload["rules"], name)
        target = payload["target_line"]

        def acl_model(h: Zen) -> Zen:
            return acl_match_line(acl, h) == target

        return ZenFunction(acl_model, [Header], name=name)
    if kind == "nat":
        table = NatTable.of(
            name, [_nat_rule_from_json(rule) for rule in payload["rules"]]
        )
        acl = _acl_from_json(payload["acl"], f"{name}-acl")

        def nat_model(h: Zen) -> Zen:
            return acl_allows(acl, apply_nat(table, h))

        return ZenFunction(nat_model, [Header], name=name)
    if kind == "routemap":
        route_map = RouteMap.of(
            name, [_clause_from_json(c) for c in payload["clauses"]]
        )
        target = payload["target_line"]
        check_local_pref = payload.get("check_local_pref")

        def route_model(r: Zen) -> Zen:
            matched = route_map_match_line(route_map, r) == target
            if check_local_pref is None:
                return matched
            result = apply_route_map(route_map, r)
            return (
                matched
                & result.has_value()
                & (result.value().local_pref == check_local_pref)
            )

        return ZenFunction(route_model, [Route], name=name)
    if kind == "path":
        path = _build_path(payload)

        def path_model(p: Zen) -> Zen:
            return forward_along_path(path, p).has_value()

        return ZenFunction(path_model, [Packet], name=name)
    if kind == "topology":
        return _build_topology_model(payload, name)
    # kind == "zen"
    width = payload["width"]
    int_type = Byte if width == 8 else UShort
    ast = payload["ast"]

    def zen_model(x: Zen, y: Zen) -> Zen:
        return _build_bool(ast, (x, y), int_type)

    return ZenFunction(zen_model, [int_type, int_type], name=name)


def _build_path(payload: Dict[str, Any]) -> List[Interface]:
    """Materialize the device chain: in/out interface per device.

    The chain is implicit: each device has interface 1 (inbound) and
    interface 2 (outbound), the packet traverses devices in order, so
    the Figure-7 path is ``[d0:1, d0:2, d1:1, d1:2, ...]``.
    """
    path: List[Interface] = []
    for position, desc in enumerate(payload["devices"]):
        fib = FwdTable.of(
            [
                FwdRule(_prefix_from_json(rule[0]), int(rule[1]))
                for rule in desc["fib"]
            ]
        )
        device = Device(name=f"d{position}", fib=fib)
        for intf_id, role in ((1, "in"), (2, "out")):
            spec = desc["interfaces"][role]
            acl_in = spec.get("acl_in")
            acl_out = spec.get("acl_out")
            tunnel_start = spec.get("gre_start")
            tunnel_end = spec.get("gre_end")
            intf = Interface(
                id=intf_id,
                device=device,
                acl_in=(
                    None
                    if acl_in is None
                    else _acl_from_json(acl_in, f"d{position}:{intf_id}-in")
                ),
                acl_out=(
                    None
                    if acl_out is None
                    else _acl_from_json(acl_out, f"d{position}:{intf_id}-out")
                ),
                gre_start=(
                    None
                    if tunnel_start is None
                    else GreTunnel(int(tunnel_start[0]), int(tunnel_start[1]))
                ),
                gre_end=(
                    None
                    if tunnel_end is None
                    else GreTunnel(int(tunnel_end[0]), int(tunnel_end[1]))
                ),
            )
            device.interfaces.append(intf)
            path.append(intf)
    return path


def _build_topology_model(payload: Dict[str, Any], name: str) -> ZenFunction:
    """A single boolean Zen model of a whole topology query.

    Unrolls the compose monolith's product machine
    (:mod:`repro.compose.monolith`) for the simulator's hop bound, so
    ``evaluate(header)`` decides "does this injected header get
    delivered on target?" with exactly the hop semantics every other
    derivation uses.  The oracle only ever evaluates this model
    concretely (topology scenarios are *decided* by the compose
    subsystem itself); the unroll shares subterms, and the concrete
    evaluator memoizes per node, so evaluation stays linear in the
    expression DAG.
    """
    # Imported lazily: compose sits above the service layer, and this
    # module must stay importable inside bare worker processes.
    from ..compose.cubes import cover_predicate
    from ..compose.monolith import NetState, _device_hop
    from ..compose.topo import device_models, link_map
    from ..lang import create

    topo, query = payload["topo"], payload["query"]
    models = device_models(topo)
    links = link_map(topo)
    names = sorted(models)
    index_of = {device: i for i, device in enumerate(names)}
    sink = (query["sink"][0], int(query["sink"][1]))
    source = (query["source"][0], int(query["source"][1]))
    max_hops = 4 * len(names) + 8

    def topology_model(h: Zen) -> Zen:
        s = create(
            NetState,
            hdr=h,
            device=constant(index_of[source[0]], Byte),
            port=constant(source[1], Byte),
            alive=constant(True, bool),
        )
        for _ in range(max_hops):
            step = s  # dead and delivered states absorb
            for device in names:
                hop = _device_hop(s, models[device], links, index_of, sink)
                step = if_((s.device == index_of[device]) & s.alive, hop, step)
            s = step
        delivered = (s.device == len(names)) & s.alive
        return (
            cover_predicate(h, query.get("headers"))
            & delivered
            & cover_predicate(s.hdr, query.get("target"))
        )

    return ZenFunction(topology_model, [Header], name=name)


def _build_int(node: Sequence[Any], args: Tuple[Zen, ...], int_type: Any) -> Zen:
    op = node[0]
    if op == "var":
        return args[node[1]]
    if op == "const":
        return constant(node[1], int_type)
    if op == "bnot":
        return ~_build_int(node[1], args, int_type)
    if op == "neg":
        return -_build_int(node[1], args, int_type)
    if op == "ite":
        return if_(
            _build_bool(node[1], args, int_type),
            _build_int(node[2], args, int_type),
            _build_int(node[3], args, int_type),
        )
    left = _build_int(node[1], args, int_type)
    right = _build_int(node[2], args, int_type)
    if op == "add":
        return left + right
    if op == "sub":
        return left - right
    if op == "mul":
        return left * right
    if op == "band":
        return left & right
    if op == "bor":
        return left | right
    if op == "bxor":
        return left ^ right
    if op == "shl":
        return left << right
    # validate_scenario guarantees op == "shr" here
    return left >> right


def _build_bool(node: Sequence[Any], args: Tuple[Zen, ...], int_type: Any) -> Zen:
    op = node[0]
    if op == "true":
        return constant(True, bool)
    if op == "false":
        return constant(False, bool)
    if op == "not":
        return ~_build_bool(node[1], args, int_type)
    if op == "bif":
        return if_(
            _build_bool(node[1], args, int_type),
            _build_bool(node[2], args, int_type),
            _build_bool(node[3], args, int_type),
        )
    if op in _BOOL_BINOPS:
        left = _build_bool(node[1], args, int_type)
        right = _build_bool(node[2], args, int_type)
        return left & right if op == "and" else left | right
    # comparison over integer subexpressions
    left = _build_int(node[1], args, int_type)
    right = _build_int(node[2], args, int_type)
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "gt":
        return left > right
    # validate_scenario guarantees op == "ge" here
    return left >= right


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid scenario: {message}")


def _validate_prefix(data: Any, where: str) -> None:
    _require(
        isinstance(data, (list, tuple)) and len(data) == 2,
        f"{where}: prefix must be [address, length]",
    )
    _require(
        isinstance(data[0], int) and 0 <= data[0] <= 0xFFFFFFFF,
        f"{where}: prefix address out of range",
    )
    _require(
        isinstance(data[1], int) and 0 <= data[1] <= 32,
        f"{where}: prefix length out of range",
    )


def _validate_ports(data: Any, where: str) -> None:
    if data is None:
        return
    _require(
        isinstance(data, (list, tuple))
        and len(data) == 2
        and all(isinstance(p, int) and 0 <= p <= 0xFFFF for p in data)
        and data[0] <= data[1],
        f"{where}: malformed port range",
    )


def _validate_acl_rules(rules: Any, where: str) -> None:
    _require(isinstance(rules, list) and rules, f"{where}: needs >= 1 rule")
    for i, rule in enumerate(rules):
        _require(isinstance(rule, dict), f"{where}[{i}]: rule must be a dict")
        _require(
            isinstance(rule.get("action"), bool), f"{where}[{i}]: bool action"
        )
        _validate_prefix(rule.get("src"), f"{where}[{i}].src")
        _validate_prefix(rule.get("dst"), f"{where}[{i}].dst")
        _validate_ports(rule.get("src_ports"), f"{where}[{i}].src_ports")
        _validate_ports(rule.get("dst_ports"), f"{where}[{i}].dst_ports")
        proto = rule.get("protocol")
        _require(
            proto is None or (isinstance(proto, int) and 0 <= proto <= 255),
            f"{where}[{i}].protocol out of range",
        )


def _validate_int_ast(node: Any, num_vars: int, width: int, depth: int) -> None:
    _require(depth < 32, "zen ast too deep")
    _require(
        isinstance(node, (list, tuple)) and node and isinstance(node[0], str),
        "zen ast node must be [op, ...]",
    )
    op = node[0]
    if op == "var":
        _require(
            len(node) == 2
            and isinstance(node[1], int)
            and 0 <= node[1] < num_vars,
            "zen var index out of range",
        )
        return
    if op == "const":
        _require(
            len(node) == 2
            and isinstance(node[1], int)
            and 0 <= node[1] < (1 << width),
            "zen const out of range",
        )
        return
    if op in ("bnot", "neg"):
        _require(len(node) == 2, f"{op} takes one operand")
        _validate_int_ast(node[1], num_vars, width, depth + 1)
        return
    if op == "ite":
        _require(len(node) == 4, "ite takes cond/then/else")
        _validate_bool_ast(node[1], num_vars, width, depth + 1)
        _validate_int_ast(node[2], num_vars, width, depth + 1)
        _validate_int_ast(node[3], num_vars, width, depth + 1)
        return
    _require(op in _INT_BINOPS, f"unknown int op {op!r}")
    _require(len(node) == 3, f"{op} takes two operands")
    _validate_int_ast(node[1], num_vars, width, depth + 1)
    _validate_int_ast(node[2], num_vars, width, depth + 1)


def _validate_bool_ast(node: Any, num_vars: int, width: int, depth: int) -> None:
    _require(depth < 32, "zen ast too deep")
    _require(
        isinstance(node, (list, tuple)) and node and isinstance(node[0], str),
        "zen ast node must be [op, ...]",
    )
    op = node[0]
    if op in ("true", "false"):
        _require(len(node) == 1, f"{op} takes no operands")
        return
    if op == "not":
        _require(len(node) == 2, "not takes one operand")
        _validate_bool_ast(node[1], num_vars, width, depth + 1)
        return
    if op == "bif":
        _require(len(node) == 4, "bif takes cond/then/else")
        for child in node[1:]:
            _validate_bool_ast(child, num_vars, width, depth + 1)
        return
    if op in _BOOL_BINOPS:
        _require(len(node) == 3, f"{op} takes two operands")
        _validate_bool_ast(node[1], num_vars, width, depth + 1)
        _validate_bool_ast(node[2], num_vars, width, depth + 1)
        return
    _require(op in _CMP_OPS, f"unknown bool op {op!r}")
    _require(len(node) == 3, f"{op} takes two operands")
    _validate_int_ast(node[1], num_vars, width, depth + 1)
    _validate_int_ast(node[2], num_vars, width, depth + 1)


def validate_scenario(data: Any) -> Dict[str, Any]:
    """Check a scenario payload's shape; raises ValueError when broken.

    The shrinker leans on this: it proposes aggressive structural
    edits and discards any candidate that no longer validates, so the
    builder can assume a well-formed payload.
    """
    _require(isinstance(data, dict), "scenario must be a dict")
    _require(data.get("version") == SCENARIO_VERSION, "unknown version")
    kind = data.get("kind")
    _require(kind in SCENARIO_KINDS, f"unknown kind {kind!r}")
    _require(data.get("query") in ("find", "verify"), "bad query kind")
    _require(
        isinstance(data.get("max_list_length"), int)
        and 1 <= data["max_list_length"] <= 8,
        "bad max_list_length",
    )
    # Unknown bug names would silently behave as "no bug" in the
    # reference interpreter; reject them instead.
    from .reference import KNOWN_BUGS, SYSTEM_BUGS

    bug = data.get("bug")
    _require(
        bug is None or bug in KNOWN_BUGS or bug in SYSTEM_BUGS,
        f"unknown bug {bug!r}",
    )
    payload = data.get("payload")
    _require(isinstance(payload, dict), "payload must be a dict")
    if kind == "acl":
        _validate_acl_rules(payload.get("rules"), "acl.rules")
        target = payload.get("target_line")
        _require(
            isinstance(target, int) and 0 <= target <= len(payload["rules"]),
            "acl.target_line out of range",
        )
    elif kind == "nat":
        rules = payload.get("rules")
        _require(isinstance(rules, list), "nat.rules must be a list")
        for i, rule in enumerate(rules):
            _require(isinstance(rule, dict), f"nat.rules[{i}] must be a dict")
            _validate_prefix(rule.get("match_src"), f"nat.rules[{i}].match_src")
            _validate_prefix(rule.get("match_dst"), f"nat.rules[{i}].match_dst")
            for key in ("translate_src", "translate_dst"):
                if rule.get(key) is not None:
                    _validate_prefix(rule[key], f"nat.rules[{i}].{key}")
            for key in ("set_src_port", "set_dst_port"):
                port = rule.get(key)
                _require(
                    port is None
                    or (isinstance(port, int) and 0 <= port <= 0xFFFF),
                    f"nat.rules[{i}].{key} out of range",
                )
        _validate_acl_rules(payload.get("acl"), "nat.acl")
    elif kind == "routemap":
        clauses = payload.get("clauses")
        _require(isinstance(clauses, list) and clauses, "routemap needs clauses")
        for i, clause in enumerate(clauses):
            _require(isinstance(clause, dict), f"clauses[{i}] must be a dict")
            _require(
                isinstance(clause.get("action"), bool),
                f"clauses[{i}]: bool action",
            )
            for j, entry in enumerate(clause.get("match_prefixes", [])):
                _require(
                    isinstance(entry, (list, tuple)) and len(entry) == 3,
                    f"clauses[{i}].match_prefixes[{j}] malformed",
                )
                _validate_prefix(entry[0], f"clauses[{i}].match_prefixes[{j}]")
                _require(
                    isinstance(entry[1], int)
                    and isinstance(entry[2], int)
                    and 0 <= entry[1] <= entry[2] <= 32,
                    f"clauses[{i}].match_prefixes[{j}]: bad ge/le",
                )
        target = payload.get("target_line")
        _require(
            isinstance(target, int) and 0 <= target <= len(clauses),
            "routemap.target_line out of range",
        )
        check = payload.get("check_local_pref")
        _require(
            check is None or (isinstance(check, int) and check >= 0),
            "routemap.check_local_pref out of range",
        )
    elif kind == "path":
        devices = payload.get("devices")
        _require(isinstance(devices, list) and devices, "path needs devices")
        for i, desc in enumerate(devices):
            _require(isinstance(desc, dict), f"devices[{i}] must be a dict")
            fib = desc.get("fib")
            _require(isinstance(fib, list), f"devices[{i}].fib must be a list")
            for j, rule in enumerate(fib):
                _require(
                    isinstance(rule, (list, tuple)) and len(rule) == 2,
                    f"devices[{i}].fib[{j}] must be [prefix, port]",
                )
                _validate_prefix(rule[0], f"devices[{i}].fib[{j}]")
                _require(
                    isinstance(rule[1], int) and 0 <= rule[1] <= 255,
                    f"devices[{i}].fib[{j}] port out of range",
                )
            intfs = desc.get("interfaces")
            _require(
                isinstance(intfs, dict)
                and set(intfs) == {"in", "out"},
                f"devices[{i}].interfaces needs in/out",
            )
            for role, spec in intfs.items():
                where = f"devices[{i}].{role}"
                _require(isinstance(spec, dict), f"{where} must be a dict")
                for key in ("acl_in", "acl_out"):
                    if spec.get(key) is not None:
                        _validate_acl_rules(spec[key], f"{where}.{key}")
                for key in ("gre_start", "gre_end"):
                    tunnel = spec.get(key)
                    if tunnel is None:
                        continue
                    _require(
                        isinstance(tunnel, (list, tuple))
                        and len(tunnel) == 2
                        and all(
                            isinstance(ip, int) and 0 <= ip <= 0xFFFFFFFF
                            for ip in tunnel
                        ),
                        f"{where}.{key} malformed",
                    )
    elif kind == "topology":
        topo = payload.get("topo")
        query = payload.get("query")
        _require(isinstance(topo, dict), "topology needs a topo dict")
        _require(isinstance(query, dict), "topology needs a query dict")
        # Compose owns the payload schema; its validators raise the
        # same ValueError contract the shrinker relies on.
        from ..compose.topo import validate_query, validate_topology

        validate_topology(topo)
        validate_query(topo, query)
        _require(
            len(topo["devices"]) <= 8,
            "topology scenarios stay small (<= 8 devices)",
        )
    else:  # kind == "zen"
        width = payload.get("width")
        _require(width in (8, 16), "zen.width must be 8 or 16")
        _validate_int_vars = payload.get("vars")
        _require(
            isinstance(_validate_int_vars, int) and 1 <= _validate_int_vars <= 2,
            "zen.vars must be 1 or 2",
        )
        _validate_bool_ast(payload.get("ast"), _validate_int_vars, width, 0)
    return data


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorLimits:
    """Size knobs of the scenario grammar (kept small: the farm's
    power comes from volume and diversity, not from individual giant
    instances — and small scenarios shrink fast)."""

    max_acl_rules: int = 8
    max_nat_rules: int = 4
    max_clauses: int = 5
    max_devices: int = 4
    max_fib_rules: int = 4
    max_ast_depth: int = 4
    max_list_length: int = 2


class ScenarioGenerator:
    """Deterministic scenario stream: ``(seed, index) -> scenario``.

    ``inject_bug`` stamps every scenario with a named oracle bug
    (interpreted by :mod:`repro.fuzz.reference`) — the canary that
    proves the farm can catch, shrink, and reproduce a real defect.
    """

    def __init__(
        self,
        seed: int = 0,
        kinds: Sequence[str] = SCENARIO_KINDS,
        limits: GeneratorLimits = GeneratorLimits(),
        inject_bug: Optional[str] = None,
    ):
        unknown = set(kinds) - set(SCENARIO_KINDS)
        if unknown:
            raise ValueError(f"unknown scenario kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("ScenarioGenerator needs at least one kind")
        self.seed = seed
        self.kinds = tuple(kinds)
        self.limits = limits
        self.inject_bug = inject_bug

    def scenario(self, index: int) -> Dict[str, Any]:
        """Generate (deterministically) the index-th scenario."""
        rng = scenario_rng(self.seed, index)
        kind = rng.choice(self.kinds)
        payload_fn = getattr(self, f"_gen_{kind}")
        data = {
            "version": SCENARIO_VERSION,
            "seed": self.seed,
            "index": index,
            "kind": kind,
            "query": rng.choice(("find", "find", "verify")),
            "max_list_length": self.limits.max_list_length,
            "bug": self.inject_bug,
            "payload": payload_fn(rng),
        }
        return validate_scenario(data)

    # -- per-kind payload grammars --------------------------------------

    def _gen_acl(self, rng: random.Random) -> Dict[str, Any]:
        num_rules = rng.randint(2, self.limits.max_acl_rules)
        rules = [
            _acl_rule_to_json(random_acl_rule(rng, min_len=0, max_len=32))
            for _ in range(num_rules - 1)
        ]
        # Catch-all last line, as in the Figure-10 workload.
        rules.append(_acl_rule_to_json(AclRule(action=True)))
        # Mostly ask about the last line (needs reasoning about every
        # earlier line); sometimes about a random inner line or the
        # no-match case (0), which is unsat against a catch-all.
        roll = rng.random()
        if roll < 0.6:
            target = num_rules
        elif roll < 0.9:
            target = rng.randint(1, num_rules)
        else:
            target = 0
        return {"rules": rules, "target_line": target}

    def _gen_nat(self, rng: random.Random) -> Dict[str, Any]:
        rules = [
            _nat_rule_to_json(random_nat_rule(rng))
            for _ in range(rng.randint(1, self.limits.max_nat_rules))
        ]
        acl = [
            _acl_rule_to_json(random_acl_rule(rng, min_len=4, max_len=24))
            for _ in range(rng.randint(1, 4))
        ]
        if rng.random() < 0.7:
            acl.append(_acl_rule_to_json(AclRule(action=rng.random() < 0.7)))
        return {"rules": rules, "acl": acl}

    def _gen_routemap(self, rng: random.Random) -> Dict[str, Any]:
        num_clauses = rng.randint(2, self.limits.max_clauses)
        clauses = []
        for _ in range(num_clauses - 1):
            prefix = random_prefix(rng, min_len=8, max_len=24)
            ge = rng.randint(prefix.length, 32)
            le = rng.randint(ge, 32)
            clauses.append(
                {
                    "action": rng.random() < 0.6,
                    "match_prefixes": [[_prefix_to_json(prefix), ge, le]],
                    "match_community": (
                        rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                    ),
                    "match_as_path_contains": (
                        rng.randint(1, 1 << 14) if rng.random() < 0.2 else None
                    ),
                    "set_local_pref": (
                        rng.randint(0, 400) if rng.random() < 0.5 else None
                    ),
                    "set_med": (
                        rng.randint(0, 100) if rng.random() < 0.3 else None
                    ),
                    "add_community": (
                        rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                    ),
                    "prepend_as": (
                        rng.randint(1, 1 << 14) if rng.random() < 0.2 else None
                    ),
                }
            )
        clauses.append(
            {
                "action": True,
                "match_prefixes": [],
                "match_community": None,
                "match_as_path_contains": None,
                "set_local_pref": None,
                "set_med": None,
                "add_community": None,
                "prepend_as": None,
            }
        )
        target = rng.randint(0, num_clauses)
        check_local_pref = None
        if 1 <= target <= num_clauses and rng.random() < 0.4:
            clause = clauses[target - 1]
            if clause["action"]:
                if clause["set_local_pref"] is not None and rng.random() < 0.7:
                    check_local_pref = clause["set_local_pref"]
                else:
                    check_local_pref = rng.randint(0, 500)
        return {
            "clauses": clauses,
            "target_line": target,
            "check_local_pref": check_local_pref,
        }

    def _maybe_acl_json(
        self, rng: random.Random, permissive_bias: float = 0.7
    ) -> Optional[List[Dict[str, Any]]]:
        if rng.random() >= 0.4:
            return None
        rules = [
            _acl_rule_to_json(random_acl_rule(rng, min_len=0, max_len=16))
            for _ in range(rng.randint(1, 2))
        ]
        if rng.random() < permissive_bias:
            rules.append(_acl_rule_to_json(AclRule(action=True)))
        return rules

    def _gen_path(self, rng: random.Random) -> Dict[str, Any]:
        num_devices = rng.randint(2, self.limits.max_devices)
        # A destination the chain plausibly forwards towards: every
        # device gets a route for it out of port 2 (the chain's out
        # interface), buried among noise routes.
        target = random_prefix(rng, min_len=8, max_len=24)
        devices = []
        for _ in range(num_devices):
            fib = [[_prefix_to_json(target), 2]]
            for _ in range(rng.randint(0, self.limits.max_fib_rules - 1)):
                fib.append(
                    [
                        _prefix_to_json(random_prefix(rng, min_len=0, max_len=32)),
                        rng.randint(1, 3),
                    ]
                )
            rng.shuffle(fib)
            devices.append(
                {
                    "fib": fib,
                    "interfaces": {
                        "in": {
                            "acl_in": self._maybe_acl_json(rng),
                            "acl_out": None,
                            "gre_start": None,
                            "gre_end": None,
                        },
                        "out": {
                            "acl_in": None,
                            "acl_out": self._maybe_acl_json(rng),
                            "gre_start": None,
                            "gre_end": None,
                        },
                    },
                }
            )
        if num_devices >= 2 and rng.random() < 0.5:
            # A GRE tunnel across a sub-chain: encap at device i's out
            # interface, decap at device j's in interface.
            i = rng.randint(0, num_devices - 2)
            j = rng.randint(i + 1, num_devices - 1)
            tunnel = [rng.getrandbits(32), rng.getrandbits(32)]
            devices[i]["interfaces"]["out"]["gre_start"] = tunnel
            devices[j]["interfaces"]["in"]["gre_end"] = tunnel
            # The tunneled hops forward on the underlay destination:
            # give them a route for it so encap'd traffic can survive.
            for k in range(i, j + 1):
                if rng.random() < 0.8:
                    devices[k]["fib"].append([[tunnel[1], 32], 2])
        return {"devices": devices}

    def _gen_topology(self, rng: random.Random) -> Dict[str, Any]:
        """A small compose topology plus its end-to-end query.

        Reuses the workload chain builder (the compose payload format's
        canonical generator) with a scenario-derived seed, so the
        emitted JSON is exactly what :func:`repro.compose.run_composed`
        consumes.  Queries often pin ``dst_ip`` — a constrained header
        cover is what makes assume-guarantee discharge (and the
        ``compose-drop-assumption`` canary) actually bite on rewriting
        chains.
        """
        from ..workloads.generators import chain_query, chain_topology

        num_devices = rng.randint(2, min(4, self.limits.max_devices))
        topo = chain_topology(
            num_devices,
            seed=rng.getrandbits(32),
            nat_probability=rng.choice((0.0, 0.4, 0.7)),
            acl_probability=rng.choice((0.0, 0.4)),
        )
        query = chain_query(num_devices)
        if rng.random() < 0.6:
            length = rng.choice((8, 16, 24, 32))
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            query["headers"] = [
                {"dst_ip": [rng.getrandbits(32) & mask, mask]}
            ]
        return {"topo": topo, "query": query}

    def _gen_zen(self, rng: random.Random) -> Dict[str, Any]:
        width = rng.choice((8, 8, 16))
        num_vars = rng.randint(1, 2)
        depth = rng.randint(2, self.limits.max_ast_depth)
        ast = self._gen_bool_ast(rng, num_vars, width, depth)
        return {"width": width, "vars": num_vars, "ast": ast}

    def _gen_int_ast(
        self, rng: random.Random, num_vars: int, width: int, depth: int
    ) -> List[Any]:
        if depth <= 0 or rng.random() < 0.3:
            if rng.random() < 0.6:
                return ["var", rng.randrange(num_vars)]
            # Bias constants towards boundary values, where wraparound
            # and shift edge cases live.
            pool = [0, 1, 2, (1 << width) - 1, (1 << (width - 1)), width]
            if rng.random() < 0.5:
                return ["const", rng.choice(pool)]
            return ["const", rng.randrange(1 << width)]
        roll = rng.random()
        if roll < 0.1:
            return ["bnot", self._gen_int_ast(rng, num_vars, width, depth - 1)]
        if roll < 0.15:
            return ["neg", self._gen_int_ast(rng, num_vars, width, depth - 1)]
        if roll < 0.25:
            return [
                "ite",
                self._gen_bool_ast(rng, num_vars, width, depth - 1),
                self._gen_int_ast(rng, num_vars, width, depth - 1),
                self._gen_int_ast(rng, num_vars, width, depth - 1),
            ]
        op = rng.choice(_INT_BINOPS)
        return [
            op,
            self._gen_int_ast(rng, num_vars, width, depth - 1),
            self._gen_int_ast(rng, num_vars, width, depth - 1),
        ]

    def _gen_bool_ast(
        self, rng: random.Random, num_vars: int, width: int, depth: int
    ) -> List[Any]:
        if depth <= 0:
            return [rng.choice(_CMP_OPS), ["var", 0], ["const", rng.randrange(1 << width)]]
        roll = rng.random()
        if roll < 0.5:
            return [
                rng.choice(_CMP_OPS),
                self._gen_int_ast(rng, num_vars, width, depth - 1),
                self._gen_int_ast(rng, num_vars, width, depth - 1),
            ]
        if roll < 0.8:
            return [
                rng.choice(_BOOL_BINOPS),
                self._gen_bool_ast(rng, num_vars, width, depth - 1),
                self._gen_bool_ast(rng, num_vars, width, depth - 1),
            ]
        if roll < 0.9:
            return ["not", self._gen_bool_ast(rng, num_vars, width, depth - 1)]
        return [
            "bif",
            self._gen_bool_ast(rng, num_vars, width, depth - 1),
            self._gen_bool_ast(rng, num_vars, width, depth - 1),
            self._gen_bool_ast(rng, num_vars, width, depth - 1),
        ]
