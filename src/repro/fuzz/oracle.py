"""The differential cross-check oracle: SAT vs BDD vs concrete vs reference.

One scenario, four independent derivations of the same semantics:

1. the **SAT** backend's verdict (witness or unsat);
2. the **BDD** backend's verdict;
3. the **concrete evaluator** — every witness is replayed through it
   (the library's own ``validate=True`` self-check), and probe inputs
   are evaluated directly;
4. the **reference interpreter** (:mod:`repro.fuzz.reference`) — a
   from-scratch reimplementation off the JSON payload.

:func:`check_scenario` runs a scenario through all four and folds the
comparisons into one :class:`OracleReport`.  A failure carries a
*signature* — a short structural tuple like ``("unsound", "sat")`` or
``("ref_divergence", "probe")`` — which is what the shrinker preserves
while minimizing and what artifacts key on.  Budget and hard-timeout
exhaustion are *explained* outcomes, not failures: a fuzz campaign
under tight budgets must distinguish "the solver ran out of rope" from
"the solvers contradict each other".

Two execution modes share all comparison logic:

* **in-process** (default): solve directly in this process — fast,
  no pickling, what the shrinker uses for its thousands of candidate
  checks;
* **service** (pass an ``engine``): ship the query through
  :meth:`~repro.service.QueryEngine.run_differential`, exercising the
  full fault-isolated path — subprocess workers, retry ladders, hard
  deadlines, and the engine's own disagreement detection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.budget import Budget, start_meter
from ..errors import (
    ZenBackendDisagreement,
    ZenBudgetExceeded,
    ZenError,
    ZenOverloadShed,
    ZenQueueFull,
    ZenServiceError,
    ZenUnsoundResultError,
)
from .reference import _in_cover, reference_inputs, reference_result
from .scenario import build_scenario_model, prop_never, scenario_label

__all__ = [
    "OracleReport",
    "check_scenario",
    "make_specs",
    "ORACLE_BACKENDS",
]

ORACLE_BACKENDS = ("sat", "bdd")

#: Attempt outcomes that count as explained (resource) exhaustion
#: rather than semantic failures when the service path gives up.
#: Overload-protection outcomes (shed_overload, deadline_expired,
#: engine_shutdown) belong here: a chaos-injected storm dropping a
#: fuzz query is the admission controller working, not a solver bug.
_EXPLAINED_OUTCOMES = {
    "timeout",
    "budget_exceeded",
    "shed",
    "cancelled",
    "shed_overload",
    "deadline_expired",
    "engine_shutdown",
}
_EXPLAINED_ERROR_TYPES = {
    "ZenBudgetExceeded",
    "ZenQueryTimeout",
    "ZenOverloadShed",
    "ZenQueueFull",
}

_OVERLOAD_OUTCOMES = {"shed_overload", "engine_shutdown"}


@dataclass
class OracleReport:
    """Everything the oracle learned about one scenario.

    ``ok`` is True when every completed comparison agreed.  On
    failure, ``signature`` identifies the failure *class* (stable
    under shrinking) and ``detail`` the specifics.  ``explained``
    names a resource reason (``"budget"``/``"timeout"``) when at least
    one backend could not finish — those scenarios are neither
    failures nor clean passes and the farm reports them separately.

    ``verdicts`` maps backend name to its satisfiability verdict:
    True (validated witness), False (proved unsat), or None (did not
    complete).  ``witnesses`` holds the decoded witness tuple of every
    backend that produced one.
    """

    scenario: Dict[str, Any]
    ok: bool
    signature: Optional[Tuple[str, ...]] = None
    detail: str = ""
    explained: Optional[str] = None
    mode: str = "inprocess"
    verdicts: Dict[str, Optional[bool]] = field(default_factory=dict)
    witnesses: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    probes_checked: int = 0
    counterexample: Optional[Tuple[Any, ...]] = None
    disagreement: Optional[ZenBackendDisagreement] = None

    @property
    def failed(self) -> bool:
        return not self.ok and self.explained is None


def make_specs(
    data: Dict[str, Any],
    *,
    budget: Optional[Budget] = None,
    timeout_s: Optional[float] = None,
    trace: bool = False,
):
    """The service-mode :class:`~repro.service.QuerySpec` for a scenario.

    The builder is this package's :func:`build_scenario_model` by
    module:attribute reference, with the scenario dict as the (plain
    data, hence picklable) builder argument — any worker process can
    rebuild the model from it.
    """
    from ..service.spec import QuerySpec

    return QuerySpec(
        builder="repro.fuzz.scenario:build_scenario_model",
        builder_args=(data,),
        kind=data["query"],
        predicate=(
            "repro.fuzz.scenario:prop_never"
            if data["query"] == "verify"
            else None
        ),
        backend="sat",
        max_list_length=data["max_list_length"],
        budget=budget,
        timeout_s=timeout_s,
        label=scenario_label(data),
        trace=trace,
        # Campaigns are background work: under overload the engine may
        # shed or reject them, and the oracle treats that as explained.
        priority="fuzz",
    )


def _as_tuple(answer: Any, arity: int) -> Optional[Tuple[Any, ...]]:
    """Normalize find/verify answers to input tuples (unary unwraps)."""
    if answer is None:
        return None
    if arity == 1:
        return (answer,)
    return tuple(answer)


def _arity(data: Dict[str, Any]) -> int:
    return 2 if data["kind"] == "zen" else 1


def check_scenario(
    data: Dict[str, Any],
    *,
    engine: Any = None,
    probe_count: int = 12,
    budget: Optional[Budget] = None,
    timeout_s: Optional[float] = None,
    extra_inputs: Sequence[Tuple[Any, ...]] = (),
    monolith: bool = True,
) -> OracleReport:
    """Run the full differential oracle over one scenario.

    ``extra_inputs`` are additional concrete inputs cross-checked
    exactly like probes.  The shrinker passes the original failure's
    counterexample here, so a candidate scenario keeps "failing" as
    long as that specific input still diverges — without this, each
    shrink step would re-roll the probe stream and lose the failure.

    ``monolith`` gates the joint-fixpoint arm of topology scenarios
    (it pays a multi-second relation-construction floor even on tiny
    chains); the farm samples it rather than paying it per scenario.
    Other kinds ignore the flag.
    """
    report = OracleReport(
        scenario=data, ok=True, mode="service" if engine else "inprocess"
    )
    if data["kind"] == "topology":
        _check_topology(
            data,
            report,
            engine,
            probe_count,
            budget,
            timeout_s,
            extra_inputs,
            monolith,
        )
        return report
    try:
        fn = build_scenario_model(data)
    except Exception as error:  # noqa: BLE001 - any build failure is a find
        report.ok = False
        report.signature = ("error", type(error).__name__)
        report.detail = f"model build failed: {error}"
        return report

    if engine is None:
        _solve_inprocess(data, fn, report, budget)
    else:
        _solve_service(data, report, engine, budget, timeout_s)
    if report.failed:
        return report

    _cross_check(data, fn, report, probe_count, extra_inputs)
    return report


# ----------------------------------------------------------------------
# Solving
# ----------------------------------------------------------------------


def _solve_inprocess(
    data: Dict[str, Any],
    fn: Any,
    report: OracleReport,
    budget: Optional[Budget],
) -> None:
    arity = _arity(data)
    for backend in ORACLE_BACKENDS:
        meter = start_meter(budget)
        try:
            if data["query"] == "verify":
                answer = fn.verify(
                    prop_never,
                    backend=backend,
                    max_list_length=data["max_list_length"],
                    budget=meter,
                )
            else:
                answer = fn.find(
                    backend=backend,
                    max_list_length=data["max_list_length"],
                    budget=meter,
                )
        except ZenUnsoundResultError as error:
            report.ok = False
            report.signature = ("unsound", backend)
            report.detail = str(error)
            report.verdicts[backend] = None
            return
        except ZenBudgetExceeded as error:
            report.verdicts[backend] = None
            report.explained = f"budget:{error.reason or 'exhausted'}"
            continue
        except ZenError as error:
            report.ok = False
            report.signature = ("error", type(error).__name__)
            report.detail = f"{backend} raised: {error}"
            report.verdicts[backend] = None
            return
        witness = _as_tuple(answer, arity)
        report.verdicts[backend] = witness is not None
        if witness is not None:
            report.witnesses[backend] = witness

    completed = {b: v for b, v in report.verdicts.items() if v is not None}
    if len(set(completed.values())) > 1:
        report.ok = False
        report.signature = ("backend_disagreement",)
        report.detail = f"verdicts contradict: {report.verdicts}"


def _solve_service(
    data: Dict[str, Any],
    report: OracleReport,
    engine: Any,
    budget: Optional[Budget],
    timeout_s: Optional[float],
) -> None:
    from ..errors import ZenQueryFailed

    arity = _arity(data)
    spec = make_specs(data, budget=budget, timeout_s=timeout_s)
    try:
        result = engine.run_differential(spec, backends=ORACLE_BACKENDS)
    except ZenBackendDisagreement as error:
        report.ok = False
        report.signature = ("backend_disagreement",)
        report.detail = str(error)
        report.disagreement = error
        for backend, answer in error.answers.items():
            witness = _as_tuple(answer, arity)
            report.verdicts[backend] = witness is not None
            if witness is not None:
                report.witnesses[backend] = witness
        return
    except (ZenQueueFull, ZenOverloadShed):
        # Structured backpressure: the admission controller rejected or
        # shed this query before (or instead of) solving it.  Under a
        # chaos storm this is the overload machinery working as
        # designed, not a solver bug — and ZenQueueFull arrives with no
        # attempts at all, so it must be classified before the
        # attempt-based logic below.
        report.explained = "overload"
        report.verdicts.update({b: None for b in ORACLE_BACKENDS})
        return
    except (ZenQueryFailed, ZenServiceError) as error:
        attempts = getattr(error, "attempts", ())
        unsound = [
            a for a in attempts
            if a.error_type == "ZenUnsoundResultError"
        ]
        if unsound:
            report.ok = False
            report.signature = ("unsound", unsound[0].backend)
            report.detail = unsound[0].error
            return
        if attempts and all(
            a.outcome in _EXPLAINED_OUTCOMES
            or a.error_type in _EXPLAINED_ERROR_TYPES
            for a in attempts
        ):
            outcomes = {a.outcome for a in attempts}
            if outcomes & _OVERLOAD_OUTCOMES:
                report.explained = "overload"
            elif "timeout" in outcomes or "deadline_expired" in outcomes:
                report.explained = "timeout"
            else:
                report.explained = "budget"
            report.verdicts.update({b: None for b in ORACLE_BACKENDS})
            return
        report.ok = False
        report.signature = ("error", type(error).__name__)
        report.detail = str(error)
        return
    except ZenBudgetExceeded as error:
        report.explained = f"budget:{error.reason or 'exhausted'}"
        report.verdicts.update({b: None for b in ORACLE_BACKENDS})
        return

    answers = result.answers or {result.backend: result.answer}
    for backend in ORACLE_BACKENDS:
        if backend in answers:
            witness = _as_tuple(answers[backend], arity)
            report.verdicts[backend] = witness is not None
            if witness is not None:
                report.witnesses[backend] = witness
        else:
            # run_differential already compared completed sides; a
            # missing side failed (agreed=None) — resource-explained.
            report.verdicts[backend] = None
            report.explained = report.explained or "one-sided"


# ----------------------------------------------------------------------
# Compose topologies
# ----------------------------------------------------------------------


def _budget_fields(budget: Optional[Budget]) -> Optional[Dict[str, Any]]:
    if budget is None:
        return None
    fields = ("deadline_s", "max_conflicts", "max_bdd_nodes", "max_models")
    return {
        k: getattr(budget, k)
        for k in fields
        if getattr(budget, k, None) is not None
    }


def _check_topology(
    data: Dict[str, Any],
    report: OracleReport,
    engine: Any,
    probe_count: int,
    budget: Optional[Budget],
    timeout_s: Optional[float],
    extra_inputs: Sequence[Tuple[Any, ...]],
    monolith: bool = True,
) -> None:
    """The compose differential: composed vs reference vs simulator vs
    monolith.

    Topology scenarios are not solved through find/verify — the object
    under test is :func:`~repro.compose.driver.run_composed` itself.
    Checks run cheapest-first: the composed verdict, then concrete
    probes (reference walker against the pipeline simulator, and any
    True probe against a composed "unreachable"), then witness replay,
    and only last the budget-capped monolithic fixpoint.  The monolith
    is skipped when ``extra_inputs`` pins a counterexample (shrinking
    and artifact replay): the pinned probe carries the failure, and
    the shrinker's hundreds of candidate checks must not each pay a
    joint fixpoint.
    """
    import dataclasses

    from ..compose.driver import run_composed
    from ..compose.monolith import monolithic_verdict
    from ..compose.topo import simulate
    from ..errors import ZenComposeError
    from ..network.packet import Header
    from .reference import SYSTEM_BUGS

    payload = data["payload"]
    topo, query = payload["topo"], payload["query"]
    bug = data.get("bug")

    try:
        composed = run_composed(
            topo,
            query,
            engine=engine,
            budget=_budget_fields(budget),
            timeout_s=timeout_s,
            # Reference-planted bugs stay in the reference interpreter;
            # only system bugs are interpreted by the compose pipeline.
            bug=bug if bug in SYSTEM_BUGS else None,
        )
    except ZenBudgetExceeded as error:
        report.explained = f"budget:{error.reason or 'exhausted'}"
        report.verdicts["composed"] = None
        return
    except (ZenComposeError, ZenError) as error:
        report.ok = False
        report.signature = ("error", type(error).__name__)
        report.detail = f"run_composed raised: {error}"
        report.verdicts["composed"] = None
        return
    report.verdicts["composed"] = composed.reachable

    def sim_verdict(h: Header) -> bool:
        if not _in_cover(query.get("headers"), h):
            return False
        replay = simulate(topo, query, dataclasses.asdict(h))
        if not replay["delivered"]:
            return False
        return _in_cover(query.get("target"), Header(**replay["header"]))

    rng = random.Random(
        f"repro-fuzz-probe:{data.get('seed')}:{data.get('index')}"
    )
    probes = list(extra_inputs) + reference_inputs(data, rng, count=probe_count)
    for probe in probes:
        ref_says = reference_result(data, probe)
        sim_says = sim_verdict(probe[0])
        report.probes_checked += 1
        if ref_says != sim_says:
            report.ok = False
            report.signature = ("ref_divergence", "probe")
            report.detail = (
                f"simulator={sim_says} reference={ref_says} on probe "
                f"{probe!r}"
            )
            report.counterexample = probe
            return
        if ref_says and not composed.reachable:
            report.ok = False
            report.signature = ("unsat_refuted",)
            report.detail = (
                f"composed verdict is unreachable but {probe!r} is "
                f"delivered per both concrete interpreters "
                f"(mode={composed.mode}, escalations={composed.escalations})"
            )
            report.counterexample = probe
            return

    if composed.reachable and composed.witness is not None:
        witness = (Header(**composed.witness),)
        report.witnesses["composed"] = witness
        if not reference_result(data, witness):
            report.ok = False
            report.signature = ("ref_divergence", "witness")
            report.detail = (
                "composed witness rejected by the reference "
                f"interpreter: {composed.witness!r}"
            )
            report.counterexample = witness
            return

    if extra_inputs or not monolith:
        return
    # The joint fixpoint pays a multi-second relation-construction
    # floor even on two-device chains, so the scenario deadline (tuned
    # for solver queries) would always trip: scale it up and rely on
    # the BDD node cap, which cuts genuine NAT blowups off in seconds.
    mono_budget = budget
    if budget is not None and budget.deadline_s is not None:
        mono_budget = Budget(
            deadline_s=max(15.0, 5 * budget.deadline_s),
            max_conflicts=budget.max_conflicts,
            max_bdd_nodes=budget.max_bdd_nodes or 1_000_000,
            max_models=budget.max_models,
        )
    try:
        mono = monolithic_verdict(topo, query, budget=mono_budget)
    except ZenBudgetExceeded as error:
        report.explained = f"budget:{error.reason or 'exhausted'}"
        report.verdicts["monolith"] = None
        return
    report.verdicts["monolith"] = mono.reachable
    if mono.reachable != composed.reachable:
        report.ok = False
        report.signature = ("compose_divergence",)
        report.detail = (
            f"composed={composed.reachable} monolith={mono.reachable} "
            f"(fallback={composed.monolith_fallback}, "
            f"escalations={composed.escalations})"
        )


# ----------------------------------------------------------------------
# Concrete + reference cross-checks
# ----------------------------------------------------------------------


def _cross_check(
    data: Dict[str, Any],
    fn: Any,
    report: OracleReport,
    probe_count: int,
    extra_inputs: Sequence[Tuple[Any, ...]] = (),
) -> None:
    # 1. Every witness must satisfy the model per the *reference*
    # interpreter (concrete replay already happened via validate=True;
    # this is the independent derivation).
    for backend, witness in report.witnesses.items():
        if not reference_result(data, witness):
            report.ok = False
            report.signature = ("ref_divergence", "witness")
            report.detail = (
                f"{backend} witness rejected by the reference "
                f"interpreter: {witness!r}"
            )
            report.counterexample = witness
            return

    # 2. Probe concrete inputs: the model (concrete evaluator) and the
    # reference must agree everywhere; and if the solvers proved unsat,
    # no probe may satisfy the model.
    completed = [v for v in report.verdicts.values() if v is not None]
    solver_unsat = bool(completed) and not any(completed)
    rng = random.Random(
        f"repro-fuzz-probe:{data.get('seed')}:{data.get('index')}"
    )
    probes = list(extra_inputs) + reference_inputs(data, rng, count=probe_count)
    for probe in probes:
        model_says = bool(fn.evaluate(*probe))
        ref_says = reference_result(data, probe)
        report.probes_checked += 1
        if model_says != ref_says:
            report.ok = False
            report.signature = ("ref_divergence", "probe")
            report.detail = (
                f"model={model_says} reference={ref_says} on probe "
                f"{probe!r}"
            )
            report.counterexample = probe
            return
        if model_says and solver_unsat:
            report.ok = False
            report.signature = ("unsat_refuted",)
            report.detail = (
                f"solvers proved unsat but {probe!r} satisfies the "
                f"model concretely (verdicts: {report.verdicts})"
            )
            report.counterexample = probe
            return
