"""Tseitin transformation from AIG literals to CNF.

This is the glue between the AIG built during symbolic evaluation and
the CDCL solver: each AND gate in the cone of the query becomes three
clauses, and the query literal is asserted as a unit clause.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sat import Solver
from .graph import FALSE_LIT, TRUE_LIT, Aig


class CnfMapping:
    """The result of encoding AIG roots into a SAT solver.

    Maps AIG literals to solver (DIMACS) literals so callers can assert
    constraints over, and read model values of, any encoded literal.
    """

    def __init__(self, solver: Solver, node_to_var: Dict[int, int]):
        self._solver = solver
        self._node_to_var = node_to_var

    @property
    def solver(self) -> Solver:
        """The SAT solver that received the clauses."""
        return self._solver

    def solver_literal(self, aig_lit: int) -> Optional[int]:
        """DIMACS literal for an AIG literal, or None if not encoded.

        Constants have no solver literal; use :func:`encode` semantics
        (constants are handled before this lookup is needed).
        """
        var = self._node_to_var.get(aig_lit >> 1)
        if var is None:
            return None
        return -var if aig_lit & 1 else var

    def model_value(self, aig_lit: int) -> bool:
        """Value of an AIG literal in the solver's current model.

        Literals outside the encoded cone are unconstrained and read as
        False, matching the simulator's default.
        """
        if aig_lit == TRUE_LIT:
            return True
        if aig_lit == FALSE_LIT:
            return False
        lit = self.solver_literal(aig_lit)
        if lit is None:
            return False
        value = self._solver.model_value(abs(lit))
        return value if lit > 0 else not value


def encode(
    aig: Aig,
    roots: Sequence[int],
    solver: Optional[Solver] = None,
    assert_roots: bool = True,
) -> Tuple[CnfMapping, List[int]]:
    """Tseitin-encode the cone of `roots` into a SAT solver.

    Returns the mapping plus the DIMACS literals corresponding to each
    root (in order).  When `assert_roots` is true, each root is added
    as a unit clause, so `solver.solve()` checks their conjunction.

    Constant roots are handled specially: TRUE contributes nothing,
    FALSE makes the problem trivially unsatisfiable.
    """
    if solver is None:
        solver = Solver()
    node_to_var: Dict[int, int] = {}

    cone = aig.cone(roots)
    for node in cone:
        node_to_var[node] = solver.new_var()
    mapping = CnfMapping(solver, node_to_var)

    for node in cone:
        if aig.is_input(2 * node):
            continue
        a, b = aig.fanin(2 * node)
        out = node_to_var[node]
        la = _to_solver_lit(node_to_var, a)
        lb = _to_solver_lit(node_to_var, b)
        # out <-> (la AND lb)
        solver.add_clause([-out, la])
        solver.add_clause([-out, lb])
        solver.add_clause([out, -la, -lb])

    root_lits: List[int] = []
    for root in roots:
        if root == TRUE_LIT:
            root_lits.append(0)
            continue
        if root == FALSE_LIT:
            root_lits.append(0)
            if assert_roots:
                # Force unsatisfiability with a fresh contradictory pair.
                v = solver.new_var()
                solver.add_clause([v])
                solver.add_clause([-v])
            continue
        lit = mapping.solver_literal(root)
        assert lit is not None
        root_lits.append(lit)
        if assert_roots:
            solver.add_clause([lit])
    return mapping, root_lits


def _to_solver_lit(node_to_var: Dict[int, int], aig_lit: int) -> int:
    var = node_to_var[aig_lit >> 1]
    return -var if aig_lit & 1 else var


def to_cnf(aig: Aig, root: int) -> Tuple[int, List[List[int]], Dict[int, int]]:
    """Standalone CNF extraction (num_vars, clauses, input literal map).

    Useful for exporting DIMACS files.  The returned map sends AIG
    input literals to DIMACS variables.
    """
    collector = _CollectingSolver()
    mapping, _ = encode(aig, [root], solver=collector)  # type: ignore[arg-type]
    input_map = {
        lit: abs(mapping.solver_literal(lit) or 0)
        for lit in aig.inputs
        if mapping.solver_literal(lit) is not None
    }
    return collector.num_vars, collector.clauses, input_map


class _CollectingSolver:
    """A Solver look-alike that records clauses instead of solving."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        self.clauses.append(list(lits))
        return True
