"""And-inverter graph substrate with Tseitin CNF encoding.

The AIG is the circuit representation produced by the bitblasting
backend; :func:`encode` lowers it into the CDCL solver.
"""

from .graph import FALSE_LIT, TRUE_LIT, Aig
from .tseitin import CnfMapping, encode, to_cnf

__all__ = ["Aig", "TRUE_LIT", "FALSE_LIT", "encode", "to_cnf", "CnfMapping"]
