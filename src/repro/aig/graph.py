"""A structurally-hashed and-inverter graph (AIG).

The SAT ("SMT") backend of the Zen language represents every Boolean
value produced by symbolic evaluation as an AIG literal.  The graph
applies the standard two-level simplification rules on construction
(constant folding, idempotence, contradiction) and shares structurally
identical nodes, so the formula handed to the SAT solver stays compact.

Literals are integers: node ``n`` yields literals ``2*n`` (positive)
and ``2*n + 1`` (negated).  Node 0 is the constant TRUE, so literal 0
is TRUE and literal 1 is FALSE.  Inputs (primary variables) and AND
gates are the only node kinds, as usual for AIGs; every other Boolean
connective is synthesized from them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ZenSolverError

TRUE_LIT = 0
FALSE_LIT = 1


class Aig:
    """An and-inverter graph with structural hashing.

    >>> g = Aig()
    >>> x, y = g.new_input(), g.new_input()
    >>> out = g.or_(x, y)
    >>> g.simulate({x: True, y: False})[out]
    True
    """

    def __init__(self) -> None:
        # Node storage: _fanin[n] is None for inputs / constant, else a
        # pair of fanin literals (a, b) with a <= b.
        self._fanin: List[Optional[Tuple[int, int]]] = [None]  # node 0: TRUE
        self._inputs: List[int] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count including the constant node."""
        return len(self._fanin)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs created so far."""
        return len(self._inputs)

    @property
    def inputs(self) -> Sequence[int]:
        """Positive literals of the primary inputs, in creation order."""
        return tuple(self._inputs)

    def new_input(self) -> int:
        """Create a primary input; returns its positive literal."""
        node = len(self._fanin)
        self._fanin.append(None)
        lit = 2 * node
        self._inputs.append(lit)
        return lit

    @staticmethod
    def negate(lit: int) -> int:
        """Return the negation of a literal."""
        return lit ^ 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with simplification and sharing."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT or b == FALSE_LIT or a == (b ^ 1):
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT or a == b:
            return a if b == TRUE_LIT else a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        node = len(self._fanin)
        self._fanin.append(key)
        lit = 2 * node
        self._strash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def not_(self, a: int) -> int:
        """Negation (an inverter edge, no node is created)."""
        return a ^ 1

    def xor(self, a: int, b: int) -> int:
        """XOR built from two AND gates."""
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def iff(self, a: int, b: int) -> int:
        """Logical equivalence."""
        return self.xor(a, b) ^ 1

    def implies(self, a: int, b: int) -> int:
        """Logical implication a -> b."""
        return self.or_(a ^ 1, b)

    def ite(self, c: int, t: int, e: int) -> int:
        """If-then-else over literals."""
        if c == TRUE_LIT:
            return t
        if c == FALSE_LIT:
            return e
        if t == e:
            return t
        return self.or_(self.and_(c, t), self.and_(c ^ 1, e))

    def and_many(self, lits: Iterable[int]) -> int:
        """AND of arbitrarily many literals (balanced reduction)."""
        items = list(lits)
        if not items:
            return TRUE_LIT
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                nxt.append(self.and_(items[i], items[i + 1]))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def or_many(self, lits: Iterable[int]) -> int:
        """OR of arbitrarily many literals (balanced reduction)."""
        return self.and_many(lit ^ 1 for lit in lits) ^ 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def is_input(self, lit: int) -> bool:
        """True if the literal refers to a primary input node."""
        node = lit >> 1
        return node != 0 and self._fanin[node] is None

    def is_const(self, lit: int) -> bool:
        """True if the literal is constant TRUE or FALSE."""
        return lit >> 1 == 0

    def fanin(self, lit: int) -> Tuple[int, int]:
        """Fanin literals of an AND node."""
        pair = self._fanin[lit >> 1]
        if pair is None:
            raise ZenSolverError(f"literal {lit} is not an AND gate")
        return pair

    def cone(self, roots: Iterable[int]) -> List[int]:
        """Nodes in the transitive fanin of `roots`, topologically sorted.

        The constant node is excluded; inputs and gates are included.
        """
        order: List[int] = []
        visited = {0}
        stack = [lit >> 1 for lit in roots]
        # Iterative DFS with explicit post-order.
        post: List[int] = []
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            post.append(node)
            pair = self._fanin[node]
            if pair is not None:
                stack.extend((pair[0] >> 1, pair[1] >> 1))
        # Sort by node index: fanins always have smaller indices than the
        # gates above them, so index order is a valid topological order.
        order = sorted(post)
        return order

    def support(self, roots: Iterable[int]) -> List[int]:
        """Primary-input literals that `roots` transitively depend on."""
        return [
            2 * node
            for node in self.cone(roots)
            if self._fanin[node] is None
        ]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def simulate(self, input_values: Dict[int, bool]) -> "_SimResult":
        """Concrete simulation; returns a literal-indexable result.

        `input_values` maps input literals (as returned by new_input)
        to Booleans.  Missing inputs default to False.
        """
        values: List[bool] = [True]
        for node in range(1, len(self._fanin)):
            pair = self._fanin[node]
            if pair is None:
                values.append(input_values.get(2 * node, False))
            else:
                a, b = pair
                va = values[a >> 1] ^ bool(a & 1)
                vb = values[b >> 1] ^ bool(b & 1)
                values.append(va and vb)
        return _SimResult(values)

    def eval_literal(self, lit: int, input_values: Dict[int, bool]) -> bool:
        """Evaluate one literal under concrete input values."""
        return self.simulate(input_values)[lit]


class _SimResult:
    """Simulation values indexable by AIG literal."""

    __slots__ = ("_values",)

    def __init__(self, values: List[bool]):
        self._values = values

    def __getitem__(self, lit: int) -> bool:
        return self._values[lit >> 1] ^ bool(lit & 1)
