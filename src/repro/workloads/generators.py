"""Seeded random workload generators for the evaluation (§7).

The paper "generated ACLs and route maps of different sizes randomly";
these generators reproduce that setup deterministically so benchmark
runs are comparable.

Determinism contract
--------------------
No function here ever touches module-level ``random`` state: every
generator either takes an explicit ``random.Random`` (``rng=``) or
derives one from an explicit ``seed``.  Identical (seed, size) inputs
produce identical workloads on every platform and in every process —
the property the differential fuzzing farm (:mod:`repro.fuzz`) relies
on to make its repro artifacts replayable from a seed alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..network.acl import Acl, AclRule
from ..network.fib import FwdRule, FwdTable
from ..network.ip import Prefix
from ..network.nat import NatRule, NatTable
from ..network.packet import Header, make_header
from ..network.routemap import PrefixRange, RouteMap, RouteMapClause

__all__ = [
    "resolve_rng",
    "random_prefix",
    "random_port_range",
    "random_acl_rule",
    "random_acl",
    "random_route_map",
    "random_nat_rule",
    "random_nat_table",
    "random_fwd_table",
    "random_header",
]


def resolve_rng(seed: int = 0, rng: Optional[random.Random] = None) -> random.Random:
    """The stream a generator should draw from.

    An explicit ``rng`` wins (callers composing several generators
    thread one stream through all of them); otherwise a fresh
    ``random.Random(seed)`` keeps the historical seed-based behaviour.
    """
    return rng if rng is not None else random.Random(seed)


def random_prefix(rng: random.Random, min_len: int = 8, max_len: int = 32) -> Prefix:
    """A random IPv4 prefix with length in [min_len, max_len]."""
    length = rng.randint(min_len, max_len)
    address = rng.getrandbits(32)
    return Prefix(address, length)


def random_port_range(rng: random.Random) -> Optional[Tuple[int, int]]:
    """A random port interval, or None (no port match) half the time."""
    if rng.random() < 0.5:
        return None
    low = rng.randint(0, 65535)
    high = rng.randint(low, 65535)
    return (low, high)


def random_acl_rule(rng: random.Random, min_len: int = 8, max_len: int = 32) -> AclRule:
    """One random ACL line (no catch-all logic; see :func:`random_acl`)."""
    return AclRule(
        action=rng.random() < 0.5,
        src=random_prefix(rng, min_len, max_len),
        dst=random_prefix(rng, min_len, max_len),
        src_ports=random_port_range(rng),
        dst_ports=random_port_range(rng),
        protocol=rng.choice([None, 1, 6, 17]),
    )


def random_acl(
    num_rules: int, seed: int = 0, rng: Optional[random.Random] = None
) -> Acl:
    """A random ACL with `num_rules` lines plus a final catch-all.

    The last line is a catch-all permit so the Figure-10 query ("find
    a packet matching the last line") requires reasoning about every
    preceding line.
    """
    rng = resolve_rng(seed, rng)
    rules: List[AclRule] = []
    for _ in range(max(num_rules - 1, 0)):
        rules.append(random_acl_rule(rng))
    rules.append(AclRule(action=True))
    return Acl.of(f"random-{seed}-{num_rules}", rules)


def random_route_map(
    num_clauses: int, seed: int = 0, rng: Optional[random.Random] = None
) -> RouteMap:
    """A random route map with `num_clauses` stanzas plus a catch-all."""
    rng = resolve_rng(seed, rng)
    clauses: List[RouteMapClause] = []
    for _ in range(max(num_clauses - 1, 0)):
        prefix = random_prefix(rng, min_len=8, max_len=24)
        ge = rng.randint(prefix.length, 32)
        le = rng.randint(ge, 32)
        clauses.append(
            RouteMapClause(
                action=rng.random() < 0.5,
                match_prefixes=(PrefixRange(prefix, ge=ge, le=le),),
                match_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
                set_local_pref=(
                    rng.randint(0, 400) if rng.random() < 0.5 else None
                ),
                set_med=rng.randint(0, 100) if rng.random() < 0.3 else None,
                add_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
            )
        )
    clauses.append(RouteMapClause(action=True))
    return RouteMap.of(f"random-{seed}-{num_clauses}", clauses)


def random_nat_rule(rng: random.Random) -> NatRule:
    """One random stateless NAT rule (match prefixes + rewrites)."""
    return NatRule(
        match_src=random_prefix(rng, min_len=0, max_len=24),
        match_dst=random_prefix(rng, min_len=0, max_len=24),
        translate_src=(
            random_prefix(rng, min_len=8, max_len=24)
            if rng.random() < 0.5
            else None
        ),
        translate_dst=(
            random_prefix(rng, min_len=8, max_len=24)
            if rng.random() < 0.5
            else None
        ),
        set_src_port=rng.randint(0, 65535) if rng.random() < 0.25 else None,
        set_dst_port=rng.randint(0, 65535) if rng.random() < 0.25 else None,
    )


def random_nat_table(
    num_rules: int, seed: int = 0, rng: Optional[random.Random] = None
) -> NatTable:
    """A random NAT table with `num_rules` ordered rewrite rules."""
    rng = resolve_rng(seed, rng)
    return NatTable.of(
        f"random-nat-{seed}-{num_rules}",
        [random_nat_rule(rng) for _ in range(num_rules)],
    )


def random_fwd_table(
    num_rules: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    max_port: int = 4,
) -> FwdTable:
    """A random longest-prefix-match forwarding table.

    Ports are drawn from ``1..max_port`` (0 is the null interface).
    """
    rng = resolve_rng(seed, rng)
    return FwdTable.of(
        [
            FwdRule(random_prefix(rng, min_len=0, max_len=32), rng.randint(1, max_port))
            for _ in range(num_rules)
        ]
    )


def random_header(rng: random.Random) -> Header:
    """A uniformly random concrete five-tuple header."""
    return make_header(
        dst_ip=rng.getrandbits(32),
        src_ip=rng.getrandbits(32),
        dst_port=rng.getrandbits(16),
        src_port=rng.getrandbits(16),
        protocol=rng.getrandbits(8),
    )
