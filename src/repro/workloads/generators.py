"""Seeded random workload generators for the evaluation (§7).

The paper "generated ACLs and route maps of different sizes randomly";
these generators reproduce that setup deterministically so benchmark
runs are comparable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..network.acl import Acl, AclRule
from ..network.ip import Prefix
from ..network.routemap import PrefixRange, RouteMap, RouteMapClause


def random_prefix(rng: random.Random, min_len: int = 8, max_len: int = 32) -> Prefix:
    """A random IPv4 prefix with length in [min_len, max_len]."""
    length = rng.randint(min_len, max_len)
    address = rng.getrandbits(32)
    return Prefix(address, length)


def random_port_range(rng: random.Random) -> Optional[Tuple[int, int]]:
    """A random port interval, or None (no port match) half the time."""
    if rng.random() < 0.5:
        return None
    low = rng.randint(0, 65535)
    high = rng.randint(low, 65535)
    return (low, high)


def random_acl(num_rules: int, seed: int = 0) -> Acl:
    """A random ACL with `num_rules` lines plus a final catch-all.

    The last line is a catch-all permit so the Figure-10 query ("find
    a packet matching the last line") requires reasoning about every
    preceding line.
    """
    rng = random.Random(seed)
    rules: List[AclRule] = []
    for _ in range(max(num_rules - 1, 0)):
        rules.append(
            AclRule(
                action=rng.random() < 0.5,
                src=random_prefix(rng),
                dst=random_prefix(rng),
                src_ports=random_port_range(rng),
                dst_ports=random_port_range(rng),
                protocol=rng.choice([None, 1, 6, 17]),
            )
        )
    rules.append(AclRule(action=True))
    return Acl.of(f"random-{seed}-{num_rules}", rules)


def random_route_map(num_clauses: int, seed: int = 0) -> RouteMap:
    """A random route map with `num_clauses` stanzas plus a catch-all."""
    rng = random.Random(seed)
    clauses: List[RouteMapClause] = []
    for _ in range(max(num_clauses - 1, 0)):
        prefix = random_prefix(rng, min_len=8, max_len=24)
        ge = rng.randint(prefix.length, 32)
        le = rng.randint(ge, 32)
        clauses.append(
            RouteMapClause(
                action=rng.random() < 0.5,
                match_prefixes=(PrefixRange(prefix, ge=ge, le=le),),
                match_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
                set_local_pref=(
                    rng.randint(0, 400) if rng.random() < 0.5 else None
                ),
                set_med=rng.randint(0, 100) if rng.random() < 0.3 else None,
                add_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
            )
        )
    clauses.append(RouteMapClause(action=True))
    return RouteMap.of(f"random-{seed}-{num_clauses}", clauses)
