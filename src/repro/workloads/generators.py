"""Seeded random workload generators for the evaluation (§7).

The paper "generated ACLs and route maps of different sizes randomly";
these generators reproduce that setup deterministically so benchmark
runs are comparable.

Determinism contract
--------------------
No function here ever touches module-level ``random`` state: every
generator either takes an explicit ``random.Random`` (``rng=``) or
derives one from an explicit ``seed``.  Identical (seed, size) inputs
produce identical workloads on every platform and in every process —
the property the differential fuzzing farm (:mod:`repro.fuzz`) relies
on to make its repro artifacts replayable from a seed alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..network.acl import Acl, AclRule
from ..network.fib import FwdRule, FwdTable
from ..network.ip import Prefix
from ..network.nat import NatRule, NatTable
from ..network.packet import Header, make_header
from ..network.routemap import PrefixRange, RouteMap, RouteMapClause

__all__ = [
    "resolve_rng",
    "random_prefix",
    "random_port_range",
    "random_acl_rule",
    "random_acl",
    "random_route_map",
    "random_nat_rule",
    "random_nat_table",
    "random_fwd_table",
    "random_header",
    "chain_topology",
    "chain_query",
    "fat_tree",
    "fat_tree_pod",
    "fat_tree_device",
    "fat_tree_device_names",
    "fat_tree_hosts",
    "fat_tree_host_address",
    "fat_tree_reach_query",
]


def resolve_rng(seed: int = 0, rng: Optional[random.Random] = None) -> random.Random:
    """The stream a generator should draw from.

    An explicit ``rng`` wins (callers composing several generators
    thread one stream through all of them); otherwise a fresh
    ``random.Random(seed)`` keeps the historical seed-based behaviour.
    """
    return rng if rng is not None else random.Random(seed)


def random_prefix(rng: random.Random, min_len: int = 8, max_len: int = 32) -> Prefix:
    """A random IPv4 prefix with length in [min_len, max_len]."""
    length = rng.randint(min_len, max_len)
    address = rng.getrandbits(32)
    return Prefix(address, length)


def random_port_range(rng: random.Random) -> Optional[Tuple[int, int]]:
    """A random port interval, or None (no port match) half the time."""
    if rng.random() < 0.5:
        return None
    low = rng.randint(0, 65535)
    high = rng.randint(low, 65535)
    return (low, high)


def random_acl_rule(rng: random.Random, min_len: int = 8, max_len: int = 32) -> AclRule:
    """One random ACL line (no catch-all logic; see :func:`random_acl`)."""
    return AclRule(
        action=rng.random() < 0.5,
        src=random_prefix(rng, min_len, max_len),
        dst=random_prefix(rng, min_len, max_len),
        src_ports=random_port_range(rng),
        dst_ports=random_port_range(rng),
        protocol=rng.choice([None, 1, 6, 17]),
    )


def random_acl(
    num_rules: int, seed: int = 0, rng: Optional[random.Random] = None
) -> Acl:
    """A random ACL with `num_rules` lines plus a final catch-all.

    The last line is a catch-all permit so the Figure-10 query ("find
    a packet matching the last line") requires reasoning about every
    preceding line.
    """
    rng = resolve_rng(seed, rng)
    rules: List[AclRule] = []
    for _ in range(max(num_rules - 1, 0)):
        rules.append(random_acl_rule(rng))
    rules.append(AclRule(action=True))
    return Acl.of(f"random-{seed}-{num_rules}", rules)


def random_route_map(
    num_clauses: int, seed: int = 0, rng: Optional[random.Random] = None
) -> RouteMap:
    """A random route map with `num_clauses` stanzas plus a catch-all."""
    rng = resolve_rng(seed, rng)
    clauses: List[RouteMapClause] = []
    for _ in range(max(num_clauses - 1, 0)):
        prefix = random_prefix(rng, min_len=8, max_len=24)
        ge = rng.randint(prefix.length, 32)
        le = rng.randint(ge, 32)
        clauses.append(
            RouteMapClause(
                action=rng.random() < 0.5,
                match_prefixes=(PrefixRange(prefix, ge=ge, le=le),),
                match_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
                set_local_pref=(
                    rng.randint(0, 400) if rng.random() < 0.5 else None
                ),
                set_med=rng.randint(0, 100) if rng.random() < 0.3 else None,
                add_community=(
                    rng.randint(1, 1 << 16) if rng.random() < 0.3 else None
                ),
            )
        )
    clauses.append(RouteMapClause(action=True))
    return RouteMap.of(f"random-{seed}-{num_clauses}", clauses)


def random_nat_rule(rng: random.Random) -> NatRule:
    """One random stateless NAT rule (match prefixes + rewrites)."""
    return NatRule(
        match_src=random_prefix(rng, min_len=0, max_len=24),
        match_dst=random_prefix(rng, min_len=0, max_len=24),
        translate_src=(
            random_prefix(rng, min_len=8, max_len=24)
            if rng.random() < 0.5
            else None
        ),
        translate_dst=(
            random_prefix(rng, min_len=8, max_len=24)
            if rng.random() < 0.5
            else None
        ),
        set_src_port=rng.randint(0, 65535) if rng.random() < 0.25 else None,
        set_dst_port=rng.randint(0, 65535) if rng.random() < 0.25 else None,
    )


def random_nat_table(
    num_rules: int, seed: int = 0, rng: Optional[random.Random] = None
) -> NatTable:
    """A random NAT table with `num_rules` ordered rewrite rules."""
    rng = resolve_rng(seed, rng)
    return NatTable.of(
        f"random-nat-{seed}-{num_rules}",
        [random_nat_rule(rng) for _ in range(num_rules)],
    )


def random_fwd_table(
    num_rules: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    max_port: int = 4,
) -> FwdTable:
    """A random longest-prefix-match forwarding table.

    Ports are drawn from ``1..max_port`` (0 is the null interface).
    """
    rng = resolve_rng(seed, rng)
    return FwdTable.of(
        [
            FwdRule(random_prefix(rng, min_len=0, max_len=32), rng.randint(1, max_port))
            for _ in range(num_rules)
        ]
    )


def random_header(rng: random.Random) -> Header:
    """A uniformly random concrete five-tuple header."""
    return make_header(
        dst_ip=rng.getrandbits(32),
        src_ip=rng.getrandbits(32),
        dst_port=rng.getrandbits(16),
        src_port=rng.getrandbits(16),
        protocol=rng.getrandbits(8),
    )


# ----------------------------------------------------------------------
# Shardable topologies (compositional verification workloads)
# ----------------------------------------------------------------------
#
# These builders emit the plain-JSON topology payload consumed by
# :mod:`repro.compose`: picklable dicts of devices, links, and planner
# group hints.  Every builder is addressable as a stable ``module:attr``
# reference with plain arguments, so a compose shard can name exactly
# the sub-topology it needs inside a ``QuerySpec`` and any worker
# process rebuilds it bit-for-bit.  Per-device randomness (uplink
# choice, ACL sprinkling) is derived from ``(seed, device-name)`` — the
# same trick as the fuzz farm's ``scenario_rng`` — so the full-fabric,
# per-pod, and per-device builders agree by construction.


def _device_rng(seed: int, name: str) -> random.Random:
    """Deterministic per-device stream, platform-independent."""
    return random.Random(f"repro-topo:{seed}:{name}")


def _prefix_json(address: int, length: int) -> List[int]:
    return [address, length]


def _sprinkle_acl(rng: random.Random, probability: float) -> Optional[list]:
    """An ACL that denies traffic outside 10/8 but never 10/8 itself.

    Keeps sprinkled topologies' 10.x reachability verdicts identical to
    the plain fabric while still exercising ACL model paths.
    """
    if probability <= 0.0 or rng.random() >= probability:
        return None
    denied = rng.randint(20, 200) << 24
    return [
        {"action": False, "src": [0, 0], "dst": _prefix_json(denied, 8)},
        {"action": True, "src": [0, 0], "dst": [0, 0]},
    ]


def chain_topology(
    num_devices: int,
    seed: int = 0,
    *,
    fib_rules: int = 3,
    nat_probability: float = 0.0,
    acl_probability: float = 0.0,
) -> dict:
    """A linear chain of `num_devices` forwarding devices.

    Device ``d<i>`` receives on port 1 and forwards on port 2 into
    ``d<i+1>``; ``d0:1`` is the external entry and ``d<N-1>:2`` the
    external exit.  Each device keeps a random FIB biased toward the
    forwarding port plus a default-forward rule, optionally an ingress
    NAT and ACLs — the hand-rolled analogue of the fuzz farm's path
    scenarios, here in the compose payload format.
    """
    if num_devices < 1:
        raise ValueError("chain_topology needs at least one device")
    devices = {}
    links = []
    for i in range(num_devices):
        name = f"d{i}"
        rng = _device_rng(seed, name)
        fib = [
            [
                _prefix_json(rng.getrandbits(32), rng.randint(8, 24)),
                rng.choice((2, 2, 2, 3)),
            ]
            for _ in range(max(fib_rules - 1, 0))
        ]
        fib.append([_prefix_json(0, 0), 2])
        desc: dict = {"fib": fib}
        if nat_probability > 0.0 and rng.random() < nat_probability:
            desc["nat"] = [
                {
                    "match_src": _prefix_json(0, 0),
                    "match_dst": _prefix_json(
                        rng.getrandbits(32), rng.randint(0, 16)
                    ),
                    "translate_dst": _prefix_json(
                        rng.getrandbits(32), rng.randint(8, 24)
                    ),
                }
            ]
        acl = _sprinkle_acl(rng, acl_probability)
        if acl is not None:
            desc["acl_in"] = {"1": acl}
        devices[name] = desc
        if i + 1 < num_devices:
            links.append([name, 2, f"d{i + 1}", 1])
    return {"devices": devices, "links": links, "groups": {}}


def chain_query(
    num_devices: int,
    headers: Optional[list] = None,
    target: Optional[list] = None,
    mode: str = "reach",
) -> dict:
    """The end-to-end query matching :func:`chain_topology`'s boundary."""
    return {
        "mode": mode,
        "source": ["d0", 1],
        "sink": [f"d{num_devices - 1}", 2],
        "headers": headers,
        "target": target,
    }


def fat_tree_host_address(pod: int, edge: int, host: int) -> int:
    """The deterministic 10.pod.edge.host+2 address of a fat-tree host."""
    return (10 << 24) | (pod << 16) | (edge << 8) | (host + 2)


def _check_fat_tree_args(k: int, hosts_per_edge: int) -> None:
    if k < 2 or k % 2:
        raise ValueError("fat_tree needs an even k >= 2")
    if not 1 <= hosts_per_edge <= k // 2:
        raise ValueError("hosts_per_edge must be in [1, k/2]")


def fat_tree_device_names(k: int, hosts_per_edge: int = 1) -> List[str]:
    """Every device name of the (k, hosts_per_edge) fat-tree, in order."""
    _check_fat_tree_args(k, hosts_per_edge)
    half = k // 2
    names = [f"core{c}" for c in range(half * half)]
    for p in range(k):
        names.extend(f"agg_{p}_{a}" for a in range(half))
        names.extend(f"edge_{p}_{e}" for e in range(half))
        for e in range(half):
            names.extend(f"host_{p}_{e}_{h}" for h in range(hosts_per_edge))
    return names


def fat_tree_hosts(k: int, hosts_per_edge: int = 1) -> List[str]:
    """Just the host device names of the fat-tree."""
    return [
        name
        for name in fat_tree_device_names(k, hosts_per_edge)
        if name.startswith("host_")
    ]


def fat_tree_device(
    k: int,
    name: str,
    seed: int = 0,
    hosts_per_edge: int = 1,
    acl_probability: float = 0.0,
) -> dict:
    """One fat-tree device description (a per-device shard builder ref).

    Identical to the entry ``fat_tree(...)["devices"][name]`` would
    hold — per-device randomness is keyed on ``(seed, name)``, never on
    construction order.
    """
    _check_fat_tree_args(k, hosts_per_edge)
    half = k // 2
    rng = _device_rng(seed, name)
    parts = name.split("_")
    if name.startswith("core"):
        c = int(name[4:])
        if not 0 <= c < half * half:
            raise ValueError(f"no such core switch: {name}")
        fib = [
            [_prefix_json((10 << 24) | (p << 16), 16), p + 1] for p in range(k)
        ]
    elif name.startswith("agg_"):
        p, a = int(parts[1]), int(parts[2])
        if not (0 <= p < k and 0 <= a < half):
            raise ValueError(f"no such aggregation switch: {name}")
        fib = [
            [_prefix_json((10 << 24) | (p << 16) | (e << 8), 24), e + 1]
            for e in range(half)
        ]
        fib.append([_prefix_json(0, 0), half + 1 + rng.randrange(half)])
    elif name.startswith("edge_"):
        p, e = int(parts[1]), int(parts[2])
        if not (0 <= p < k and 0 <= e < half):
            raise ValueError(f"no such edge switch: {name}")
        fib = [
            [_prefix_json(fat_tree_host_address(p, e, h), 32), h + 1]
            for h in range(hosts_per_edge)
        ]
        fib.append([_prefix_json(0, 0), half + 1 + rng.randrange(half)])
    elif name.startswith("host_"):
        p, e, h = int(parts[1]), int(parts[2]), int(parts[3])
        if not (0 <= p < k and 0 <= e < half and 0 <= h < hosts_per_edge):
            raise ValueError(f"no such host: {name}")
        # Port 1 is the uplink; port 2 is unlinked local delivery (the
        # sink boundary reachability queries point at).
        fib = [
            [_prefix_json(fat_tree_host_address(p, e, h), 32), 2],
            [_prefix_json(0, 0), 1],
        ]
    else:
        raise ValueError(f"unknown fat-tree device name: {name}")
    desc: dict = {"fib": fib}
    acl = _sprinkle_acl(rng, acl_probability)
    if acl is not None:
        desc["acl_in"] = {"1": acl}
    return desc


def _fat_tree_links(k: int, hosts_per_edge: int) -> List[list]:
    half = k // 2
    links: List[list] = []
    for p in range(k):
        for e in range(half):
            for h in range(hosts_per_edge):
                links.append([f"host_{p}_{e}_{h}", 1, f"edge_{p}_{e}", h + 1])
            for a in range(half):
                links.append(
                    [f"edge_{p}_{e}", half + a + 1, f"agg_{p}_{a}", e + 1]
                )
        for a in range(half):
            for j in range(half):
                links.append(
                    [f"agg_{p}_{a}", half + j + 1, f"core{a * half + j}", p + 1]
                )
    return links


def fat_tree(
    k: int,
    seed: int = 0,
    hosts_per_edge: int = 1,
    acl_probability: float = 0.0,
) -> dict:
    """A full k-ary fat-tree fabric with attached hosts.

    ``(k/2)^2`` core switches, ``k`` pods of ``k/2`` aggregation and
    ``k/2`` edge switches, and ``hosts_per_edge`` hosts per edge switch
    (hosts are trivial single-route devices, so they scale the device
    count without dominating model size).  Forwarding is deterministic
    single-path: downward routes are exact, upward routes pick one
    uplink per device from the ``(seed, name)`` stream.
    """
    _check_fat_tree_args(k, hosts_per_edge)
    half = k // 2
    devices = {
        name: fat_tree_device(k, name, seed, hosts_per_edge, acl_probability)
        for name in fat_tree_device_names(k, hosts_per_edge)
    }
    groups = {"core": [f"core{c}" for c in range(half * half)]}
    for p in range(k):
        groups[f"pod{p}"] = [
            name
            for name in devices
            if name.startswith((f"agg_{p}_", f"edge_{p}_", f"host_{p}_"))
        ]
    return {
        "devices": devices,
        "links": _fat_tree_links(k, hosts_per_edge),
        "groups": groups,
    }


def fat_tree_pod(
    k: int,
    pod: int,
    seed: int = 0,
    hosts_per_edge: int = 1,
    acl_probability: float = 0.0,
) -> dict:
    """One pod's sub-topology (a per-pod shard builder ref)."""
    _check_fat_tree_args(k, hosts_per_edge)
    if not 0 <= pod < k:
        raise ValueError(f"pod {pod} out of range for k={k}")
    prefix = (f"agg_{pod}_", f"edge_{pod}_", f"host_{pod}_")
    devices = {
        name: fat_tree_device(k, name, seed, hosts_per_edge, acl_probability)
        for name in fat_tree_device_names(k, hosts_per_edge)
        if name.startswith(prefix)
    }
    links = [
        link
        for link in _fat_tree_links(k, hosts_per_edge)
        if link[0] in devices and link[2] in devices
    ]
    return {"devices": devices, "links": links, "groups": {f"pod{pod}": sorted(devices)}}


def fat_tree_reach_query(
    src_host: str, dst_host: str, mode: str = "reach"
) -> dict:
    """End-to-end delivery query between two fat-tree hosts.

    Packets are injected at the source host's local port and must be
    delivered out the destination host's local port (port 2) carrying
    the destination's address.
    """
    _, dp, de, dh = dst_host.split("_")
    address = fat_tree_host_address(int(dp), int(de), int(dh))
    return {
        "mode": mode,
        "source": [src_host, 2],
        "sink": [dst_host, 2],
        "headers": [{"dst_ip": [address, 0xFFFFFFFF]}],
        "target": None,
    }
