"""Random workload generation for benchmarks (seeded, reproducible)."""

from .generators import (
    random_acl,
    random_port_range,
    random_prefix,
    random_route_map,
)

__all__ = [
    "random_acl",
    "random_route_map",
    "random_prefix",
    "random_port_range",
]
