"""Random workload generation for benchmarks (seeded, reproducible)."""

from .generators import (
    random_acl,
    random_acl_rule,
    random_fwd_table,
    random_header,
    random_nat_rule,
    random_nat_table,
    random_port_range,
    random_prefix,
    random_route_map,
    resolve_rng,
)

__all__ = [
    "random_acl",
    "random_acl_rule",
    "random_fwd_table",
    "random_header",
    "random_nat_rule",
    "random_nat_table",
    "random_port_range",
    "random_prefix",
    "random_route_map",
    "resolve_rng",
]
