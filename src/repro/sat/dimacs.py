"""DIMACS CNF reading and writing.

The SAT substrate is usable standalone; these helpers let users feed
standard benchmark files to :class:`repro.sat.Solver` and dump the CNF
produced by the bitblaster for inspection with external tools.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TextIO, Tuple

from ..errors import ZenSolverError


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses).

    Accepts comment lines (``c ...``), a problem line (``p cnf V C``),
    and clauses terminated by ``0``.  Clauses may span multiple lines.
    """
    num_vars = 0
    declared_clauses = -1
    clauses: List[List[int]] = []
    current: List[int] = []
    saw_problem = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ZenSolverError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            saw_problem = True
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                if abs(lit) > num_vars:
                    num_vars = abs(lit)
                current.append(lit)
    if current:
        clauses.append(current)
    if not saw_problem and not clauses:
        raise ZenSolverError("empty DIMACS input")
    if declared_clauses >= 0 and declared_clauses != len(clauses):
        # Tolerated (many generators emit wrong counts) but normalized.
        pass
    return num_vars, clauses


def write_dimacs(
    num_vars: int, clauses: Sequence[Iterable[int]], out: TextIO
) -> None:
    """Write clauses as DIMACS CNF to a text stream."""
    clause_list = [list(c) for c in clauses]
    out.write(f"p cnf {num_vars} {len(clause_list)}\n")
    for clause in clause_list:
        out.write(" ".join(str(lit) for lit in clause))
        out.write(" 0\n")


def dimacs_string(num_vars: int, clauses: Sequence[Iterable[int]]) -> str:
    """Return the DIMACS CNF text for the given clauses."""
    import io

    buf = io.StringIO()
    write_dimacs(num_vars, clauses, buf)
    return buf.getvalue()


def load_into_solver(text: str, solver) -> bool:
    """Parse DIMACS text and add it to a solver.

    Returns False if the formula is trivially unsatisfiable during
    loading.  Variables are allocated to cover the declared count.
    """
    num_vars, clauses = parse_dimacs(text)
    while solver.num_vars < num_vars:
        solver.new_var()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    return ok
