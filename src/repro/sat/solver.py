"""A CDCL (conflict-driven clause learning) SAT solver.

This is the bottom-most substrate of the library: the paper's "SMT"
backend bitblasts bitvector formulas to SAT, and this module provides
the SAT engine.  The design follows MiniSat:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with learned-clause minimization,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* activity-driven learned-clause database reduction, and
* incremental solving under assumptions.

Literals use the DIMACS convention externally (positive/negative
integers, variables numbered from 1).  Internally a literal ``l`` for
variable ``v`` is encoded as ``2*v`` (positive) or ``2*v + 1``
(negative) so watch lists can be indexed by literal.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import ZenSolverError
from ..telemetry.metrics import delta as _stats_delta
from ..telemetry.spans import TRACER

_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1


def luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...:
    if i == 2^k - 1 the value is 2^(k-1), otherwise recurse on the
    position within the trailing copy of a smaller prefix.
    """
    if i <= 0:
        raise ZenSolverError(f"luby index must be positive: {i}")
    while True:
        k = i.bit_length()
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class _Clause:
    """A clause: internal literals plus learning metadata."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __len__(self) -> int:
        return len(self.lits)


class Solver:
    """An incremental CDCL SAT solver over DIMACS-style literals.

    Typical usage::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve()
        assert s.model_value(b)
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        # Indexed by internal literal (two slots per variable).
        self._watches: List[List[_Clause]] = []
        # Per-variable state; index 0 is unused padding.
        self._value: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen: List[bool] = [False]
        # Trail of assigned internal literals and decision boundaries.
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        # VSIDS bookkeeping.  The decision order is a lazy max-heap of
        # (-activity, var) entries; stale entries are skipped on pop.
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order: List[tuple[float, int]] = []
        self._ok = True
        self._model: List[int] = []
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._max_learned = 5000
        # Per-solve assumption state.
        self._num_assumed_levels = 0
        self._next_assumption = 0
        self._failed_assumptions: List[int] = []
        # Cooperative resource governance (duck-typed BudgetMeter; the
        # solver never imports repro.core.budget).
        self._meter = None
        # Per-phase wall accounting (propagate/analyze/decide), active
        # only while a traced solve is running; None keeps the search
        # loop's cost at one identity check per phase call.
        self._phase_time = None
        # Set by iter_models: True when the limit cut enumeration off
        # while more models existed, False when enumeration was
        # exhaustive, None before any enumeration finished.
        self.last_enumeration_truncated: Optional[bool] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return len(self._clauses)

    @property
    def statistics(self) -> dict:
        """Counters for conflicts, decisions and propagations."""
        return {
            "conflicts": self._conflicts,
            "decisions": self._decisions,
            "propagations": self._propagations,
            "learned": len(self._learned),
        }

    def reset_statistics(self) -> None:
        """Zero the search counters (learned clauses are kept)."""
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0

    def snapshot(self) -> dict:
        """Flat numeric counter snapshot (shared counter protocol)."""
        return dict(self.statistics)

    def reset_counters(self) -> None:
        """Canonical reset spelling (alias of :meth:`reset_statistics`)."""
        self.reset_statistics()

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._value.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order, (0.0, self._num_vars))
        return self._num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns False if the solver is already known to be unsatisfiable
        (either before the call or as a result of this clause).
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise ZenSolverError("add_clause called during solving")
        seen: set[int] = set()
        simplified: List[int] = []
        for lit in lits:
            v = abs(lit)
            if v == 0 or v > self._num_vars:
                raise ZenSolverError(f"unknown variable in literal {lit}")
            ilit = self._internal(lit)
            val = self._lit_value(ilit)
            if val == _TRUE:
                return True  # satisfied at level 0
            if val == _FALSE:
                continue  # falsified at level 0; drop the literal
            if ilit in seen:
                continue
            if ilit ^ 1 in seen:
                return True  # tautology
            seen.add(ilit)
            simplified.append(ilit)
        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(simplified, learned=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def solve(self, assumptions: Sequence[int] = (), budget=None) -> bool:
        """Search for a model, optionally under assumption literals.

        On success the model is queryable via :meth:`model_value`.  On
        failure under assumptions, :meth:`failed_assumptions` returns
        the subset of assumptions assigned when the conflict arose.

        `budget` is an optional :class:`repro.core.budget.Budget` (or
        a running meter): the search checkpoints on every conflict,
        every 256 decisions, and at each restart, and raises
        :class:`~repro.errors.ZenBudgetExceeded` on exhaustion.  The
        abort unwinds through the trail-restoring ``finally``, so the
        solver remains usable afterwards.
        """
        self._failed_assumptions = []
        self._model = []
        if not self._ok:
            # Unsat discovered at level 0 (during clause loading); no
            # search runs, but the instant answer still belongs on the
            # timeline.
            if TRACER.enabled:
                TRACER.record(
                    "sat.solve",
                    TRACER.now_wall(),
                    0.0,
                    {"result": "unsat", "level0": True},
                )
            return False
        meter = budget
        if meter is not None and not hasattr(meter, "on_conflict"):
            meter = meter.start()
        assume = [self._internal(lit) for lit in assumptions]
        restarts = 0
        self._meter = meter
        solve_span = None
        before = None
        if TRACER.enabled:
            solve_span = TRACER.begin("sat.solve")
            before = self.snapshot()
            self._phase_time = {"propagate": 0.0, "analyze": 0.0, "decide": 0.0}
        try:
            while True:
                if meter is not None:
                    meter.check_deadline()
                self._num_assumed_levels = 0
                self._next_assumption = 0
                status = self._search(100 * luby(restarts + 1), assume)
                if status is not None:
                    if solve_span is not None:
                        solve_span.attrs["result"] = (
                            "sat" if status else "unsat"
                        )
                    return status
                restarts += 1
                self._cancel_until(0)
        finally:
            self._meter = None
            self._cancel_until(0)
            if solve_span is not None:
                solve_span.attrs["restarts"] = restarts
                solve_span.attrs.update(_stats_delta(before, self.snapshot()))
                for phase, secs in self._phase_time.items():
                    solve_span.attrs[f"{phase}_s"] = round(secs, 6)
                self._phase_time = None
                TRACER.finish(solve_span)

    def model_value(self, var: int) -> bool:
        """Return the value of a variable in the most recent model."""
        if not self._model:
            raise ZenSolverError("no model available (last solve failed?)")
        if var <= 0 or var > self._num_vars:
            raise ZenSolverError(f"unknown variable {var}")
        return self._model[var] == _TRUE

    def model(self) -> List[int]:
        """Return the most recent model as a list of DIMACS literals."""
        if not self._model:
            raise ZenSolverError("no model available (last solve failed?)")
        return [
            v if self._model[v] == _TRUE else -v
            for v in range(1, self._num_vars + 1)
        ]

    def failed_assumptions(self) -> List[int]:
        """Assumptions (DIMACS) involved in the last failed solve."""
        return list(self._failed_assumptions)

    def iter_models(
        self,
        variables: Optional[Sequence[int]] = None,
        limit: int = 1 << 20,
        budget=None,
    ) -> Iterator[List[int]]:
        """Enumerate models by adding blocking clauses over `variables`.

        The solver is consumed by this process (blocking clauses are
        permanent).  `variables` defaults to all variables.

        Hitting `limit` must not look identical to exhaustive
        enumeration: when the limit cuts enumeration off, one extra
        (blocked) solve determines whether further models exist and
        :attr:`last_enumeration_truncated` is set to the exact answer
        (False = the enumeration was complete).  `budget` bounds the
        whole enumeration, including that final probe.
        """
        if variables is None:
            variables = list(range(1, self._num_vars + 1))
        meter = budget
        if meter is not None and not hasattr(meter, "on_conflict"):
            meter = meter.start()
        self.last_enumeration_truncated = None
        count = 0
        while count < limit:
            if not self.solve(budget=meter):
                self.last_enumeration_truncated = False
                return
            if meter is not None:
                meter.on_model()
            model = [v if self.model_value(v) else -v for v in variables]
            yield model
            count += 1
            if not self.add_clause([-lit for lit in model]):
                self.last_enumeration_truncated = False
                return
        # The limit stopped us with the last model already blocked; one
        # more solve tells exactly whether anything was left behind.
        self.last_enumeration_truncated = self.solve(budget=meter)

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _internal(lit: int) -> int:
        v = abs(lit)
        return 2 * v + (1 if lit < 0 else 0)

    @staticmethod
    def _external(ilit: int) -> int:
        v = ilit >> 1
        return -v if ilit & 1 else v

    def _lit_value(self, ilit: int) -> int:
        val = self._value[ilit >> 1]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (ilit & 1)

    # ------------------------------------------------------------------
    # Watched literals and propagation
    # ------------------------------------------------------------------

    def _watch_list(self, ilit: int) -> List[_Clause]:
        v = ilit >> 1
        return self._watches[2 * (v - 1) + (ilit & 1)]

    def _attach(self, clause: _Clause) -> None:
        self._watch_list(clause.lits[0]).append(clause)
        self._watch_list(clause.lits[1]).append(clause)

    def _detach(self, clause: _Clause) -> None:
        for ilit in clause.lits[:2]:
            watchers = self._watch_list(ilit)
            try:
                watchers.remove(clause)
            except ValueError:
                pass

    def _enqueue(self, ilit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(ilit)
        if val != _UNASSIGNED:
            return val == _TRUE
        v = ilit >> 1
        self._value[v] = _TRUE if (ilit & 1) == 0 else _FALSE
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            ilit = self._trail[self._qhead]
            self._qhead += 1
            self._propagations += 1
            false_lit = ilit ^ 1
            watchers = self._watch_list(false_lit)
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == _TRUE:
                    watchers[j] = clause
                    j += 1
                    continue
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watch_list(lits[1]).append(clause)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = clause
                j += 1
                if self._lit_value(first) == _FALSE:
                    # Conflict: keep the remaining watchers and report.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[j:]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause, backtrack level).

        The asserting literal is placed at index 0 of the result and a
        literal from the backtrack level (if any) at index 1, so the
        clause can be attached with correct watches immediately.
        """
        learned: List[int] = []
        seen = self._seen
        counter = 0
        asserting = -1
        reason: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        while True:
            assert reason is not None
            self._bump_clause(reason)
            for q in reason.lits:
                if q == asserting:
                    continue
                v = q >> 1
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self._level[v] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            asserting = self._trail[index]
            index -= 1
            seen[asserting >> 1] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[asserting >> 1]
        # Learned-clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learned:
            abstract_levels |= 1 << (self._level[q >> 1] & 31)
        kept = [
            q
            for q in learned
            if self._reason[q >> 1] is None
            or not self._redundant(q, abstract_levels)
        ]
        for q in learned:
            seen[q >> 1] = False
        result = [asserting ^ 1] + kept
        if len(result) == 1:
            return result, 0
        max_i = 1
        for i in range(2, len(result)):
            if self._level[result[i] >> 1] > self._level[result[max_i] >> 1]:
                max_i = i
        result[1], result[max_i] = result[max_i], result[1]
        return result, self._level[result[1] >> 1]

    def _redundant(self, ilit: int, abstract_levels: int) -> bool:
        """Check whether a learned literal is implied by the others.

        Literals already marked in ``self._seen`` are the other learned
        literals; a literal is redundant if its reason-graph ancestry
        bottoms out in such literals.
        """
        stack = [ilit]
        marked: List[int] = []
        seen = self._seen
        while stack:
            p = stack.pop()
            reason = self._reason[p >> 1]
            assert reason is not None
            for q in reason.lits:
                v = q >> 1
                if q == p or seen[v] or self._level[v] == 0:
                    continue
                if (
                    self._reason[v] is None
                    or not (1 << (self._level[v] & 31)) & abstract_levels
                ):
                    for w in marked:
                        seen[w] = False
                    return False
                seen[v] = True
                marked.append(v)
                stack.append(q)
        for w in marked:
            seen[w] = False
        return True

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        heapq.heappush(self._order, (-self._activity[v], v))
        if self._activity[v] > 1e100:
            for i in range(1, self._num_vars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
            self._order = [
                (-self._activity[v2], v2)
                for v2 in range(1, self._num_vars + 1)
            ]
            heapq.heapify(self._order)

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay(self) -> None:
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay

    def _decide(self) -> int:
        """Pop the unassigned variable with the highest activity."""
        while self._order:
            neg_act, v = heapq.heappop(self._order)
            if self._value[v] == _UNASSIGNED and -neg_act == self._activity[v]:
                # Push back so the variable re-enters the queue after
                # backtracking (stale entries are filtered above).
                heapq.heappush(self._order, (neg_act, v))
                return v
            if self._value[v] == _UNASSIGNED:
                heapq.heappush(self._order, (-self._activity[v], v))
        # Heap exhausted or only stale entries: linear fallback.
        for v in range(1, self._num_vars + 1):
            if self._value[v] == _UNASSIGNED:
                return v
        return 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for ilit in reversed(self._trail[bound:]):
            v = ilit >> 1
            self._phase[v] = (ilit & 1) == 0
            self._value[v] = _UNASSIGNED
            self._reason[v] = None
            heapq.heappush(self._order, (-self._activity[v], v))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        self._num_assumed_levels = min(self._num_assumed_levels, level)

    def _reduce_db(self) -> None:
        self._learned.sort(key=lambda c: c.activity)
        keep: List[_Clause] = []
        drop = len(self._learned) // 2
        for i, clause in enumerate(self._learned):
            if i < drop and len(clause.lits) > 2 and not self._locked(clause):
                self._detach(clause)
            else:
                keep.append(clause)
        self._learned = keep

    def _locked(self, clause: _Clause) -> bool:
        v = clause.lits[0] >> 1
        return self._reason[v] is clause

    def _search(self, budget: int, assumptions: List[int]) -> Optional[bool]:
        """Run CDCL for up to `budget` conflicts.

        Returns True (sat), False (unsat / assumption conflict), or None
        when the conflict budget is exhausted (caller restarts).
        """
        conflicts_here = 0
        meter = self._meter
        phase_time = self._phase_time
        while True:
            if phase_time is None:
                conflict = self._propagate()
            else:
                t0 = perf_counter()
                conflict = self._propagate()
                phase_time["propagate"] += perf_counter() - t0
            if conflict is not None:
                self._conflicts += 1
                conflicts_here += 1
                if meter is not None:
                    meter.on_conflict()
                if not self._trail_lim:
                    # Conflict with no decisions and no assumptions.
                    self._ok = False
                    return False
                if len(self._trail_lim) <= self._num_assumed_levels:
                    # The conflict only depends on assumptions.
                    self._extract_failed(assumptions)
                    return False
                if phase_time is None:
                    learned, bt_level = self._analyze(conflict)
                else:
                    t0 = perf_counter()
                    learned, bt_level = self._analyze(conflict)
                    phase_time["analyze"] += perf_counter() - t0
                bt_level = max(bt_level, self._num_assumed_levels)
                if len(learned) == 1:
                    self._cancel_until(0)
                    self._next_assumption = 0
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return False
                else:
                    self._cancel_until(bt_level)
                    clause = _Clause(learned, learned=True)
                    self._learned.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._decay()
                if len(self._learned) > self._max_learned:
                    self._reduce_db()
                    self._max_learned = int(self._max_learned * 1.3)
                if conflicts_here >= budget:
                    return None
                continue
            if self._next_assumption < len(assumptions):
                ilit = assumptions[self._next_assumption]
                self._next_assumption += 1
                val = self._lit_value(ilit)
                if val == _TRUE:
                    continue
                if val == _FALSE:
                    self._extract_failed(assumptions)
                    return False
                self._trail_lim.append(len(self._trail))
                self._num_assumed_levels = len(self._trail_lim)
                self._enqueue(ilit, None)
                continue
            if phase_time is None:
                v = self._decide()
            else:
                t0 = perf_counter()
                v = self._decide()
                phase_time["decide"] += perf_counter() - t0
            if v == 0:
                self._model = list(self._value)
                return True
            self._decisions += 1
            if meter is not None:
                meter.on_decision()
            self._trail_lim.append(len(self._trail))
            self._enqueue(2 * v + (0 if self._phase[v] else 1), None)

    def _extract_failed(self, assumptions: List[int]) -> None:
        self._failed_assumptions = [
            self._external(a)
            for a in assumptions
            if self._lit_value(a) != _UNASSIGNED
        ]
