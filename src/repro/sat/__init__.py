"""SAT solving substrate: a CDCL solver plus DIMACS utilities.

This package provides the search engine underneath the bitblasting
("SMT") backend described in the paper.  It is independent of the Zen
language layer and usable on its own::

    from repro.sat import Solver

    s = Solver()
    x, y = s.new_var(), s.new_var()
    s.add_clause([x, y])
    s.add_clause([-x, y])
    assert s.solve()
"""

from .dimacs import dimacs_string, load_into_solver, parse_dimacs, write_dimacs
from .solver import Solver, luby

__all__ = [
    "Solver",
    "luby",
    "parse_dimacs",
    "write_dimacs",
    "dimacs_string",
    "load_into_solver",
]
