"""Core analysis API: ZenFunction, state sets, test generation,
compilation."""

from .budget import (
    Budget,
    BudgetMeter,
    QueryResult,
    RungFailure,
    metered,
    solve_with_fallback,
    start_meter,
)
from .compilation import compile_function
from .function import DEFAULT_MAX_LIST_LENGTH, ZenFunction, zen_function
from .modelcheck import (
    ReachabilityReport,
    backward_reachable,
    can_reach,
    check_invariant,
    forward_image,
    reachable_states,
)
from .testgen import InputSuite, generate_inputs
from .transformers import (
    StateSet,
    StateSetTransformer,
    TransformerContext,
    bit_width,
    default_context,
    reset_default_context,
)

__all__ = [
    "ZenFunction",
    "zen_function",
    "DEFAULT_MAX_LIST_LENGTH",
    "Budget",
    "BudgetMeter",
    "QueryResult",
    "RungFailure",
    "solve_with_fallback",
    "start_meter",
    "metered",
    "InputSuite",
    "StateSet",
    "StateSetTransformer",
    "TransformerContext",
    "default_context",
    "reset_default_context",
    "bit_width",
    "generate_inputs",
    "compile_function",
    "reachable_states",
    "forward_image",
    "check_invariant",
    "can_reach",
    "backward_reachable",
    "ReachabilityReport",
]
