"""Core analysis API: ZenFunction, state sets, test generation,
compilation."""

from .compilation import compile_function
from .function import DEFAULT_MAX_LIST_LENGTH, ZenFunction, zen_function
from .modelcheck import (
    ReachabilityReport,
    backward_reachable,
    can_reach,
    check_invariant,
    reachable_states,
)
from .testgen import generate_inputs
from .transformers import (
    StateSet,
    StateSetTransformer,
    TransformerContext,
    bit_width,
    default_context,
    reset_default_context,
)

__all__ = [
    "ZenFunction",
    "zen_function",
    "DEFAULT_MAX_LIST_LENGTH",
    "StateSet",
    "StateSetTransformer",
    "TransformerContext",
    "default_context",
    "reset_default_context",
    "bit_width",
    "generate_inputs",
    "compile_function",
    "reachable_states",
    "check_invariant",
    "can_reach",
    "backward_reachable",
    "ReachabilityReport",
]
