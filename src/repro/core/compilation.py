"""Model extraction: compile a ZenFunction to plain Python (§8).

The C# implementation emits IL with ``System.Reflection.Emit``; the
Python analogue generates Python source for the expression tree,
compiles it with the built-in compiler, and returns the resulting
closure.  The generated code is straight-line SSA over the expression
DAG, with conditionals as lazy ``a if c else b`` expressions.

List ``case`` nodes carry host-language closures that can only be
expanded against a value, so models whose *body* contains a ListCase
fall back to a specializing interpreter closure (documented; the
networking models in this repository — ACLs, forwarding, tunnels —
compile fully).
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Any, Callable, Dict, List

from ..errors import ZenUnsupportedError
from ..lang import expr as ex
from ..lang import types as ty

_BIN_TEMPLATES = {
    "and": "({l} and {r})",
    "or": "({l} or {r})",
    "eq": "({l} == {r})",
    "ne": "({l} != {r})",
    "lt": "({l} < {r})",
    "le": "({l} <= {r})",
    "gt": "({l} > {r})",
    "ge": "({l} >= {r})",
}


class _Codegen:
    """Generates SSA-style Python source for an expression DAG."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.names: Dict[ex.Expr, str] = {}
        self.constants: Dict[str, Any] = {}
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def emit(self, text: str) -> str:
        name = self.fresh()
        self.lines.append(f"    {name} = {text}")
        return name

    def const(self, value: Any) -> str:
        name = f"_c{len(self.constants)}"
        self.constants[name] = value
        return name

    # ------------------------------------------------------------------

    def visit(self, root: ex.Expr) -> str:
        """Iteratively generate code for a DAG (no Python recursion)."""
        stack = [root]
        while stack:
            node = stack[-1]
            if node in self.names:
                stack.pop()
                continue
            pending = [c for c in node.children if c not in self.names]
            if pending:
                stack.extend(pending)
                continue
            self.names[node] = self._generate(node)
            stack.pop()
        return self.names[root]

    def _wrap(self, int_type: ty.IntType, text: str) -> str:
        mask = (1 << int_type.width) - 1
        if int_type.signed:
            half = 1 << (int_type.width - 1)
            return (
                f"((({text}) & {mask}) - {1 << int_type.width} "
                f"if (({text}) & {mask}) >= {half} else (({text}) & {mask}))"
            )
        return f"(({text}) & {mask})"

    def _unsigned(self, int_type: ty.IntType, text: str) -> str:
        return f"(({text}) & {(1 << int_type.width) - 1})"

    def _generate(self, node: ex.Expr) -> str:
        if isinstance(node, ex.Constant):
            return self.const(node.value)
        if isinstance(node, ex.Var):
            return node.name
        if isinstance(node, ex.Binary):
            return self._generate_binary(node)
        if isinstance(node, ex.Unary):
            operand = self.names[node.operand]
            if node.op == "not":
                return self.emit(f"not {operand}")
            int_type = node.type
            assert isinstance(int_type, ty.IntType)
            if node.op == "bnot":
                return self.emit(
                    self._wrap(int_type, f"~{self._unsigned(int_type, operand)}")
                )
            return self.emit(self._wrap(int_type, f"-{operand}"))
        if isinstance(node, ex.If):
            cond = self.names[node.cond]
            then = self.names[node.then]
            orelse = self.names[node.orelse]
            return self.emit(f"{then} if {cond} else {orelse}")
        if isinstance(node, ex.Create):
            cls_name = self.const(node.type.cls)  # type: ignore[attr-defined]
            args = ", ".join(
                f"{fname}={self.names[child]}"
                for fname, child in node.fields.items()
            )
            return self.emit(f"{cls_name}({args})")
        if isinstance(node, ex.GetField):
            obj = self.names[node.obj]
            return self.emit(f"{obj}.{node.field}")
        if isinstance(node, ex.WithField):
            obj = self.names[node.obj]
            value = self.names[node.value]
            replace = self.const(dataclasses.replace)
            return self.emit(f"{replace}({obj}, {node.field}={value})")
        if isinstance(node, ex.MakeTuple):
            items = ", ".join(self.names[item] for item in node.items)
            return self.emit(f"({items},)")
        if isinstance(node, ex.TupleGet):
            tup = self.names[node.tup]
            return self.emit(f"{tup}[{node.index}]")
        if isinstance(node, ex.ListEmpty):
            return self.emit("[]")
        if isinstance(node, ex.ListCons):
            head = self.names[node.head]
            tail = self.names[node.tail]
            return self.emit(f"[{head}] + {tail}")
        if isinstance(node, ex.OptionNone):
            return self.emit("None")
        if isinstance(node, ex.OptionSome):
            return self.names[node.value]
        if isinstance(node, ex.OptionHasValue):
            opt = self.names[node.opt]
            return self.emit(f"{opt} is not None")
        if isinstance(node, ex.OptionValue):
            opt = self.names[node.opt]
            default = self.const(ty.default_value(node.type))
            return self.emit(f"{default} if {opt} is None else {opt}")
        if isinstance(node, ex.ListCase):
            raise ZenUnsupportedError(
                "compile() does not support list case expressions; "
                "the interpreter handles them (call .evaluate instead)"
            )
        if isinstance(node, ex.Lifted):
            raise ZenUnsupportedError("cannot compile evaluator-internal values")
        if isinstance(node, ex.Adapt):
            operand = self.names[node.operand]
            helper = self.const(_adapt_runtime)
            source = self.const(node.operand.type)
            target = self.const(node.type)
            return self.emit(f"{helper}({operand}, {source}, {target})")
        raise ZenUnsupportedError(f"cannot compile node {node!r}")

    def _generate_binary(self, node: ex.Binary) -> str:
        left = self.names[node.left]
        right = self.names[node.right]
        template = _BIN_TEMPLATES.get(node.op)
        if template is not None:
            return self.emit(template.format(l=left, r=right))
        int_type = node.type
        assert isinstance(int_type, ty.IntType)
        if node.op in ("add", "sub", "mul"):
            symbol = {"add": "+", "sub": "-", "mul": "*"}[node.op]
            return self.emit(self._wrap(int_type, f"{left} {symbol} {right}"))
        if node.op in ("band", "bor", "bxor"):
            symbol = {"band": "&", "bor": "|", "bxor": "^"}[node.op]
            lu = self._unsigned(int_type, left)
            ru = self._unsigned(int_type, right)
            return self.emit(self._wrap(int_type, f"{lu} {symbol} {ru}"))
        if node.op == "shl":
            amount = self._unsigned(int_type, right)
            shifted = (
                f"0 if {amount} >= {int_type.width} "
                f"else {self._unsigned(int_type, left)} << {amount}"
            )
            return self.emit(self._wrap(int_type, f"({shifted})"))
        if node.op == "shr":
            amount = self._unsigned(int_type, right)
            if int_type.signed:
                fill = f"(-1 if {left} < 0 else 0)"
                body = (
                    f"{fill} if {amount} >= {int_type.width} "
                    f"else {left} >> {amount}"
                )
            else:
                body = (
                    f"0 if {amount} >= {int_type.width} "
                    f"else {self._unsigned(int_type, left)} >> {amount}"
                )
            return self.emit(self._wrap(int_type, f"({body})"))
        raise ZenUnsupportedError(f"cannot compile operator {node.op}")


def _adapt_runtime(value, source, target):
    """Runtime shim for adapt expressions in compiled code."""
    if isinstance(source, ty.MapType):
        pairs = [(k, v) for k, v in value.items()]
        pairs.reverse()
        return pairs
    result = {}
    for key, val in reversed(value):
        result[key] = val
    return result


# Memoizes generated closures per ZenFunction: the body expression is
# fixed at construction time, so codegen + exec is pure and repeated
# compile() calls can reuse the first result.  Weak keys keep the cache
# from pinning models alive.
_COMPILED: "weakref.WeakKeyDictionary[Any, Callable[..., Any]]" = (
    weakref.WeakKeyDictionary()
)


def compile_function(function) -> Callable[..., Any]:
    """Compile a ZenFunction's body to a plain Python function.

    The returned callable takes the same number of (concrete)
    arguments and computes the same results as ``function.evaluate``.
    Results are cached per function object, so repeated calls return
    the same closure without regenerating or re-``exec``-ing source.
    """
    cached = _COMPILED.get(function)
    if cached is not None:
        return cached
    gen = _Codegen()
    result = gen.visit(function.body.expr)
    arg_names = ", ".join(f"arg{i}" for i in range(len(function.arg_types)))
    source = "\n".join(
        [f"def _compiled({arg_names}):"] + gen.lines + [f"    return {result}"]
    )
    namespace: Dict[str, Any] = dict(gen.constants)
    code = compile(source, f"<zen:{function.name}>", "exec")
    exec(code, namespace)
    compiled = namespace["_compiled"]
    compiled.__name__ = f"compiled_{function.name}"
    compiled.__doc__ = f"Compiled Zen model {function.name!r}."
    compiled._zen_source = source
    _COMPILED[function] = compiled
    return compiled
