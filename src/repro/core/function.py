"""`ZenFunction`: the executable-and-analyzable function wrapper (§4).

A `ZenFunction` wraps a Python function over Zen values.  The same
model then supports every analysis in the paper:

* :meth:`evaluate` — concrete simulation,
* :meth:`find` — counterexample / example input search (bounded model
  checking) with either the SAT or the BDD backend,
* :meth:`transformer` — the state set transformer abstraction
  (:mod:`repro.core.transformers`),
* :meth:`generate_inputs` — symbolic-execution test generation
  (:mod:`repro.core.testgen`),
* :meth:`compile` — extraction of a plain Python implementation
  (:mod:`repro.core.compile`).
"""

from __future__ import annotations

import inspect
import typing
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..backends import (
    BddBackend,
    ConcreteEvaluator,
    SatBackend,
    SymbolicEvaluator,
    decode,
)
from ..backends import values as sv
from ..errors import ZenArityError, ZenTypeError, ZenUnsoundResultError
from ..lang import Zen, constant, types as ty
from ..lang import expr as ex
from ..telemetry.spans import span
from .budget import start_meter

DEFAULT_MAX_LIST_LENGTH = 4


def _make_backend(backend):
    """Resolve a backend name or pass an instance through.

    Accepting instances lets callers keep one backend across queries to
    read its accumulated statistics (``Bdd.stats()``,
    ``SatBackend.statistics``).
    """
    if backend == "sat":
        return SatBackend()
    if backend == "bdd":
        return BddBackend()
    if isinstance(backend, (SatBackend, BddBackend)):
        return backend
    raise ZenTypeError(
        f"unknown backend {backend!r}; use 'sat', 'bdd', or an instance"
    )


class ZenFunction:
    """A model function over Zen values, ready for analysis.

    Construct with explicit argument types::

        f = ZenFunction(lambda p: forward(table, p), [Packet])

    or from annotations with :func:`zen_function`.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        arg_annotations: Sequence[Any],
        name: Optional[str] = None,
    ):
        self._fn = fn
        self._arg_types: List[ty.ZenType] = [
            ty.from_annotation(a) for a in arg_annotations
        ]
        if not 1 <= len(self._arg_types) <= 4:
            raise ZenArityError(
                "Zen functions take between one and four arguments"
            )
        self.name = name or getattr(fn, "__name__", "<zen function>")
        self._arg_vars = [
            Zen(ex.Var(f"arg{i}", t)) for i, t in enumerate(self._arg_types)
        ]
        result = fn(*self._arg_vars)
        if not isinstance(result, Zen):
            raise ZenTypeError(
                f"{self.name} must return a Zen value, got {result!r}"
            )
        self._body = result

    # ------------------------------------------------------------------

    @classmethod
    def from_ref(cls, ref: Any, *args: Any, **kwargs: Any) -> "ZenFunction":
        """Resolve a picklable reference into a :class:`ZenFunction`.

        ``ref`` is either a ``"package.module:attribute"`` import path
        or a callable.  The resolved attribute may be a ZenFunction, a
        fully annotated plain function (wrapped via
        :func:`zen_function`), or a *builder* — a callable invoked with
        ``*args``/``**kwargs`` whose result is coerced the same way.

        This is the hook the fault-isolated query service uses: a
        ZenFunction itself closes over lambdas and a built expression
        DAG and cannot cross a process boundary, but a reference plus
        builder arguments can, and the worker reconstructs the model on
        its side.
        """
        target = ref
        if isinstance(target, str):
            module_name, _, attr_path = target.partition(":")
            if not module_name or not attr_path:
                raise ZenTypeError(
                    f"expected a 'module:attribute' reference, got {ref!r}"
                )
            import importlib

            try:
                target = importlib.import_module(module_name)
            except ImportError as error:
                raise ZenTypeError(
                    f"cannot import module {module_name!r} for {ref!r}: {error}"
                ) from error
            for part in attr_path.split("."):
                try:
                    target = getattr(target, part)
                except AttributeError as error:
                    raise ZenTypeError(
                        f"cannot resolve {ref!r}: {error}"
                    ) from error
        if isinstance(target, cls):
            if args or kwargs:
                raise ZenTypeError(
                    f"{ref!r} is already a ZenFunction; builder arguments "
                    "are only valid for builder callables"
                )
            return target
        if callable(target) and (args or kwargs):
            built = target(*args, **kwargs)
            if isinstance(built, cls):
                return built
            if callable(built):
                return zen_function(built)
            raise ZenTypeError(
                f"builder {ref!r} must return a ZenFunction or an "
                f"annotated callable, got {built!r}"
            )
        if callable(target):
            # Prefer treating it as a builder (zero-arg factory); fall
            # back to annotation wrapping for plain model functions.
            try:
                built = target()
            except TypeError:
                return zen_function(target)
            if isinstance(built, cls):
                return built
            if callable(built):
                return zen_function(built)
            return zen_function(target)
        raise ZenTypeError(
            f"cannot build a ZenFunction from {ref!r} ({target!r})"
        )

    def __reduce__(self):
        raise ZenTypeError(
            f"ZenFunction {self.name!r} is not picklable (it closes over "
            "a built expression DAG); ship a QuerySpec with a "
            "'module:attribute' builder reference instead — the worker "
            "rebuilds the model via ZenFunction.from_ref"
        )

    @property
    def arg_types(self) -> List[ty.ZenType]:
        """Zen types of the function's arguments."""
        return list(self._arg_types)

    @property
    def return_type(self) -> ty.ZenType:
        """Zen type of the function's result."""
        return self._body.type

    @property
    def body(self) -> Zen:
        """The function body as a Zen expression over ``argN`` vars."""
        return self._body

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def evaluate(self, *args: Any) -> Any:
        """Run the model on concrete inputs (simulation)."""
        self._check_arity(args)
        env = {f"arg{i}": value for i, value in enumerate(args)}
        return ConcreteEvaluator(env).evaluate(self._body.expr)

    def __call__(self, *args: Any) -> Any:
        return self.evaluate(*args)

    # ------------------------------------------------------------------
    # Bounded model checking
    # ------------------------------------------------------------------

    def find(
        self,
        predicate: Optional[Callable[..., Zen]] = None,
        backend: Any = "sat",
        max_list_length: int = DEFAULT_MAX_LIST_LENGTH,
        budget: Any = None,
        validate: bool = True,
    ) -> Optional[Tuple[Any, ...]]:
        """Search for inputs whose run satisfies `predicate`.

        `predicate` receives the argument Zen values followed by the
        result Zen value and returns ``Zen<bool>``.  Without a
        predicate the result itself must be a boolean and is required
        to hold.  Returns a tuple of concrete inputs, a single value
        for unary functions, or None when no input exists (up to the
        list-length bound).

        `backend` is ``"sat"``, ``"bdd"``, or a backend instance
        (reusable across queries, e.g. to accumulate statistics).

        `budget` is an optional :class:`~repro.core.budget.Budget` (or
        running meter); the query raises
        :class:`~repro.errors.ZenBudgetExceeded` on exhaustion.  With
        `validate` (the default), any model found is replayed through
        the concrete evaluator before being returned, so a latent
        encoding bug in a backend raises
        :class:`~repro.errors.ZenUnsoundResultError` instead of
        silently yielding a wrong input.
        """
        engine = _make_backend(backend)
        meter = start_meter(budget)
        if meter is not None:
            engine.set_budget(meter)
        with span(
            "query.find",
            function=self.name,
            backend=getattr(engine, "name", str(backend)),
            max_list_length=max_list_length,
        ):
            try:
                evaluator = SymbolicEvaluator(
                    engine, max_list_length=max_list_length
                )
                with span("compile.flatten"):
                    sym_args = [
                        evaluator.fresh_input(f"arg{i}", t)
                        for i, t in enumerate(self._arg_types)
                    ]
                    result_value = evaluator.evaluate(self._body.expr)
                    if predicate is None:
                        if not isinstance(self.return_type, ty.BoolType):
                            raise ZenTypeError(
                                "find without a predicate needs a "
                                "boolean-valued function"
                            )
                        constraint_value = result_value
                    else:
                        lifted_args = [
                            Zen(ex.Lifted(sym, t, evaluator))
                            for sym, t in zip(sym_args, self._arg_types)
                        ]
                        lifted_result = Zen(
                            ex.Lifted(result_value, self.return_type, evaluator)
                        )
                        prop = predicate(*lifted_args, lifted_result)
                        if not isinstance(prop, Zen) or not isinstance(
                            prop.type, ty.BoolType
                        ):
                            raise ZenTypeError(
                                "find predicate must return Zen<bool>"
                            )
                        constraint_value = evaluator.evaluate(prop.expr)
                assert isinstance(constraint_value, sv.SymBool)
                with span("solve"):
                    model = engine.solve(constraint_value.bit)
            finally:
                if meter is not None:
                    engine.set_budget(None)
            if model is None:
                return None
            decoded = tuple(decode(model, arg) for arg in sym_args)
            if validate:
                with span("validate.replay"):
                    self._validate_model(decoded, predicate, backend)
            return decoded[0] if len(decoded) == 1 else decoded

    def _validate_model(
        self,
        decoded: Tuple[Any, ...],
        predicate: Optional[Callable[..., Zen]],
        backend: Any,
    ) -> None:
        """Replay a solver model through the concrete backend.

        The concrete evaluator shares no code with the bitblaster or
        the BDD encoder, so agreement here is an end-to-end soundness
        check of the whole symbolic pipeline for this model.
        """
        name = backend if isinstance(backend, str) else type(backend).__name__
        result = self.evaluate(*decoded)
        if predicate is None:
            satisfied = result is True
        else:
            const_args = [
                constant(value, t)
                for value, t in zip(decoded, self._arg_types)
            ]
            prop = predicate(*const_args, constant(result, self.return_type))
            satisfied = ConcreteEvaluator({}).evaluate(prop.expr) is True
        if not satisfied:
            raise ZenUnsoundResultError(
                f"{name} backend returned a model of {self.name} that "
                f"fails concrete replay: {decoded!r} (the symbolic "
                "encoding and the concrete evaluator disagree)",
                model=decoded,
                backend=name,
            )

    def verify(
        self,
        invariant: Callable[..., Zen],
        backend: Any = "sat",
        max_list_length: int = DEFAULT_MAX_LIST_LENGTH,
        budget: Any = None,
        validate: bool = True,
    ) -> Optional[Tuple[Any, ...]]:
        """Check that `invariant` holds on all inputs.

        Returns None when verified, else a counterexample input (the
        negation handed to :meth:`find`, so counterexamples are
        concrete-replay-validated and budgets apply unchanged).
        """
        def negated(*zs: Zen) -> Zen:
            return ~invariant(*zs)

        return self.find(
            negated,
            backend=backend,
            max_list_length=max_list_length,
            budget=budget,
            validate=validate,
        )

    # ------------------------------------------------------------------
    # Other analyses (implemented in sibling modules)
    # ------------------------------------------------------------------

    def transformer(self, context=None, budget=None):
        """Build a :class:`StateSetTransformer` for this function."""
        from .transformers import StateSetTransformer

        return StateSetTransformer.build(self, context=context, budget=budget)

    def generate_inputs(
        self,
        max_inputs: int = 64,
        max_list_length: int = DEFAULT_MAX_LIST_LENGTH,
        budget: Any = None,
    ):
        """Generate high-coverage test inputs (symbolic execution).

        Returns an :class:`~repro.core.testgen.InputSuite` (a list
        whose ``truncated`` flag records whether `max_inputs` cut
        exploration short).
        """
        from .testgen import generate_inputs

        return generate_inputs(
            self,
            max_inputs=max_inputs,
            max_list_length=max_list_length,
            budget=budget,
        )

    def compile(self) -> Callable[..., Any]:
        """Extract a plain Python implementation of the model.

        Compilation is memoized: repeated calls return the same
        closure without regenerating source.
        """
        from .compilation import compile_function

        return compile_function(self)

    # ------------------------------------------------------------------

    def _check_arity(self, args: Sequence[Any]) -> None:
        if len(args) != len(self._arg_types):
            raise ZenArityError(
                f"{self.name} takes {len(self._arg_types)} argument(s), "
                f"got {len(args)}"
            )


def zen_function(fn: Callable[..., Any]) -> ZenFunction:
    """Build a ZenFunction from a fully annotated Python function::

        @zen_function
        def allowed(pkt: Packet) -> Bool:
            return acl_allows(MY_ACL, pkt)
    """
    hints = typing.get_type_hints(fn)
    signature = inspect.signature(fn)
    annotations = []
    for param in signature.parameters.values():
        annotation = param.annotation
        if annotation is inspect.Parameter.empty:
            raise ZenTypeError(
                f"parameter {param.name!r} of {fn.__name__} needs a Zen "
                "type annotation"
            )
        annotations.append(hints.get(param.name, annotation))
    return ZenFunction(fn, annotations, name=fn.__name__)
