"""Unbounded model checking over state set transformers (§1, §6).

The paper lists an *unbounded* model checker among Zen's backends: for
a transition function ``step : S -> S`` it computes the set of states
reachable from an initial set as a least fixed point of forward images
(standard symbolic reachability via pre/post image computation), then
answers invariant and reachability queries without a depth bound.

Because BDDs are canonical, fixpoint detection is pointer equality of
set nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..errors import ZenTypeError
from .budget import metered, start_meter
from .function import ZenFunction
from .transformers import StateSet, StateSetTransformer, TransformerContext, default_context


@dataclass(frozen=True)
class ReachabilityReport:
    """The result of a reachability fixpoint computation."""

    reachable: StateSet
    iterations: int
    converged: bool


def reachable_states(
    step: ZenFunction,
    initial: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> ReachabilityReport:
    """All states reachable from `initial` under repeated `step`.

    `step` must be a unary function whose input and output types
    match.  Iterates ``R := R ∪ post(R)`` until the set stops growing
    (guaranteed to terminate: the state space is finite).

    `budget` spans the whole fixpoint with one shared meter (building
    the transformer, every image, and the union steps), so a
    pathological step function raises
    :class:`~repro.errors.ZenBudgetExceeded` instead of grinding
    through iterations.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    transformer = step.transformer(context, budget=meter)
    if transformer.input_type != transformer.output_type:
        raise ZenTypeError(
            "unbounded model checking needs step : S -> S, got "
            f"{transformer.input_type} -> {transformer.output_type}"
        )
    reached = initial
    with metered(context.manager, meter):
        for iteration in range(1, max_iterations + 1):
            if meter is not None:
                meter.check_deadline()
            frontier = transformer.transform_forward(reached, budget=meter)
            grown = reached.union(frontier)
            if grown.equals(reached):
                return ReachabilityReport(reached, iteration, True)
            reached = grown
    return ReachabilityReport(reached, max_iterations, False)


def check_invariant(
    step: ZenFunction,
    initial: StateSet,
    invariant: ZenFunction,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> Optional[Any]:
    """Check that `invariant` holds on every reachable state.

    Returns None when the invariant is inductive-reachable-safe, or a
    concrete reachable state violating it.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    report = reachable_states(
        step,
        initial,
        context=context,
        max_iterations=max_iterations,
        budget=meter,
    )
    good = context.from_predicate(invariant, budget=meter)
    bad = report.reachable.difference(good)
    return bad.element()


def can_reach(
    step: ZenFunction,
    initial: StateSet,
    target: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> Optional[Any]:
    """A reachable state inside `target`, or None if unreachable."""
    report = reachable_states(
        step,
        initial,
        context=context,
        max_iterations=max_iterations,
        budget=budget,
    )
    hit = report.reachable.intersect(target)
    return hit.element()


def backward_reachable(
    step: ZenFunction,
    bad: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> ReachabilityReport:
    """All states that can eventually reach `bad` (pre-image fixpoint)."""
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    transformer = step.transformer(context, budget=meter)
    if transformer.input_type != transformer.output_type:
        raise ZenTypeError(
            "unbounded model checking needs step : S -> S"
        )
    reached = bad
    with metered(context.manager, meter):
        for iteration in range(1, max_iterations + 1):
            if meter is not None:
                meter.check_deadline()
            frontier = transformer.transform_reverse(reached, budget=meter)
            grown = reached.union(frontier)
            if grown.equals(reached):
                return ReachabilityReport(reached, iteration, True)
            reached = grown
    return ReachabilityReport(reached, max_iterations, False)
