"""Unbounded model checking over state set transformers (§1, §6).

The paper lists an *unbounded* model checker among Zen's backends: for
a transition function ``step : S -> S`` it computes the set of states
reachable from an initial set as a least fixed point of forward images
(standard symbolic reachability via pre/post image computation), then
answers invariant and reachability queries without a depth bound.

Because BDDs are canonical, fixpoint detection is pointer equality of
set nodes.

Observability
-------------
Each fixpoint runs under a ``modelcheck.fixpoint`` trace span whose
final attributes record the iteration count, convergence, and frontier
sizes, and bumps the ``modelcheck.*`` counters in the process-wide
:data:`~repro.telemetry.metrics.METRICS` registry — one per iteration,
one per budget checkpoint — so a long-running fixpoint is visible from
the outside instead of being a telemetry blind spot.

:func:`forward_image` exports the fixpoint's building block on its
own: one budget-threaded post-image, which is what the compositional
sharding layer (:mod:`repro.compose`) uses to compute per-device image
summaries without re-deriving transformer plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..errors import ZenTypeError
from ..telemetry.metrics import METRICS
from ..telemetry.spans import span
from .budget import metered, start_meter
from .function import ZenFunction
from .transformers import StateSet, StateSetTransformer, TransformerContext, default_context


@dataclass(frozen=True)
class ReachabilityReport:
    """The result of a reachability fixpoint computation."""

    reachable: StateSet
    iterations: int
    converged: bool


def forward_image(
    step: ZenFunction,
    inputs: StateSet,
    context: Optional[TransformerContext] = None,
    budget=None,
) -> StateSet:
    """One forward image (post) of `inputs` under `step`.

    The single-application building block of :func:`reachable_states`,
    exported for per-device image summaries: the compose layer applies
    it device by device instead of running a joint fixpoint.  `step`
    may have distinct input/output types (e.g. a header rewrite);
    `budget` meters the transformer build and the image alike.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    with span("modelcheck.image", step=step.name):
        transformer = step.transformer(context, budget=meter)
        with metered(context.manager, meter):
            image = transformer.transform_forward(inputs, budget=meter)
    METRICS.counter("modelcheck.images").inc()
    return image


def _fixpoint(
    step: ZenFunction,
    seed: StateSet,
    context: TransformerContext,
    max_iterations: int,
    meter,
    direction: str,
) -> ReachabilityReport:
    """Shared forward/backward fixpoint loop with telemetry."""
    transformer = step.transformer(context, budget=meter)
    if transformer.input_type != transformer.output_type:
        raise ZenTypeError(
            "unbounded model checking needs step : S -> S, got "
            f"{transformer.input_type} -> {transformer.output_type}"
        )
    manager = context.manager
    iterations_counter = METRICS.counter("modelcheck.iterations")
    checkpoints_counter = METRICS.counter("modelcheck.budget_checks")
    frontier_gauge = METRICS.gauge("modelcheck.frontier_nodes")
    METRICS.counter("modelcheck.fixpoints").inc()
    reached = seed
    with span(
        "modelcheck.fixpoint", direction=direction, step=step.name
    ) as live:
        converged = False
        iteration = 0
        with metered(manager, meter):
            for iteration in range(1, max_iterations + 1):
                if meter is not None:
                    meter.check_deadline()
                    checkpoints_counter.inc()
                iterations_counter.inc()
                if direction == "forward":
                    frontier = transformer.transform_forward(
                        reached, budget=meter
                    )
                else:
                    frontier = transformer.transform_reverse(
                        reached, budget=meter
                    )
                frontier_gauge.set(manager.node_count(frontier.node))
                grown = reached.union(frontier)
                if grown.equals(reached):
                    converged = True
                    break
                reached = grown
        live.set("iterations", iteration)
        live.set("converged", converged)
        live.set("reached_nodes", manager.node_count(reached.node))
    return ReachabilityReport(reached, iteration, converged)


def reachable_states(
    step: ZenFunction,
    initial: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> ReachabilityReport:
    """All states reachable from `initial` under repeated `step`.

    `step` must be a unary function whose input and output types
    match.  Iterates ``R := R ∪ post(R)`` until the set stops growing
    (guaranteed to terminate: the state space is finite).

    `budget` spans the whole fixpoint with one shared meter (building
    the transformer, every image, and the union steps), so a
    pathological step function raises
    :class:`~repro.errors.ZenBudgetExceeded` instead of grinding
    through iterations.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    return _fixpoint(step, initial, context, max_iterations, meter, "forward")


def check_invariant(
    step: ZenFunction,
    initial: StateSet,
    invariant: ZenFunction,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> Optional[Any]:
    """Check that `invariant` holds on every reachable state.

    Returns None when the invariant is inductive-reachable-safe, or a
    concrete reachable state violating it.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    report = reachable_states(
        step,
        initial,
        context=context,
        max_iterations=max_iterations,
        budget=meter,
    )
    good = context.from_predicate(invariant, budget=meter)
    bad = report.reachable.difference(good)
    return bad.element()


def can_reach(
    step: ZenFunction,
    initial: StateSet,
    target: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> Optional[Any]:
    """A reachable state inside `target`, or None if unreachable."""
    report = reachable_states(
        step,
        initial,
        context=context,
        max_iterations=max_iterations,
        budget=budget,
    )
    hit = report.reachable.intersect(target)
    return hit.element()


def backward_reachable(
    step: ZenFunction,
    bad: StateSet,
    context: Optional[TransformerContext] = None,
    max_iterations: int = 1000,
    budget=None,
) -> ReachabilityReport:
    """All states that can eventually reach `bad` (pre-image fixpoint)."""
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    return _fixpoint(step, bad, context, max_iterations, meter, "backward")
