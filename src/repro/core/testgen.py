"""Test input generation via symbolic execution (§8, "Testing
implementations").

``f.generate_inputs()`` produces concrete inputs with high branch
coverage: every ``if``/``case`` decision encountered during symbolic
evaluation is recorded, and a model is solved for each polarity of
each decision (in the spirit of DART-style directed testing).  The
resulting inputs exercise each reachable branch of the model at least
once, e.g. one test packet per ACL rule.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..backends import SatBackend, SymbolicEvaluator, decode
from ..backends import values as sv
from ..backends.interface import bit_value
from ..telemetry.spans import span
from .budget import start_meter


class InputSuite(List[Any]):
    """Generated test inputs plus a no-silent-caps indicator.

    Behaves exactly like the list previously returned; additionally
    ``truncated`` is True when the ``max_inputs`` cap stopped
    generation before every branch-polarity goal had been explored
    (so raising the cap could produce more inputs), and
    ``goals_explored``/``goals_total`` quantify the coverage of the
    goal list itself.
    """

    def __init__(
        self,
        items=(),
        truncated: bool = False,
        goals_explored: int = 0,
        goals_total: int = 0,
    ):
        super().__init__(items)
        self.truncated = truncated
        self.goals_explored = goals_explored
        self.goals_total = goals_total

    def __reduce__(self):
        # Explicit reduction so suites survive a process boundary (the
        # query service ships them from worker to parent) with the
        # coverage metadata intact, independent of how list subclass
        # pickling treats instance dicts.
        return (
            type(self),
            (list(self), self.truncated, self.goals_explored, self.goals_total),
        )


class _TracingEvaluator(SymbolicEvaluator):
    """A symbolic evaluator that records branch-decision bits."""

    def __init__(self, backend, max_list_length: int):
        super().__init__(backend, max_list_length=max_list_length)
        self.decisions: List[Any] = []

    def _branch_if(self, node, stack) -> None:  # noqa: D401
        cond = self._memo[node.cond]
        if bit_value(self._backend, cond.bit) is None:
            self.decisions.append(cond.bit)
        super()._branch_if(node, stack)

    def _branch_case(self, node, stack) -> None:
        lst = self._memo[node.lst]
        if lst.cells:
            guard = lst.cells[0][0]
            if bit_value(self._backend, guard) is None:
                self.decisions.append(guard)
        super()._branch_case(node, stack)


def generate_inputs(
    function,
    max_inputs: int = 64,
    max_list_length: int = 4,
    budget: Any = None,
) -> InputSuite:
    """Generate test inputs covering each branch decision of `function`.

    Returns an :class:`InputSuite` of argument tuples (or single
    values for unary functions), deduplicated, at most `max_inputs`
    long; its ``truncated`` flag is True when the cap stopped goal
    exploration early (no-silent-caps).  `budget` bounds the solver
    work across all goals with one shared meter.
    """
    backend = SatBackend()
    meter = start_meter(budget)
    if meter is not None:
        backend.set_budget(meter)
    with span("query.generate_inputs", function=function.name) as sp:
        evaluator = _TracingEvaluator(backend, max_list_length=max_list_length)
        with span("compile.flatten"):
            sym_args = [
                evaluator.fresh_input(f"arg{i}", t)
                for i, t in enumerate(function.arg_types)
            ]
            evaluator.evaluate(function.body.expr)

        goals: List[Any] = [backend.true()]
        for decision in evaluator.decisions:
            goals.append(decision)
            goals.append(backend.not_(decision))

        results: List[Tuple[Any, ...]] = []
        seen = set()
        explored = 0
        for goal in goals:
            if len(results) >= max_inputs:
                break
            explored += 1
            model = backend.solve(goal)
            if model is None:
                continue
            decoded = tuple(decode(model, arg) for arg in sym_args)
            key = repr(decoded)
            if key in seen:
                continue
            seen.add(key)
            results.append(decoded[0] if len(decoded) == 1 else decoded)
        sp.set("goals", len(goals)).set("inputs", len(results))
    return InputSuite(
        results,
        truncated=explored < len(goals),
        goals_explored=explored,
        goals_total=len(goals),
    )
