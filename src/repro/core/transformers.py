"""State sets and state set transformers (§4 "Computing with sets").

This is the paper's novel abstraction: a ``StateSetTransformer<T, R>``
turns any unary Zen function ``T -> R`` into a relation on BDDs,
supporting

* ``transform_forward`` — the image of an input set (post-image), and
* ``transform_reverse`` — the pre-image of an output set,

both implemented with standard existential quantification (§6).

Variable layout (the paper's ordering heuristics, §6)
-----------------------------------------------------
Two rules govern BDD variable allocation:

1. **Interleaving.**  A transformer's relation constrains output bits
   to equal functions of input bits; if the two variable sets are not
   interleaved, even the identity function has an exponential-size
   relation.  Therefore *every transformer allocates its own block* of
   variables in which input bit ``i`` and output bit ``i`` sit at
   adjacent levels.

2. **Unique variables + runtime substitution.**  Because each
   transformer has private variables, state sets need a home of their
   own: every type gets one *canonical* variable block, and sets are
   converted between canonical and per-transformer variables at the
   edges of each operation with BDD substitution.  All conversions map
   an ascending level sequence to another ascending level sequence, so
   they use the cheap order-preserving ``rename``; only transformer
   *composition* needs the general ``permute``.

This mirrors the C# implementation's strategy described in §6: "it
allocates a new set of unique variables for the second transformer …
and converts between the sets of variables dynamically at runtime
using a BDD substitution operation."
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..backends import BddBackend, BddModel, SatBackend, SymbolicEvaluator
from ..backends import values as sv
from ..bdd import Bdd
from ..errors import ZenArityError, ZenTypeError
from ..lang import types as ty
from ..lang import Zen
from ..telemetry.spans import span
from .budget import metered

DEFAULT_MAX_LIST_LENGTH = 4


def bit_width(zen_type: ty.ZenType, max_list_length: int) -> int:
    """Number of backend bits a symbolic value of this type uses."""
    if isinstance(zen_type, ty.BoolType):
        return 1
    if isinstance(zen_type, ty.IntType):
        return zen_type.width
    if isinstance(zen_type, ty.TupleType):
        return sum(bit_width(t, max_list_length) for t in zen_type.elements)
    if isinstance(zen_type, ty.ObjectType):
        return sum(
            bit_width(t, max_list_length) for t in zen_type.fields.values()
        )
    if isinstance(zen_type, ty.OptionType):
        return 1 + bit_width(zen_type.element, max_list_length)
    if isinstance(zen_type, ty.ListType):
        return max_list_length * (
            1 + bit_width(zen_type.element, max_list_length)
        )
    if isinstance(zen_type, ty.MapType):
        return bit_width(zen_type.adapted(), max_list_length)
    raise ZenTypeError(f"cannot size type {zen_type}")


class _SequenceBackend:
    """A BddBackend whose fresh() hands out pre-planned variables.

    Used to build symbolic values over an explicit level sequence so
    that structurally identical traversals see corresponding bits.
    """

    def __init__(self, inner: BddBackend, levels: List[int]):
        self._inner = inner
        self._levels = levels
        self._next = 0

    def fresh(self, name: str):
        level = self._levels[self._next]
        self._next += 1
        return self._inner.manager.var(level)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class _RecordingBackend:
    """Wraps a backend and records fresh literals in allocation order."""

    def __init__(self, inner):
        self._inner = inner
        self.order: List = []

    def fresh(self, name: str):
        lit = self._inner.fresh(name)
        self.order.append(lit)
        return lit

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


def _aligned_probe_bits(
    zen_type: ty.ZenType, value: Optional[sv.SymValue], max_list_length: int
) -> List:
    """Probe-value bits aligned to the canonical allocation slots.

    Walks the *type* structure (the shape ``fresh`` allocates) and the
    probe value in lockstep; slots the probe value does not populate
    (padded list cells) yield ``None``.  The result has exactly
    ``bit_width(zen_type, max_list_length)`` entries.
    """
    bits: List = []

    def walk(t: ty.ZenType, v: Optional[sv.SymValue]) -> None:
        if isinstance(t, ty.BoolType):
            bits.append(v.bit if v is not None else None)
        elif isinstance(t, ty.IntType):
            if v is None:
                bits.extend([None] * t.width)
            else:
                bits.extend(reversed(v.bits))  # fresh allocates MSB first
        elif isinstance(t, ty.TupleType):
            for i, sub in enumerate(t.elements):
                walk(sub, v.items[i] if v is not None else None)
        elif isinstance(t, ty.ObjectType):
            for name, sub in t.fields.items():
                walk(sub, v.fields[name] if v is not None else None)
        elif isinstance(t, ty.OptionType):
            bits.append(v.has if v is not None else None)
            walk(t.element, v.val if v is not None else None)
        elif isinstance(t, ty.ListType):
            cells = v.cells if v is not None else []
            for i in range(max_list_length):
                if i < len(cells):
                    guard, element = cells[i]
                    bits.append(guard)
                    walk(t.element, element)
                else:
                    bits.append(None)
                    walk(t.element, None)
        elif isinstance(t, ty.MapType):
            walk(t.adapted(), v.backing if v is not None else None)
        else:
            raise ZenTypeError(f"cannot size type {t}")

    walk(zen_type, value)
    return bits


def _positional_offset(
    input_type: ty.ZenType, output_type: ty.ZenType
) -> Optional[int]:
    """Slot offset aligning output bits with same-position input bits.

    Defined when the output type is the input type, optionally wrapped
    in (or unwrapped from) an Option — the common shapes of packet
    processing functions.  Output slot j then corresponds to input
    slot ``j - offset``.
    """
    if output_type == input_type:
        return 0
    if (
        isinstance(output_type, ty.OptionType)
        and output_type.element == input_type
    ):
        return 1
    if (
        isinstance(input_type, ty.OptionType)
        and input_type.element == output_type
    ):
        return -1
    return None


def plan_transformer_order(
    function, max_list_length: int
) -> Tuple[List[int], List[int]]:
    """The ordering analysis of §6 ("similar to alias analyses").

    Probes the function once over a throwaway SAT (AIG) backend to
    learn, for every output bit, which input variables it depends on.
    Each output bit is then placed immediately after its *anchor*: the
    most specific input in its support — the one appearing in the
    fewest other outputs.  Inputs feeding shared branch conditions
    appear in nearly every output's support, so they never win the
    anchor choice; the bit an output actually copies does.  This keeps
    relations banded (near-linear) even when the function copies
    fields between structurally distant positions (e.g. tunnel
    encapsulation copying overlay ports into a new underlay header),
    while shared conditions cost only a small constant factor.

    Returns (input slot offsets, output slot offsets) within the
    transformer's variable block, both in allocation order.
    """
    input_type = function.arg_types[0]
    output_type = function.return_type
    probe_engine = SatBackend()
    recorder = _RecordingBackend(probe_engine)
    in_probe = sv.fresh(
        recorder, input_type, "probe", max_list_length
    )
    evaluator = SymbolicEvaluator(
        probe_engine, max_list_length=max_list_length
    )
    evaluator.bind("arg0", in_probe)
    out_probe = evaluator.evaluate(function.body.expr)
    position = {lit: k for k, lit in enumerate(recorder.order)}
    out_bits = _aligned_probe_bits(output_type, out_probe, max_list_length)

    w_in = len(recorder.order)
    supports: List[List[int]] = []
    frequency = [0] * w_in
    for bit in out_bits:
        if bit is None or probe_engine.is_true(bit) or probe_engine.is_false(bit):
            supports.append([])
            continue
        support = [
            position[lit]
            for lit in probe_engine.aig.support([bit])
            if lit in position
        ]
        supports.append(support)
        for index in support:
            frequency[index] += 1

    # Inputs appearing in most outputs feed shared branch conditions;
    # they are poor anchors even when they are also copied data (a
    # bit can be both, e.g. a destination IP that is matched by the
    # FIB *and* copied through).  Anchor on the most specific
    # non-condition input; outputs with none fall back to structural
    # position (the type-driven pairwise interleaving), which pairs
    # pass-through fields correctly.
    populated = sum(1 for s in supports if s)
    threshold = max(2, populated // 2)
    common = {i for i, f in enumerate(frequency) if f >= threshold}
    offset = _positional_offset(input_type, output_type)

    anchors: List[int] = []
    for j, support in enumerate(supports):
        specific = [i for i in support if i not in common]
        if specific:
            anchors.append(max(specific))
        elif (
            support
            and offset is not None
            and 0 <= j - offset < w_in
            and (j - offset) in support
        ):
            anchors.append(j - offset)
        elif support:
            anchors.append(min(support, key=lambda i: (frequency[i], -i)))
        else:
            anchors.append(-1)

    # Lay out slots: condition-only/constant outputs first, then each
    # input followed by the output bits anchored to it.
    outputs_at: Dict[int, List[int]] = {}
    for j, anchor in enumerate(anchors):
        outputs_at.setdefault(anchor, []).append(j)
    in_slots = [0] * w_in
    out_slots = [0] * len(out_bits)
    cursor = 0
    for j in outputs_at.get(-1, []):
        out_slots[j] = cursor
        cursor += 1
    for i in range(w_in):
        in_slots[i] = cursor
        cursor += 1
        for j in outputs_at.get(i, []):
            out_slots[j] = cursor
            cursor += 1
    return in_slots, out_slots


class TypeSpace:
    """The canonical variable block for one Zen type (for state sets)."""

    def __init__(
        self,
        zen_type: ty.ZenType,
        value: sv.SymValue,
        levels: List[int],
    ):
        self.zen_type = zen_type
        self.value = value
        self.levels = levels


class TransformerContext:
    """Shared BDD manager, canonical type spaces, and transformer blocks.

    Sets and transformers only compose within one context.  A default
    module-level context is used when none is supplied.
    """

    def __init__(self, max_list_length: int = DEFAULT_MAX_LIST_LENGTH):
        self.backend = BddBackend()
        self.max_list_length = max_list_length
        self._spaces: Dict[ty.ZenType, TypeSpace] = {}
        # First-seen relation layout per (input, output) type pair;
        # used to express relations in comparable variables.
        self._relation_spaces: Dict[
            Tuple[ty.ZenType, ty.ZenType], Tuple[List[int], List[int]]
        ] = {}

    @property
    def manager(self) -> Bdd:
        """The shared BDD manager."""
        return self.backend.manager

    def space(self, zen_type: ty.ZenType) -> TypeSpace:
        """Get or create the canonical variable block for a type."""
        existing = self._spaces.get(zen_type)
        if existing is not None:
            return existing
        manager = self.manager
        width = bit_width(zen_type, self.max_list_length)
        base = manager.num_vars
        manager.new_vars(width)
        levels = list(range(base, base + width))
        value = sv.fresh(
            _SequenceBackend(self.backend, levels),
            zen_type,
            "set",
            self.max_list_length,
        )
        space = TypeSpace(zen_type, value, levels)
        self._spaces[zen_type] = space
        return space

    def allocate_relation_block(
        self, in_width: int, out_width: int
    ) -> Tuple[List[int], List[int]]:
        """A fresh block with input/output levels interleaved bitwise."""
        manager = self.manager
        base = manager.num_vars
        manager.new_vars(in_width + out_width)
        in_levels: List[int] = []
        out_levels: List[int] = []
        cursor = base
        for i in range(max(in_width, out_width)):
            if i < in_width:
                in_levels.append(cursor)
                cursor += 1
            if i < out_width:
                out_levels.append(cursor)
                cursor += 1
        return in_levels, out_levels

    # ------------------------------------------------------------------
    # Set constructors
    # ------------------------------------------------------------------

    def empty_set(self, annotation: Any) -> "StateSet":
        """The empty set of a type."""
        zen_type = ty.from_annotation(annotation)
        self.space(zen_type)
        return StateSet(self, zen_type, 0)

    def universe(self, annotation: Any) -> "StateSet":
        """The set of all values of a type."""
        zen_type = ty.from_annotation(annotation)
        self.space(zen_type)
        return StateSet(self, zen_type, 1)

    def singleton(self, annotation: Any, value: Any) -> "StateSet":
        """The set containing exactly one concrete value."""
        zen_type = ty.from_annotation(annotation)
        space = self.space(zen_type)
        encoded = sv.from_constant(self.backend, zen_type, value)
        node = sv.equal(self.backend, space.value, encoded)
        return StateSet(self, zen_type, node)

    def from_predicate(self, function, budget=None) -> "StateSet":
        """The set of inputs on which a boolean ZenFunction is true."""
        from .function import ZenFunction

        if not isinstance(function, ZenFunction):
            raise ZenTypeError("from_predicate expects a ZenFunction")
        if len(function.arg_types) != 1:
            raise ZenArityError("set predicates must be unary")
        if not isinstance(function.return_type, ty.BoolType):
            raise ZenTypeError("set predicates must return bool")
        zen_type = function.arg_types[0]
        space = self.space(zen_type)
        with span("stateset.from_predicate", function=function.name), metered(
            self.manager, budget
        ):
            evaluator = SymbolicEvaluator(
                self.backend, max_list_length=self.max_list_length
            )
            evaluator.bind("arg0", space.value)
            result = evaluator.evaluate(function.body.expr)
        assert isinstance(result, sv.SymBool)
        return StateSet(self, zen_type, result.bit)


class StateSet:
    """A set of Zen values of one type, represented as a BDD.

    The BDD ranges over the type's canonical variable block, so sets
    from different transformers combine freely.
    """

    def __init__(
        self, context: TransformerContext, zen_type: ty.ZenType, node: int
    ):
        self.context = context
        self.zen_type = zen_type
        self.node = node

    # -- algebra ---------------------------------------------------------

    def _check_same(self, other: "StateSet") -> None:
        if other.context is not self.context:
            raise ZenTypeError("state sets belong to different contexts")
        if other.zen_type != self.zen_type:
            raise ZenTypeError(
                f"state sets have different types: {self.zen_type} vs "
                f"{other.zen_type}"
            )

    def union(self, other: "StateSet") -> "StateSet":
        """Set union."""
        self._check_same(other)
        manager = self.context.manager
        return StateSet(
            self.context, self.zen_type, manager.or_(self.node, other.node)
        )

    def intersect(self, other: "StateSet") -> "StateSet":
        """Set intersection."""
        self._check_same(other)
        manager = self.context.manager
        return StateSet(
            self.context, self.zen_type, manager.and_(self.node, other.node)
        )

    def difference(self, other: "StateSet") -> "StateSet":
        """Set difference."""
        self._check_same(other)
        manager = self.context.manager
        return StateSet(
            self.context, self.zen_type, manager.diff(self.node, other.node)
        )

    def complement(self) -> "StateSet":
        """Complement within the type's universe."""
        manager = self.context.manager
        return StateSet(self.context, self.zen_type, manager.not_(self.node))

    __or__ = union
    __and__ = intersect
    __sub__ = difference

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        """Whether the set is empty."""
        return self.node == 0

    def is_universe(self) -> bool:
        """Whether the set contains every value of the type."""
        return self.node == 1

    def equals(self, other: "StateSet") -> bool:
        """Semantic set equality (canonical BDDs make this O(1))."""
        self._check_same(other)
        return self.node == other.node

    def contains(self, value: Any) -> bool:
        """Membership test for a concrete value."""
        space = self.context.space(self.zen_type)
        encoded = sv.from_constant(self.context.backend, self.zen_type, value)
        point = sv.equal(self.context.backend, space.value, encoded)
        return self.context.manager.and_(point, self.node) != 0

    def element(self) -> Optional[Any]:
        """Some element of the set, or None when empty."""
        manager = self.context.manager
        assignment = manager.any_sat(self.node)
        if assignment is None:
            return None
        space = self.context.space(self.zen_type)
        model = BddModel(manager, assignment)
        return sv.decode(model, space.value)

    def count(self) -> int:
        """Number of distinct variable assignments in the set.

        Counted over the type's canonical block.  Note that list and
        option padding bits mean several assignments can denote the
        same abstract value.
        """
        space = self.context.space(self.zen_type)
        manager = self.context.manager
        level_set = set(space.levels)
        foreign = [
            v for v in manager.support(self.node) if v not in level_set
        ]
        if foreign:
            raise ZenTypeError("state set depends on foreign variables")
        full = manager.sat_count(self.node)
        return full >> (manager.num_vars - len(space.levels))


class StateSetTransformer:
    """The relational view of a unary Zen function (``f.Transformer()``).

    Owns a private interleaved variable block; see the module
    docstring for the layout rationale.
    """

    def __init__(
        self,
        context: TransformerContext,
        input_type: ty.ZenType,
        output_type: ty.ZenType,
        relation: int,
        in_levels: List[int],
        out_levels: List[int],
    ):
        self.context = context
        self.input_type = input_type
        self.output_type = output_type
        self.relation = relation
        self.in_levels = in_levels
        self.out_levels = out_levels

    @classmethod
    def build(
        cls,
        function,
        context: Optional[TransformerContext] = None,
        budget=None,
    ):
        """Compile a unary ZenFunction into a transformer.

        `budget` bounds the BDD work of building the relation (the
        expensive step for adversarial models); exhaustion raises
        :class:`~repro.errors.ZenBudgetExceeded` and leaves the
        context's manager consistent (kernels publish only completed
        results).
        """
        from .function import ZenFunction

        if not isinstance(function, ZenFunction):
            raise ZenTypeError("transformer expects a ZenFunction")
        if len(function.arg_types) != 1:
            raise ZenArityError(
                "transformers require unary functions; tuple the arguments"
            )
        if context is None:
            context = default_context()
        input_type = function.arg_types[0]
        output_type = function.return_type
        # Canonical spaces exist for both endpoint types (sets live there).
        context.space(input_type)
        context.space(output_type)
        # Ordering analysis: place each output variable right after the
        # input variable it most deeply depends on.
        in_slots, out_slots = plan_transformer_order(
            function, context.max_list_length
        )
        manager = context.manager
        base = manager.num_vars
        manager.new_vars(len(in_slots) + len(out_slots))
        in_levels = [base + s for s in in_slots]
        out_levels = [base + s for s in out_slots]
        with span("transformer.build", function=function.name), metered(
            manager, budget
        ):
            in_value = sv.fresh(
                _SequenceBackend(context.backend, in_levels),
                input_type,
                "t-in",
                context.max_list_length,
            )
            out_value = sv.fresh(
                _SequenceBackend(context.backend, out_levels),
                output_type,
                "t-out",
                context.max_list_length,
            )
            evaluator = SymbolicEvaluator(
                context.backend, max_list_length=context.max_list_length
            )
            evaluator.bind("arg0", in_value)
            result = evaluator.evaluate(function.body.expr)
            relation = sv.equal(context.backend, out_value, result)
        return cls(
            context, input_type, output_type, relation, in_levels, out_levels
        )

    # ------------------------------------------------------------------

    def transform_forward(self, input_set: StateSet, budget=None) -> StateSet:
        """Post-image: the set of outputs for the given inputs."""
        if input_set.zen_type != self.input_type:
            raise ZenTypeError(
                f"transformer consumes {self.input_type}, got "
                f"{input_set.zen_type}"
            )
        manager = self.context.manager
        in_space = self.context.space(self.input_type)
        out_space = self.context.space(self.output_type)
        with span("transformer.forward"), metered(manager, budget):
            # Canonical -> private input variables (runtime substitution).
            shifted = manager.rename(
                input_set.node, dict(zip(in_space.levels, self.in_levels))
            )
            # Fused relational product: never materializes the full
            # conjunction of the input set with the relation.
            image = manager.and_exists(shifted, self.relation, self.in_levels)
            # Private output variables -> canonical.  Output levels are not
            # ascending in allocation order (the ordering analysis scatters
            # them), so this needs the general permute.
            result = manager.permute(
                image, dict(zip(self.out_levels, out_space.levels))
            )
        return StateSet(self.context, self.output_type, result)

    def transform_reverse(self, output_set: StateSet, budget=None) -> StateSet:
        """Pre-image: the set of inputs mapping into the output set."""
        if output_set.zen_type != self.output_type:
            raise ZenTypeError(
                f"transformer produces {self.output_type}, got "
                f"{output_set.zen_type}"
            )
        manager = self.context.manager
        in_space = self.context.space(self.input_type)
        out_space = self.context.space(self.output_type)
        with span("transformer.reverse"), metered(manager, budget):
            shifted = manager.permute(
                output_set.node, dict(zip(out_space.levels, self.out_levels))
            )
            pre = manager.and_exists(shifted, self.relation, self.out_levels)
            result = manager.rename(
                pre, dict(zip(self.in_levels, in_space.levels))
            )
        return StateSet(self.context, self.input_type, result)

    def canonical_relation(self) -> int:
        """The relation expressed over canonical per-type-pair variables.

        Transformers own private variable blocks, so two relations are
        only comparable after moving them into a shared layout; the
        first transformer built for a (input, output) type pair donates
        its layout.  Because BDDs are canonical, equality of the
        returned nodes is semantic equivalence of the functions (up to
        the list-length bound) — the basis of Bonsai-style compression.
        """
        key = (self.input_type, self.output_type)
        registered = self.context._relation_spaces.get(key)
        if registered is None:
            self.context._relation_spaces[key] = (
                list(self.in_levels),
                list(self.out_levels),
            )
            return self.relation
        reg_in, reg_out = registered
        mapping = dict(zip(self.in_levels, reg_in))
        mapping.update(zip(self.out_levels, reg_out))
        mapping = {a: b for a, b in mapping.items() if a != b}
        return self.context.manager.permute(self.relation, mapping)

    def compose(
        self, other: "StateSetTransformer", budget=None
    ) -> "StateSetTransformer":
        """Relational composition: first self, then `other`."""
        if other.context is not self.context:
            raise ZenTypeError("transformers belong to different contexts")
        if other.input_type != self.output_type:
            raise ZenTypeError(
                f"cannot compose {self.output_type} -> into "
                f"{other.input_type}"
            )
        manager = self.context.manager
        # Move the middle value onto a fresh auxiliary block so the
        # composition is correct even when self and other share
        # variables (e.g. composing a transformer with itself).
        base = manager.num_vars
        manager.new_vars(len(self.out_levels))
        aux_levels = list(range(base, base + len(self.out_levels)))
        with span("transformer.compose"), metered(manager, budget):
            left = manager.permute(
                self.relation, dict(zip(self.out_levels, aux_levels))
            )
            right = manager.permute(
                other.relation, dict(zip(other.in_levels, aux_levels))
            )
            composed = manager.and_exists(left, right, aux_levels)
        return StateSetTransformer(
            self.context,
            self.input_type,
            other.output_type,
            composed,
            self.in_levels,
            other.out_levels,
        )


_DEFAULT_CONTEXT: Optional[TransformerContext] = None


def default_context() -> TransformerContext:
    """The process-wide default transformer context."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = TransformerContext()
    return _DEFAULT_CONTEXT


def reset_default_context(max_list_length: int = DEFAULT_MAX_LIST_LENGTH):
    """Replace the default context (mainly for tests and benchmarks)."""
    global _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = TransformerContext(max_list_length=max_list_length)
    return _DEFAULT_CONTEXT
