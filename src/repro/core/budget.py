"""Resource governance for solver queries: budgets and fallbacks.

The paper's pitch is that one model compiles to *multiple* solver
backends; this module makes those backends safe to run against
pathological inputs.  A :class:`Budget` bounds a query along four
axes — wall clock, SAT conflicts, BDD node allocations, and model
count — and is enforced by cooperative checkpoints inside the CDCL
search loop and the BDD kernels.  Exhaustion raises
:class:`~repro.errors.ZenBudgetExceeded` carrying partial statistics,
and :func:`solve_with_fallback` turns that structured failure into a
portfolio: try the preferred backend, fall back to the other backend
or a coarser list-length bound, and report which path answered.

Design notes
------------
* A :class:`Budget` is immutable configuration; :meth:`Budget.start`
  stamps the wall clock and returns a mutable :class:`BudgetMeter`
  that the engines charge against.  One meter spans one attempt; the
  fallback runner starts a fresh meter per rung so the deadline is
  per-attempt (total wall time is bounded by rungs x deadline).
* Engines never import this module (avoiding an import cycle through
  the package roots); they duck-type against the meter's ``tick`` /
  ``on_conflict`` / ``on_model`` methods.  Checkpoints are amortized:
  the BDD kernels tick every 1024 work-stack iterations, the SAT
  solver on every conflict and every 256 decisions, so a tripped
  deadline surfaces well within 2x the configured value.
* Aborting is safe by construction: the SAT solver unwinds through
  the ``finally: self._cancel_until(0)`` in ``solve`` and stays
  usable; BDD kernels only publish *completed* results to their
  caches, so an abort mid-kernel leaves the manager consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..errors import ZenBudgetExceeded, ZenTypeError
from ..telemetry.profile import QueryProfile
from ..telemetry.spans import TRACER

__all__ = [
    "Budget",
    "BudgetMeter",
    "QueryResult",
    "RungFailure",
    "start_meter",
    "metered",
    "solve_with_fallback",
]


@dataclass(frozen=True)
class Budget:
    """Resource limits for one solver query (immutable configuration).

    Any subset of the limits may be set; ``None`` means unlimited.

    * ``deadline_s``     — wall-clock seconds per attempt;
    * ``max_conflicts``  — CDCL conflicts (SAT backend);
    * ``max_bdd_nodes``  — cumulative BDD node allocations (the
      manager's unique table is append-only, so this caps total
      allocation, the quantity that actually exhausts memory);
    * ``max_models``     — models produced by enumeration queries.
    """

    deadline_s: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_bdd_nodes: Optional[int] = None
    max_models: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("deadline_s", "max_conflicts", "max_bdd_nodes", "max_models"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ZenTypeError(f"Budget.{name} must be a number, got {value!r}")
            if value < 0:
                raise ZenTypeError(f"Budget.{name} must be non-negative, got {value!r}")

    def is_unlimited(self) -> bool:
        """True when no limit is configured."""
        return (
            self.deadline_s is None
            and self.max_conflicts is None
            and self.max_bdd_nodes is None
            and self.max_models is None
        )

    def start(self, clock: Callable[[], float] = time.monotonic) -> "BudgetMeter":
        """Stamp the clock and return a fresh meter for one attempt."""
        return BudgetMeter(self, clock=clock)


class BudgetMeter:
    """Mutable per-attempt state charged against a :class:`Budget`.

    Engines call the cheap hooks (:meth:`on_conflict`, :meth:`tick`,
    :meth:`on_model`) from their inner loops; each hook raises
    :class:`ZenBudgetExceeded` the moment its limit trips.
    """

    __slots__ = (
        "budget",
        "_clock",
        "_started",
        "_deadline_at",
        "conflicts",
        "models",
        "bdd_nodes",
        "_decision_ticks",
    )

    def __init__(self, budget: Budget, clock: Callable[[], float] = time.monotonic):
        if not isinstance(budget, Budget):
            raise ZenTypeError(f"expected a Budget, got {budget!r}")
        self.budget = budget
        self._clock = clock
        self._started = clock()
        self._deadline_at = (
            None
            if budget.deadline_s is None
            else self._started + budget.deadline_s
        )
        self.conflicts = 0
        self.models = 0
        self.bdd_nodes = 0
        self._decision_ticks = 0

    # -- queries ---------------------------------------------------------

    def elapsed(self) -> float:
        """Wall-clock seconds since the meter was started."""
        return self._clock() - self._started

    def stats(self) -> Dict[str, Any]:
        """Partial statistics snapshot (attached to exceptions)."""
        return {
            "elapsed_s": round(self.elapsed(), 6),
            "conflicts": self.conflicts,
            "bdd_nodes": self.bdd_nodes,
            "models": self.models,
        }

    def _exceeded(self, reason: str) -> None:
        raise ZenBudgetExceeded(
            f"query budget exceeded ({reason}): {self.stats()}",
            reason=reason,
            budget=self.budget,
            stats=self.stats(),
        )

    def snapshot(self) -> Dict[str, Any]:
        """Flat numeric counter snapshot (shared counter protocol)."""
        return self.stats()

    def reset_counters(self) -> None:
        """Zero the consumption counters (the clock keeps running)."""
        self.conflicts = 0
        self.models = 0
        self.bdd_nodes = 0
        self._decision_ticks = 0

    def check_deadline(self) -> None:
        """Raise if the wall-clock deadline has passed."""
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            self._exceeded("deadline")

    # -- engine hooks ----------------------------------------------------

    def on_conflict(self) -> None:
        """One CDCL conflict: charge it and re-check the deadline.

        Conflicts are expensive (analysis + backjump), so a clock read
        per conflict is in the noise and keeps deadline overshoot to
        a single conflict's worth of work.
        """
        self.conflicts += 1
        cap = self.budget.max_conflicts
        if cap is not None and self.conflicts > cap:
            self._exceeded("conflicts")
        self.check_deadline()

    def on_decision(self) -> None:
        """Amortized checkpoint for conflict-free search phases."""
        self._decision_ticks += 1
        if not (self._decision_ticks & 255):
            self.check_deadline()

    def tick(self, bdd_nodes: Optional[int] = None) -> None:
        """Cooperative checkpoint from a BDD kernel or driver loop.

        ``bdd_nodes`` is the manager's current allocation count; the
        kernels call this every 1024 work-stack iterations, bounding
        both overshoot past ``max_bdd_nodes`` and deadline latency.
        """
        if bdd_nodes is not None:
            if bdd_nodes > self.bdd_nodes:
                self.bdd_nodes = bdd_nodes
            cap = self.budget.max_bdd_nodes
            if cap is not None and bdd_nodes > cap:
                self._exceeded("bdd_nodes")
        self.check_deadline()

    def on_model(self) -> None:
        """One model produced by an enumeration query."""
        self.models += 1
        cap = self.budget.max_models
        if cap is not None and self.models > cap:
            self._exceeded("models")
        self.check_deadline()


def start_meter(budget: Any) -> Optional[BudgetMeter]:
    """Normalize ``None`` / :class:`Budget` / :class:`BudgetMeter`.

    The public query APIs accept either a budget (fresh meter per
    call) or an already-running meter (shared accounting across
    several calls, e.g. a model-checking fixpoint).
    """
    if budget is None:
        return None
    if isinstance(budget, BudgetMeter):
        return budget
    if isinstance(budget, Budget):
        return budget.start()
    raise ZenTypeError(
        f"expected a Budget, BudgetMeter, or None, got {budget!r}"
    )


class metered:
    """Context manager installing a meter on a BDD manager.

    Saves and restores the manager's previous budget, so metered
    operations nest and an abort never leaves a stale meter behind::

        with metered(context.manager, budget) as meter:
            ...  # manager kernels checkpoint against `meter`
    """

    def __init__(self, manager, budget: Any):
        self._manager = manager
        self._meter = start_meter(budget)
        self._previous = None

    def __enter__(self) -> Optional[BudgetMeter]:
        if self._meter is not None:
            self._previous = self._manager.budget
            self._manager.set_budget(self._meter)
        return self._meter

    def __exit__(self, *exc_info) -> None:
        if self._meter is not None:
            self._manager.set_budget(self._previous)


@dataclass(frozen=True)
class RungFailure:
    """A structured record of one abandoned rung of the fallback ladder.

    Retry and circuit-breaker policies need to distinguish *budget
    exhaustion* (try again with more resources, or shed load) from
    *genuine solver errors* (a broken encoding that no retry will fix),
    so each abandoned rung records the exception type and message, not
    just where it happened:

    * ``backend`` / ``max_list_length`` — the rung that was tried;
    * ``error_type`` — the exception class name
      (e.g. ``"ZenBudgetExceeded"``);
    * ``message`` — ``str(exception)``;
    * ``reason``  — the structured budget reason (``"deadline"``,
      ``"conflicts"``, ...) when the error carries one, else ``""``.
    """

    backend: str
    max_list_length: int
    error_type: str
    message: str
    reason: str = ""


@dataclass(frozen=True)
class QueryResult:
    """The structured answer of :func:`solve_with_fallback`.

    * ``answer``       — what ``find`` returned (``None`` = verified /
      no such input);
    * ``backend``      — name of the backend that answered;
    * ``max_list_length`` — the list bound the answering rung used;
    * ``stats``        — the answering attempt's meter statistics;
    * ``degradations`` — human-readable record of every rung that was
      abandoned before the answer (empty when the preferred
      configuration answered directly);
    * ``failures``     — the same abandoned rungs as structured
      :class:`RungFailure` records (exception type, message, reason);
    * ``profile``      — a :class:`~repro.telemetry.QueryProfile` of
      the answering rung when tracing was enabled, else ``None``.
    """

    answer: Any
    backend: str
    max_list_length: int
    stats: Dict[str, Any] = field(default_factory=dict)
    degradations: Tuple[str, ...] = ()
    failures: Tuple[RungFailure, ...] = ()
    profile: Optional[QueryProfile] = None

    @property
    def degraded(self) -> bool:
        """True when the preferred configuration did not answer."""
        return bool(self.degradations)


def _backend_name(backend: Any) -> str:
    if isinstance(backend, str):
        return backend
    name = getattr(backend, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(backend).__name__.replace("Backend", "").lower()


def solve_with_fallback(
    function,
    predicate=None,
    *,
    backends: Sequence[Any] = ("sat", "bdd"),
    budget: Optional[Budget] = None,
    max_list_length: Optional[int] = None,
    degrade_list_lengths: Sequence[int] = (),
    validate: bool = True,
) -> QueryResult:
    """Portfolio ``find``: degrade gracefully across backends/bounds.

    Runs ``function.find(predicate, ...)`` down a ladder of rungs:
    each backend in ``backends`` at the full ``max_list_length``, then
    each coarser bound in ``degrade_list_lengths`` across the backends
    again.  Every rung runs under a fresh meter of the same `budget`;
    a rung that raises :class:`ZenBudgetExceeded` is recorded as a
    degradation and the next rung is tried.  The first rung to answer
    wins and its :class:`QueryResult` reports the path taken.

    Raises the final rung's :class:`ZenBudgetExceeded` (annotated with
    the attempted degradations) when the whole ladder is exhausted.
    Non-budget errors propagate immediately: a broken model should
    fail loudly, not silently fall through the portfolio.
    """
    from .function import DEFAULT_MAX_LIST_LENGTH

    if not backends:
        raise ZenTypeError("solve_with_fallback needs at least one backend")
    full = DEFAULT_MAX_LIST_LENGTH if max_list_length is None else max_list_length
    rungs = [(b, full) for b in backends]
    for depth in degrade_list_lengths:
        if depth >= full:
            raise ZenTypeError(
                f"degrade_list_lengths must be coarser than {full}, got {depth}"
            )
        rungs.extend((b, depth) for b in backends)

    degradations: list = []
    failures: list = []
    last_error: Optional[ZenBudgetExceeded] = None
    for backend, depth in rungs:
        meter = start_meter(budget)
        rung_span = None
        if TRACER.enabled:
            rung_span = TRACER.begin(
                "fallback.rung",
                {"backend": _backend_name(backend), "max_list_length": depth},
            )
        try:
            answer = function.find(
                predicate,
                backend=backend,
                max_list_length=depth,
                budget=meter,
                validate=validate,
            )
        except ZenBudgetExceeded as error:
            name = _backend_name(backend)
            if rung_span is not None:
                rung_span.attrs["outcome"] = f"budget_exceeded:{error.reason}"
                TRACER.finish(rung_span)
            degradations.append(
                f"{name}@list<={depth}: budget exceeded "
                f"({error.reason}): {type(error).__name__}: {error}"
            )
            failures.append(
                RungFailure(
                    backend=name,
                    max_list_length=depth,
                    error_type=type(error).__name__,
                    message=str(error),
                    reason=error.reason,
                )
            )
            last_error = error
            continue
        profile = None
        if rung_span is not None:
            rung_span.attrs["outcome"] = "answered"
            TRACER.finish(rung_span)
            from ..telemetry.profile import profile_from_spans

            profile = profile_from_spans(
                [rung_span],
                query="query.fallback",
                backend=_backend_name(backend),
                counters=meter.stats() if meter is not None else None,
            )
        return QueryResult(
            answer=answer,
            backend=_backend_name(backend),
            max_list_length=depth,
            stats=meter.stats() if meter is not None else {},
            degradations=tuple(degradations),
            failures=tuple(failures),
            profile=profile,
        )
    assert last_error is not None
    last_error.degradations = tuple(degradations)
    last_error.failures = tuple(failures)
    raise last_error
