"""Hierarchical trace spans: where did this query's time go?

The paper's pitch — one compositional model served by multiple solver
backends — makes per-query attribution a first-class question: Zen's
authors tune backends per workload (Fig. 10), and that tuning needs a
timeline, not a pile of per-silo counters.  A :class:`Span` is one
named, timed region with structured attributes; spans nest, forming a
tree per top-level operation; a :class:`Tracer` owns the live span
stack (per thread) and the finished roots.

Design notes
------------
* **Near-zero cost when disabled.**  ``Tracer.enabled`` is a plain
  attribute; instrumented hot paths guard on it with one attribute
  read and branch.  :meth:`Tracer.span` returns a shared no-op
  context manager when disabled — no Span allocation, no clock read.
* **Monotonic timings, wall-clock placement.**  Durations come from
  ``perf_counter`` (immune to clock steps); each span also records a
  wall-clock start (epoch seconds, derived from per-process anchors
  stamped at ``enable()``), which is what lets span trees from
  *different processes* merge into one timeline: every process anchors
  against the same system clock.
* **Thread safety.**  The live span stack is ``threading.local`` (two
  threads tracing concurrently build independent trees); the finished
  roots list is guarded by a lock.
* **Cross-process propagation.**  A finished span tree serializes to
  plain dicts (:meth:`Span.to_dict`) that survive a pickle over the
  query service's result pipe; the parent grafts them back with
  :meth:`Tracer.adopt`, preserving the worker's pid so exporters can
  render each process as its own track.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter, time as wall_time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]


class Span:
    """One named, timed region with attributes and child spans.

    ``start`` is wall-clock epoch seconds (cross-process comparable);
    ``duration_s`` is measured with the monotonic performance counter.
    A span is *open* until :meth:`Tracer.finish` (or the ``with``
    block) closes it; only closed spans should be exported.
    """

    __slots__ = (
        "name",
        "start",
        "duration_s",
        "attrs",
        "children",
        "pid",
        "tid",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        start: float,
        pid: int,
        tid: int,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.start = start
        self.duration_s = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.pid = pid
        self.tid = tid
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one structured attribute."""
        self.attrs[key] = value
        return self

    @property
    def end(self) -> float:
        """Wall-clock end time (epoch seconds)."""
        return self.start + self.duration_s

    def walk(self) -> Iterator["Span"]:
        """Iterate this span and every descendant, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict serialization (picklable, JSON-able)."""
        return {
            "name": self.name,
            "start": self.start,
            "dur": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a (closed) span tree from :meth:`to_dict` output."""
        root = cls(
            str(data.get("name", "")),
            float(data.get("start", 0.0)),
            int(data.get("pid", 0)),
            int(data.get("tid", 0)),
            data.get("attrs") or {},
        )
        root.duration_s = float(data.get("dur", 0.0))
        root.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return root

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration_s * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span/context-manager for disabled tracers.

    Enters to itself so ``with span(...) as sp: sp.set(...)`` works
    identically whether tracing is on or off; ``set`` discards.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _SpanHandle:
    """Context manager binding one live span to a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", live: Span):
        self._tracer = tracer
        self._span = live

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc_value, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Owns live span stacks (per thread) and finished root spans.

    One process-wide instance (:data:`TRACER`) is what the library's
    instrumentation points consult; tests may build private tracers.
    """

    def __init__(self, enabled: bool = False):
        #: Plain attribute on purpose: the hot-path guard is a single
        #: attribute read, not a property call.
        self.enabled = False
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._wall_anchor = 0.0
        self._mono_anchor = 0.0
        if enabled:
            self.enable()

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        """Turn tracing on (stamps fresh clock anchors)."""
        self._wall_anchor = wall_time()
        self._mono_anchor = perf_counter()
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off (finished roots are kept until reset)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all finished roots and any live per-thread stack."""
        with self._lock:
            self._roots = []
        self._local = threading.local()

    def hard_reset(self) -> None:
        """Disable and drop everything (e.g. in a freshly forked child).

        A forked worker inherits the parent's enabled flag and the
        forking thread's live span stack; neither belongs to the
        child's own timeline.
        """
        self.disable()
        self.reset()

    # -- clock -----------------------------------------------------------

    def now_wall(self) -> float:
        """Current time on the trace's wall clock (epoch seconds)."""
        return self._wall_anchor + (perf_counter() - self._mono_anchor)

    def _now_wall(self) -> float:
        return self.now_wall()

    def wall_from_monotonic(self, mono: float) -> float:
        """Map a ``time.monotonic``/``perf_counter`` reading to epoch.

        Valid for readings taken after :meth:`enable`; used to place
        retroactively recorded spans (e.g. scheduler attempts timed
        with an injected clock) on the shared timeline.
        """
        return self._wall_anchor + (mono - self._mono_anchor)

    # -- span stack ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span (low-level; prefer :meth:`span`).

        The caller must pass the returned span to :meth:`finish`.
        """
        live = Span(
            name,
            self._now_wall(),
            os.getpid(),
            threading.get_ident(),
            attrs,
        )
        live._t0 = perf_counter()
        self._stack().append(live)
        return live

    def finish(self, live: Span) -> Span:
        """Close a span opened with :meth:`begin` and file it."""
        live.duration_s = perf_counter() - live._t0
        stack = self._stack()
        # Pop through abandoned inner spans (an exception may have
        # skipped their finish); attribute their time to the tree
        # rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is live:
                break
            top.duration_s = perf_counter() - top._t0
            top.attrs.setdefault("abandoned", True)
            # Keep the abandoned span in the tree, under whatever is
            # still open beneath it (ultimately `live` itself).
            holder = stack[-1] if stack else live
            holder.children.append(top)
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(live)
        else:
            with self._lock:
                self._roots.append(live)
        return live

    def span(self, name: str, **attrs: Any):
        """Context manager for one traced region::

            with TRACER.span("compile", backend="sat") as sp:
                ...
                sp.set("bits", n)

        Returns a shared no-op object when tracing is disabled, so the
        guard costs one attribute read and no allocation beyond the
        call itself.
        """
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, self.begin(name, attrs))

    # -- recording & adoption -------------------------------------------

    def record(
        self,
        name: str,
        start_wall: float,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
        children: Optional[List[Span]] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """File an already-measured span (retroactive instrumentation).

        Used by schedulers that time work with their own clock and
        only afterwards know the outcome to annotate.  The span is
        attached to ``parent`` when given (e.g. a dispatcher thread
        filing under the submitting thread's open span), else to the
        current open span on this thread, else becomes a root.
        """
        done = Span(
            name, start_wall, os.getpid(), threading.get_ident(), attrs
        )
        done.duration_s = max(0.0, duration_s)
        if children:
            done.children.extend(children)
        target = parent if parent is not None else self.current()
        if target is not None:
            target.children.append(done)
        else:
            with self._lock:
                self._roots.append(done)
        return done

    def adopt(
        self, tree: Dict[str, Any], parent: Optional[Span] = None
    ) -> Span:
        """Graft a serialized foreign span tree into this trace.

        The foreign spans keep their own pid/tid (a worker subprocess
        renders as its own track in the merged timeline).  Attached to
        ``parent`` when given, else to the current open span, else
        filed as a root.
        """
        foreign = Span.from_dict(tree)
        target = parent if parent is not None else self.current()
        if target is not None:
            target.children.append(foreign)
        else:
            with self._lock:
                self._roots.append(foreign)
        return foreign

    # -- results ---------------------------------------------------------

    def finished_roots(self) -> List[Span]:
        """Snapshot of the completed top-level spans, oldest first."""
        with self._lock:
            return list(self._roots)


#: The process-wide tracer every instrumentation point consults.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """Module-level shorthand for ``TRACER.span(name, **attrs)``."""
    if not TRACER.enabled:
        return _NOOP
    return TRACER.span(name, **attrs)


def enable_tracing() -> Tracer:
    """Enable the process-wide tracer and return it."""
    TRACER.enable()
    return TRACER


def disable_tracing() -> None:
    """Disable the process-wide tracer (finished spans are kept)."""
    TRACER.disable()


def tracing_enabled() -> bool:
    """Whether the process-wide tracer is currently recording."""
    return TRACER.enabled
