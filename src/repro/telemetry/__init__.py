"""repro.telemetry — tracing, metrics, and query profiling.

The observability substrate for the whole stack: hierarchical trace
spans (:mod:`~repro.telemetry.spans`), a metrics registry plus the
``snapshot()/delta()`` counter protocol (:mod:`~repro.telemetry.metrics`),
exporters to JSON-lines and Chrome/Perfetto trace format
(:mod:`~repro.telemetry.export`), and the per-query
:class:`~repro.telemetry.profile.QueryProfile` summaries attached to
``QueryResult`` and ``ServiceResult``.

Quick profile of a verification call::

    from repro import telemetry

    telemetry.enable_tracing()
    fn.verify(lambda out: out != Int32(0))
    telemetry.write_chrome_trace("trace.json")   # open in Perfetto
    telemetry.disable_tracing()
"""

from .spans import (
    Span,
    Tracer,
    TRACER,
    span,
    enable_tracing,
    disable_tracing,
    tracing_enabled,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    METRICS,
    delta,
    numeric_snapshot,
)
from .export import (
    span_events,
    write_jsonl,
    write_chrome_trace,
    chrome_trace_events,
    load_chrome_trace,
)
from .profile import QueryProfile, profile_from_spans

__all__ = [
    # spans
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "delta",
    "numeric_snapshot",
    # export
    "span_events",
    "write_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "load_chrome_trace",
    # profile
    "QueryProfile",
    "profile_from_spans",
]
