"""Trace exporters: JSON-lines event log and Chrome ``trace_event``.

Two consumers, two formats:

* :func:`write_jsonl` — one JSON object per line per span (pre-order),
  greppable and streamable; the natural format for log pipelines.
* :func:`write_chrome_trace` — the Chrome/Perfetto ``trace_event``
  JSON object format.  Load the file at https://ui.perfetto.dev (or
  ``chrome://tracing``) to see the merged timeline; spans from worker
  subprocesses appear as separate process tracks because each span
  carries the pid it was measured in.

Both accept :class:`~repro.telemetry.spans.Span` trees or the plain
dicts produced by ``Span.to_dict()`` (what crosses the service's
result pipe), so a trace can be exported without rehydrating spans.
:func:`load_chrome_trace` reads the Chrome format back for round-trip
tests and programmatic inspection.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, IO, Iterable, Iterator, List, Union

from .spans import Span, Tracer, TRACER

__all__ = [
    "span_events",
    "write_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "load_chrome_trace",
]

SpanLike = Union[Span, Dict[str, Any]]


def _as_dict(root: SpanLike) -> Dict[str, Any]:
    if isinstance(root, Span):
        return root.to_dict()
    return root


def _walk(node: Dict[str, Any], depth: int = 0) -> Iterator[Dict[str, Any]]:
    yield dict(node, depth=depth)
    for child in node.get("children", ()):
        yield from _walk(child, depth + 1)


def span_events(roots: Iterable[SpanLike]) -> Iterator[Dict[str, Any]]:
    """Flatten span trees into per-span event dicts, pre-order.

    Each event keeps name/start/dur/pid/tid/attrs and gains a
    ``depth`` field; ``children`` are dropped (structure is implied by
    order + depth, and explicit in the Chrome export's nesting).
    """
    for root in roots:
        for node in _walk(_as_dict(root)):
            node.pop("children", None)
            yield node


# Serializes concurrent write_jsonl calls within this process.  A
# buffered text stream's write() is not atomic once the payload spills
# the buffer, so without this two threads sharing one log stream can
# interleave mid-line or even lose a flushed block outright.
_JSONL_LOCK = threading.Lock()


def write_jsonl(roots: Iterable[SpanLike], fp: IO[str]) -> int:
    """Write one JSON line per span; returns the number of lines.

    Serialization happens outside the lock; the stream write is one
    locked call, so concurrent writers sharing one stream (pool
    workers appending to a common log) interleave at block granularity
    and every line stays parseable.
    """
    lines = [
        json.dumps(event, sort_keys=True, default=str)
        for event in span_events(roots)
    ]
    if lines:
        with _JSONL_LOCK:
            fp.write("\n".join(lines) + "\n")
    return len(lines)


def chrome_trace_events(roots: Iterable[SpanLike]) -> List[Dict[str, Any]]:
    """Build the Chrome ``traceEvents`` list for the given span trees.

    Emits one complete ("X") event per span with microsecond ``ts``
    relative to the earliest span start (Perfetto is happiest with
    small timestamps), plus one metadata ("M") ``process_name`` event
    per distinct pid so worker tracks are labeled.
    """
    flat = list(span_events(roots))
    if not flat:
        return []
    origin = min(event["start"] for event in flat)
    pids = sorted({int(event["pid"]) for event in flat})
    events: List[Dict[str, Any]] = []
    # The smallest pid in a merged trace is the parent/coordinator in
    # every supported topology (fork order); label the rest as workers.
    parent_pid = pids[0]
    for pid in pids:
        name = "parent" if pid == parent_pid else f"worker-{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for event in flat:
        events.append(
            {
                "name": event["name"],
                "ph": "X",
                "ts": (event["start"] - origin) * 1e6,
                "dur": event["dur"] * 1e6,
                "pid": int(event["pid"]),
                "tid": int(event["tid"]),
                "args": dict(event.get("attrs") or {}),
            }
        )
    return events


def write_chrome_trace(
    path: str,
    roots: Iterable[SpanLike] = None,
    tracer: Tracer = None,
) -> int:
    """Write a Perfetto-loadable trace file; returns the span count.

    With no ``roots``, exports the finished roots of ``tracer``
    (default: the process-wide :data:`TRACER`).
    """
    if roots is None:
        roots = (tracer or TRACER).finished_roots()
    events = chrome_trace_events(roots)
    with open(path, "w") as fp:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fp)
    return sum(1 for event in events if event.get("ph") == "X")


def load_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Read a Chrome trace file back; returns the "X" span events."""
    with open(path) as fp:
        data = json.load(fp)
    events = data["traceEvents"] if isinstance(data, dict) else data
    return [event for event in events if event.get("ph") == "X"]
