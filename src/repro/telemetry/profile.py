"""Per-query profiles: the summary a result carries home.

A :class:`QueryProfile` condenses one query's span tree into the
numbers a caller tuning backends actually wants — total wall time,
time per phase (compile / solve / validate / bdd kernels), and the
counter deltas the run consumed — while keeping the serialized span
tree for full-fidelity export.  It is deliberately a plain, picklable
dataclass: profiles ride on :class:`~repro.core.budget.QueryResult`
and :class:`~repro.service.engine.ServiceResult`, both of which may
cross process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spans import Span

__all__ = ["QueryProfile", "profile_from_spans"]


@dataclass(frozen=True)
class QueryProfile:
    """Condensed timing/counter summary of one query.

    * ``query`` — span name of the root (e.g. ``query.verify``).
    * ``backend`` — backend that produced the answer, if known.
    * ``total_s`` — wall time of the root span(s).
    * ``phases`` — seconds per span name, summed over the whole tree
      (self-time is not subtracted: ``query.find`` contains ``solve``).
    * ``counts`` — occurrences per span name.
    * ``counters`` — flat numeric counter deltas (solver conflicts,
      BDD cache hits, ...), from whichever subsystems reported them.
    * ``spans`` — the serialized span trees (``Span.to_dict`` dicts),
      ready for :func:`~repro.telemetry.export.write_chrome_trace`.
    """

    query: str = ""
    backend: Optional[str] = None
    total_s: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def phase_ms(self, name: str) -> float:
        """Milliseconds spent in spans called ``name`` (0 if absent)."""
        return self.phases.get(name, 0.0) * 1000.0

    def summary(self) -> str:
        """One-line human summary (top phases by time)."""
        top = sorted(self.phases.items(), key=lambda kv: -kv[1])[:4]
        phases = ", ".join(f"{name} {secs * 1000:.1f}ms" for name, secs in top)
        backend = f" [{self.backend}]" if self.backend else ""
        return (
            f"{self.query or 'query'}{backend}: "
            f"{self.total_s * 1000:.1f}ms total ({phases})"
        )


def _iter_nodes(tree: Dict[str, Any]):
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.get("children", ()))


def profile_from_spans(
    roots: List[Any],
    query: str = "",
    backend: Optional[str] = None,
    counters: Optional[Dict[str, float]] = None,
) -> QueryProfile:
    """Build a :class:`QueryProfile` from span trees.

    ``roots`` may mix :class:`Span` objects and ``Span.to_dict``
    dicts.  ``query`` defaults to the first root's name; ``total_s``
    is the sum of root durations.
    """
    trees = [
        root.to_dict() if isinstance(root, Span) else root for root in roots
    ]
    phases: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    merged_counters: Dict[str, float] = dict(counters or {})
    for tree in trees:
        for node in _iter_nodes(tree):
            name = node.get("name", "")
            phases[name] = phases.get(name, 0.0) + float(node.get("dur", 0.0))
            counts[name] = counts.get(name, 0) + 1
            for key, value in (node.get("attrs") or {}).items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                counter_key = f"{name}.{key}"
                merged_counters[counter_key] = (
                    merged_counters.get(counter_key, 0.0) + value
                )
    return QueryProfile(
        query=query or (trees[0].get("name", "") if trees else ""),
        backend=backend,
        total_s=sum(float(tree.get("dur", 0.0)) for tree in trees),
        phases=phases,
        counts=counts,
        counters=merged_counters,
        spans=trees,
    )
