"""Metrics registry: counters, gauges, histograms, and the
``snapshot()/delta()`` counter protocol.

The engine already keeps numbers in several silos — ``BddStats`` op
counters, the SAT :class:`~repro.sat.solver.Solver` statistics dict,
:class:`~repro.core.budget.BudgetMeter` consumption — each with its own
field names and reset spelling.  This module defines the one protocol
they all now speak:

* ``snapshot()`` returns a *flat dict of numbers* (no nested
  structure, no non-numeric values), cheap enough to call per query;
* :func:`delta` diffs two snapshots key-by-key, so "what did this
  query consume?" is ``delta(before, after)`` regardless of which
  subsystem produced the numbers;
* ``reset_counters()`` is the canonical reset spelling everywhere
  (legacy names remain as aliases).

:class:`MetricsRegistry` aggregates process-wide series on top of the
same representation: registry ``snapshot()`` output is itself a flat
numeric dict (histograms flatten to per-bucket keys), so the one
:func:`delta` works across all of it.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "delta",
    "numeric_snapshot",
]

Number = float


def delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Number]:
    """Key-wise numeric difference ``after - before``.

    Keys present on only one side are treated as 0 on the other, so a
    counter born mid-window still shows its full increment.  Non-numeric
    values (bools excluded too) are ignored.
    """
    out: Dict[str, Number] = {}
    keys = set(before) | set(after)
    for key in keys:
        b = before.get(key, 0)
        a = after.get(key, 0)
        if isinstance(b, bool) or isinstance(a, bool):
            continue
        if isinstance(b, (int, float)) and isinstance(a, (int, float)):
            out[key] = a - b
    return out


def numeric_snapshot(source: Any) -> Dict[str, Number]:
    """Best-effort flat numeric snapshot of an arbitrary stats carrier.

    Prefers the ``snapshot()`` protocol; falls back to ``stats()`` /
    ``statistics`` / ``as_dict()``; filters to numeric values either
    way.  Returns ``{}`` for objects exposing none of these.
    """
    raw: Any = None
    for attr in ("snapshot", "stats", "as_dict"):
        method = getattr(source, attr, None)
        if callable(method):
            raw = method()
            break
    if raw is None:
        raw = getattr(source, "statistics", None)
    if not isinstance(raw, dict):
        return {}
    return {
        key: value
        for key, value in raw.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


class Counter:
    """Monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> Dict[str, Number]:
        return {self.name: self._value}

    def reset_counters(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Point-in-time value that may go up or down (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: Number) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def snapshot(self) -> Dict[str, Number]:
        return {self.name: self._value}

    def reset_counters(self) -> None:
        with self._lock:
            self._value = 0.0


#: Default histogram boundaries, in seconds: latency-shaped, spanning
#: 100µs kernels to multi-minute whole-query wall times.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Histogram:
    """Fixed-boundary histogram (thread-safe).

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow bucket catches everything above the last edge.  Snapshot
    keys flatten to ``<name>.le_<bound>`` plus ``.count`` and ``.sum``
    so histogram state rides the same flat-dict protocol as counters.

    :meth:`labels` returns a per-label-set child histogram named
    ``<name>{k=v,...}``.  Distinct label sets are capped at
    ``max_label_sets`` with least-recently-used eviction (and an
    eviction counter surfaced in the snapshot), so an unbounded label
    source — a fuzz campaign generating novel builder refs, say —
    cannot balloon the registry.
    """

    __slots__ = (
        "name",
        "bounds",
        "_buckets",
        "_count",
        "_sum",
        "_lock",
        "max_label_sets",
        "_children",
        "_label_evictions",
    )

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
        max_label_sets: int = 64,
    ):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        if max_label_sets < 1:
            raise ValueError(
                f"max_label_sets must be >= 1, got {max_label_sets!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._buckets = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()
        self.max_label_sets = max_label_sets
        self._children: "OrderedDict[Tuple[Tuple[str, str], ...], Histogram]" = (
            OrderedDict()
        )
        self._label_evictions = 0

    def observe(self, value: Number) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> Number:
        return self._sum

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._buckets)

    def labels(self, **labels: Any) -> "Histogram":
        """Get-or-create the child histogram for one label set.

        Children share the parent's bounds and appear in the parent's
        snapshot as ``<name>{k=v,...}.*`` series.  When the number of
        distinct label sets exceeds ``max_label_sets`` the least
        recently used child is evicted (its counts are dropped) and
        ``<name>.label_evictions`` is incremented.
        """
        if not labels:
            return self
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                self._children.move_to_end(key)
                return child
            rendered = ",".join(f"{k}={v}" for k, v in key)
            child = Histogram(f"{self.name}{{{rendered}}}", self.bounds)
            self._children[key] = child
            while len(self._children) > self.max_label_sets:
                self._children.popitem(last=False)
                self._label_evictions += 1
            return child

    @property
    def label_evictions(self) -> int:
        return self._label_evictions

    def snapshot(self) -> Dict[str, Number]:
        with self._lock:
            out: Dict[str, Number] = {}
            for bound, count in zip(self.bounds, self._buckets):
                out[f"{self.name}.le_{bound:g}"] = count
            out[f"{self.name}.le_inf"] = self._buckets[-1]
            out[f"{self.name}.count"] = self._count
            out[f"{self.name}.sum"] = self._sum
            children = list(self._children.values())
            evictions = self._label_evictions
        # Children snapshot outside the parent lock: each child has its
        # own lock and never reaches back into the parent.
        for child in children:
            out.update(child.snapshot())
        if children or evictions:
            out[f"{self.name}.label_sets"] = len(children)
            out[f"{self.name}.label_evictions"] = evictions
        return out

    def reset_counters(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            children = list(self._children.values())
        for child in children:
            child.reset_counters()


class MetricsRegistry:
    """Named collection of counters/gauges/histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent
    by name, so instrumentation points need no registration step);
    ``snapshot()`` flattens the whole registry to one numeric dict
    compatible with :func:`delta`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            created = factory()
            self._metrics[name] = created
            return created

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, bounds), Histogram
        )

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Number]:
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Number] = {}
        for metric in metrics:
            out.update(metric.snapshot())
        return out

    def reset_counters(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset_counters()

    def absorb(self, prefix: str, source: Any) -> Dict[str, Number]:
        """Fold one subsystem's counter snapshot into gauges.

        ``source`` is anything speaking the snapshot protocol (or one
        of its legacy spellings — see :func:`numeric_snapshot`); each
        value lands in a gauge named ``<prefix>.<key>``.  Returns the
        flat snapshot that was absorbed.
        """
        snap = numeric_snapshot(source)
        for key, value in snap.items():
            self.gauge(f"{prefix}.{key}").set(value)
        return snap


#: Process-wide default registry.
METRICS = MetricsRegistry()
