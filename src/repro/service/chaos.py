"""Chaos harness: fault injection and overload storms for the engine.

Two halves:

* **fault targets** — module-level callables a ``QuerySpec`` can name
  by ``"repro.service.chaos:<name>"`` so a *worker* executes the fault
  (sleep, hard kill, allocation hoard, deterministic cold-start).
  They live here, importable, for the same reason as
  ``tests/service_faults.py``: a spawned worker must be able to
  resolve them;
* **scenario drivers** — :func:`inject_worker_fault` (one fault,
  aimed at a live engine: used by fuzz campaigns) and
  :func:`run_overload` (a full arrival storm at a chosen multiple of
  pool capacity, with optional worker faults and clock-skewed
  deadlines, measuring goodput, per-priority latency percentiles,
  shed/reject fractions, hedge win rate, and brownout recovery).

The storm driver is what the acceptance tests and
``benchmarks/bench_overload.py`` share: one code path produces both
the asserted behaviour and the recorded ``BENCH_overload.json`` rows.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    ZenOverloadShed,
    ZenQueryTimeout,
    ZenQueueFull,
    ZenServiceError,
)
from .engine import QueryEngine
from .spec import QuerySpec

__all__ = [
    "sleep_ms",
    "kill_worker",
    "oom_hoard",
    "cold_start_ms",
    "OverloadScenario",
    "inject_worker_fault",
    "run_overload",
    "percentile",
]


# -- fault targets (run inside workers) ---------------------------------


def sleep_ms(ms: float) -> float:
    """The canonical storm task: hold a worker for ``ms`` milliseconds.

    Sleep, not spin — storms model I/O-shaped service time and must
    not contend for the CPU the dispatcher thread needs.
    """
    time.sleep(ms / 1000.0)
    return ms


def kill_worker(code: int = 51) -> None:
    """Die without unwinding: the parent sees EOF + exit status."""
    os._exit(code)


def oom_hoard() -> None:
    """Allocate without bound until the RSS cap raises MemoryError."""
    hoard = []
    while True:
        hoard.append(bytearray(1 << 20))


def cold_start_ms(
    flag_path: str, cold_ms: float, warm_ms: float = 1.0
) -> str:
    """First caller is slow, everyone after is fast.

    The flag file is cross-process memory: whichever worker arrives
    first writes it and sleeps ``cold_ms``; later arrivals (a hedge
    duplicate on a second worker, say) return after ``warm_ms``.
    Deterministic way to make the hedge lane win a race.
    """
    try:
        fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        time.sleep(warm_ms / 1000.0)
        return "warm"
    with os.fdopen(fd, "w") as handle:
        handle.write(str(os.getpid()))
    time.sleep(cold_ms / 1000.0)
    return "cold"


# -- single-fault injection (fuzz campaigns, targeted tests) ------------


def inject_worker_fault(
    engine: QueryEngine,
    kind: str = "kill",
    rng: Optional[random.Random] = None,
    stall_ms: float = 200.0,
) -> Tuple[str, Optional[int]]:
    """Aim one chaos fault at a live engine; returns (kind, pid).

    * ``"kill"`` — SIGKILL a random live worker (the engine must
      observe EOF, respawn, and retry/requeue whatever it ran);
    * ``"stall"`` — occupy a worker with a fire-and-forget sleep spec
      (fuzz priority, so admission may reject it under pressure —
      that rejection is itself a fine outcome for chaos);
    * ``"oom"`` — fire-and-forget allocation hoard under a small RSS
      cap, forcing an in-worker MemoryError and a worker recycle.

    Never raises on queue-full/closed engines: chaos must not crash
    the campaign that is injecting it.
    """
    rng = rng or random.Random()
    if kind == "kill":
        pids = [p for p in engine.worker_pids() if p is not None]
        if not pids:
            return ("kill", None)
        pid = rng.choice(pids)
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            return ("kill", None)
        return ("kill", pid)
    if kind == "stall":
        spec = QuerySpec(
            builder="repro.service.chaos:sleep_ms",
            kind="call",
            args=(stall_ms,),
            priority="fuzz",
            label="chaos-stall",
            timeout_s=max(1.0, stall_ms / 1000.0 * 4),
        )
    elif kind == "oom":
        spec = QuerySpec(
            builder="repro.service.chaos:oom_hoard",
            kind="call",
            priority="fuzz",
            label="chaos-oom",
            timeout_s=30.0,
            rss_limit_bytes=64 << 20,
        )
    else:
        raise ValueError(f"unknown chaos fault kind {kind!r}")
    try:
        future = engine.submit(spec, fallback=False)
        # Fire-and-forget: swallow whatever the fault becomes.
        future.add_done_callback(lambda f: f.exception())
    except (ZenQueueFull, ZenServiceError):
        return (kind, None)
    return (kind, None)


# -- overload storms ----------------------------------------------------


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class OverloadScenario:
    """One arrival storm against a small pool.

    ``overload`` is the arrival-rate multiple of pool capacity
    (capacity = ``pool_size / task_ms``): 1.0 is saturation, 10.0 is
    a 10x storm.  Priorities are drawn per task —
    ``interactive_fraction`` then ``batch_fraction``, remainder fuzz.
    ``fault_rate`` worker kills/stalls per submission tick and
    ``expired_fraction`` near-zero client deadlines (a clock-skewed
    queue storm: traffic that is dead on arrival) ride on top.
    """

    overload: float = 10.0
    pool_size: int = 4
    duration_s: float = 1.2
    task_ms: float = 20.0
    interactive_fraction: float = 0.08
    batch_fraction: float = 0.52
    queue_depth: int = 64
    shed_threshold: float = 0.85
    brownout_window_s: float = 0.5
    max_batch_size: int = 1
    retries: int = 1
    hedge: bool = False
    hedge_after_s: Optional[float] = None
    fault_rate: float = 0.0
    fault_kinds: Tuple[str, ...] = ("kill", "stall")
    expired_fraction: float = 0.0
    deadline_s: Optional[float] = None
    seed: int = 0
    baseline_queries: int = 30
    settle_s: float = 30.0

    def capacity_qps(self) -> float:
        return self.pool_size * 1000.0 / self.task_ms

    def arrival_qps(self) -> float:
        return self.overload * self.capacity_qps()


def _sleep_spec(scenario: OverloadScenario, priority: str, i: int) -> QuerySpec:
    return QuerySpec(
        builder="repro.service.chaos:sleep_ms",
        kind="call",
        args=(scenario.task_ms,),
        priority=priority,
        label=f"{priority}-{i}",
        timeout_s=10.0,
    )


def run_overload(
    scenario: OverloadScenario,
    engine_kwargs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Drive one storm; returns the measured report (plain JSON data).

    Phases: (1) measure an *unloaded* interactive baseline on a warm
    pool, (2) submit the storm open-loop at ``arrival_qps`` for
    ``duration_s`` (fast-reject submissions, so a full queue shows up
    as ``rejected``, never as a hang), (3) wait for every admitted
    future, (4) watch the brownout controller recover.

    The report's per-priority sections count submitted / completed /
    shed / rejected / expired / failed and give client-side latency
    percentiles (submit→resolve, milliseconds) for completions.
    """
    kwargs: Dict[str, Any] = dict(
        pool_size=scenario.pool_size,
        retries=scenario.retries,
        max_batch_size=scenario.max_batch_size,
        max_queue_depth=scenario.queue_depth,
        shed_threshold=scenario.shed_threshold,
        brownout_window_s=scenario.brownout_window_s,
        hedge=scenario.hedge,
        hedge_after_s=scenario.hedge_after_s,
        default_timeout_s=10.0,
        # Storm crashes are injected, not systemic: keep the breaker
        # out of the way so the measured behaviour is admission's.
        breaker_threshold=10_000,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        jitter_s=0.0,
        seed=scenario.seed,
    )
    kwargs.update(engine_kwargs or {})
    rng = random.Random(scenario.seed)
    report: Dict[str, Any] = {
        "scenario": {
            "overload": scenario.overload,
            "pool_size": scenario.pool_size,
            "duration_s": scenario.duration_s,
            "task_ms": scenario.task_ms,
            "queue_depth": scenario.queue_depth,
            "arrival_qps": round(scenario.arrival_qps(), 1),
            "capacity_qps": round(scenario.capacity_qps(), 1),
            "hedge": scenario.hedge,
            "fault_rate": scenario.fault_rate,
            "expired_fraction": scenario.expired_fraction,
            "seed": scenario.seed,
        }
    }
    lock = threading.Lock()
    resolved: List[Tuple[str, float, float]] = []  # (priority, t0, t1)

    with QueryEngine(**kwargs) as engine:
        # -- phase 1: unloaded interactive baseline (warm pool) ---------
        for i in range(scenario.pool_size):
            engine.run(_sleep_spec(scenario, "interactive", -1 - i))
        baseline: List[float] = []
        for i in range(scenario.baseline_queries):
            t0 = time.monotonic()
            engine.run(_sleep_spec(scenario, "interactive", -100 - i))
            baseline.append((time.monotonic() - t0) * 1000.0)
        baseline_p99 = percentile(baseline, 0.99)

        # -- phase 2: the storm ----------------------------------------
        counts = {
            p: {
                "submitted": 0,
                "rejected": 0,
                "completed": 0,
                "shed": 0,
                "expired": 0,
                "failed": 0,
            }
            for p in ("interactive", "batch", "fuzz")
        }
        futures = []
        brownout_seen = False
        rate = scenario.arrival_qps()
        start = time.monotonic()
        submitted = 0
        while True:
            now = time.monotonic()
            elapsed = now - start
            if elapsed >= scenario.duration_s:
                break
            due = int(rate * elapsed) - submitted
            for _ in range(max(0, due)):
                submitted += 1
                draw = rng.random()
                if draw < scenario.interactive_fraction:
                    priority = "interactive"
                elif draw < (
                    scenario.interactive_fraction + scenario.batch_fraction
                ):
                    priority = "batch"
                else:
                    priority = "fuzz"
                spec = _sleep_spec(scenario, priority, submitted)
                if (
                    scenario.expired_fraction
                    and priority != "interactive"
                    and rng.random() < scenario.expired_fraction
                ):
                    # Clock-skewed storm traffic: dead on arrival.
                    spec = replace(
                        spec,
                        deadline_s=0.001,
                        label=f"skewed-{submitted}",
                    )
                elif scenario.deadline_s is not None and priority != (
                    "interactive"
                ):
                    spec = replace(spec, deadline_s=scenario.deadline_s)
                counts[priority]["submitted"] += 1
                try:
                    future = engine.submit(spec, fallback=False)
                except ZenQueueFull:
                    counts[priority]["rejected"] += 1
                    continue
                t_submit = time.monotonic()

                def _done(f, priority=priority, t0=t_submit):
                    with lock:
                        resolved.append((priority, t0, time.monotonic()))

                future.add_done_callback(_done)
                futures.append((priority, future))
            if scenario.fault_rate and rng.random() < scenario.fault_rate:
                inject_worker_fault(
                    engine, rng.choice(list(scenario.fault_kinds)), rng
                )
            if engine.mode == "brownout":
                brownout_seen = True
            time.sleep(0.005)
        storm_end = time.monotonic()

        # -- phase 3: drain --------------------------------------------
        wait_futures(
            [f for _, f in futures], timeout=scenario.settle_s
        )
        for priority, future in futures:
            if not future.done():
                counts[priority]["failed"] += 1
                future.cancel()
                continue
            error = future.exception()
            if error is None:
                counts[priority]["completed"] += 1
            elif isinstance(error, ZenOverloadShed):
                counts[priority]["shed"] += 1
            elif isinstance(error, ZenQueryTimeout):
                counts[priority]["expired"] += 1
            else:
                counts[priority]["failed"] += 1
        drained = time.monotonic()

        # -- phase 4: recovery -----------------------------------------
        recovery_s = None
        recovery_limit = scenario.brownout_window_s * 4 + 1.0
        while time.monotonic() - drained < recovery_limit:
            if engine.mode == "normal":
                recovery_s = time.monotonic() - storm_end
                break
            time.sleep(0.02)

        overload_stats = engine.overload_stats()
        restarts = engine.total_restarts()

    with lock:
        latencies: Dict[str, List[float]] = {
            "interactive": [],
            "batch": [],
            "fuzz": [],
        }
        for priority, t0, t1 in resolved:
            latencies[priority].append((t1 - t0) * 1000.0)

    total_ok = sum(c["completed"] for c in counts.values())
    total_admitted = sum(
        c["submitted"] - c["rejected"] for c in counts.values()
    )
    total_shed = sum(c["shed"] for c in counts.values())
    wall = max(drained - start, scenario.duration_s)
    per_priority = {}
    for priority, c in counts.items():
        samples = latencies[priority]
        per_priority[priority] = {
            **c,
            "p50_ms": round(percentile(samples, 0.50), 2),
            "p95_ms": round(percentile(samples, 0.95), 2),
            "p99_ms": round(percentile(samples, 0.99), 2),
        }
    hedge_stats = overload_stats["hedge"]
    report.update(
        {
            "baseline_p99_ms": round(baseline_p99, 2),
            "priorities": per_priority,
            "goodput_qps": round(total_ok / wall, 1),
            "shed_fraction": round(
                total_shed / total_admitted if total_admitted else 0.0, 4
            ),
            "reject_fraction": round(
                sum(c["rejected"] for c in counts.values())
                / max(1, sum(c["submitted"] for c in counts.values())),
                4,
            ),
            "interactive_p99_ratio": round(
                per_priority["interactive"]["p99_ms"] / baseline_p99
                if baseline_p99 and latencies["interactive"]
                else 0.0,
                2,
            ),
            "brownout_entered": brownout_seen
            or overload_stats["brownout"]["transitions"] != [],
            "recovered": recovery_s is not None,
            "recovery_s": (
                round(recovery_s, 3) if recovery_s is not None else None
            ),
            "hedge_launched": hedge_stats["launched"],
            "hedge_won": hedge_stats["won"],
            "hedge_win_rate": round(hedge_stats["win_rate"], 3),
            "worker_restarts": restarts,
            "shed_overload": overload_stats["shed_overload"],
            "deadline_expired": overload_stats["deadline_expired"],
        }
    )
    return report
