"""Fault-isolated parallel query execution (the service layer).

PR 2's budgets are *cooperative*: they rely on the solver reaching a
checkpoint.  This package adds the execution layer that does not —
queries run in subprocess workers with kill-based wall-clock limits
and ``RLIMIT_AS`` memory caps, crashed workers are respawned, flaky
outcomes are retried with exponential backoff + jitter, repeatedly
failing backends are shed by per-backend circuit breakers onto the
fallback ladder, and a differential oracle cross-checks the SAT and
BDD backends against each other.

Public surface:

* :class:`QuerySpec` — picklable description of one query;
* :class:`QueryEngine` — the worker pool / scheduler;
* :class:`ServiceResult` / :class:`AttemptRecord` — answers with their
  full execution history;
* :class:`CircuitBreaker` / :class:`BreakerTransition` — the
  per-backend breaker state machine;
* :func:`run_spec` — in-process execution of a spec (dry runs, and
  what the worker itself calls).
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerTransition, CircuitBreaker
from .engine import AttemptRecord, QueryEngine, ServiceResult
from .spec import QuerySpec, resolve_ref, run_spec

__all__ = [
    "QueryEngine",
    "QuerySpec",
    "ServiceResult",
    "AttemptRecord",
    "CircuitBreaker",
    "BreakerTransition",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "resolve_ref",
    "run_spec",
]
