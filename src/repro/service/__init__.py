"""Fault-isolated parallel query execution (the service layer).

PR 2's budgets are *cooperative*: they rely on the solver reaching a
checkpoint.  This package adds the execution layer that does not —
queries run in subprocess workers with kill-based wall-clock limits
and ``RLIMIT_AS`` memory caps, crashed workers are respawned, flaky
outcomes are retried with exponential backoff + jitter, repeatedly
failing backends are shed by per-backend circuit breakers onto the
fallback ladder, and a differential oracle cross-checks the SAT and
BDD backends against each other.

PR 5 adds the warm dispatch path: workers keep an LRU
:class:`ModelCache` of resolved builders and compiled artifacts
(epoch-invalidated by the parent), the scheduler routes repeat refs to
their warm worker (sticky routing), one pipe round-trip batches many
specs, and :meth:`QueryEngine.submit` / :meth:`QueryEngine.gather`
plus the async ``run_async``/``run_many_async`` keep thousands of
queries in flight from one caller.

PR 7 adds overload protection: bounded per-priority admission
(:class:`AdmissionController`, ``ZenQueueFull`` backpressure),
utilization-triggered load shedding (``shed_overload`` outcomes),
client-deadline propagation (``QuerySpec.deadline_s``), tail-latency
hedging (:class:`HedgeTracker`), hysteretic brownout degradation
(:class:`BrownoutController`), a deterministic :meth:`QueryEngine.shutdown`
drain, and the :mod:`repro.service.chaos` fault-injection harness.

Public surface:

* :class:`QuerySpec` — picklable description of one query;
* :class:`QueryEngine` — the worker pool / scheduler;
* :class:`ServiceResult` / :class:`AttemptRecord` — answers with their
  full execution history;
* :class:`CircuitBreaker` / :class:`BreakerTransition` — the
  per-backend breaker state machine;
* :class:`ModelCache` / :class:`CacheEntry` / :func:`ref_cache_key` —
  the worker-side compiled-model cache and its keying;
* :func:`run_spec` — in-process execution of a spec (dry runs, and
  what the worker itself calls).
"""

from .admission import (
    BROWNOUT,
    NORMAL,
    PRIORITIES,
    AdmissionController,
    BrownoutController,
    HedgeTracker,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerTransition, CircuitBreaker
from .cache import CacheEntry, ModelCache, ref_cache_key
from .engine import AttemptRecord, QueryEngine, ServiceResult
from .spec import QuerySpec, clamp_spec_deadline, resolve_ref, run_spec

__all__ = [
    "QueryEngine",
    "QuerySpec",
    "ServiceResult",
    "AttemptRecord",
    "CircuitBreaker",
    "BreakerTransition",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ModelCache",
    "CacheEntry",
    "ref_cache_key",
    "resolve_ref",
    "run_spec",
    "AdmissionController",
    "BrownoutController",
    "HedgeTracker",
    "PRIORITIES",
    "NORMAL",
    "BROWNOUT",
    "clamp_spec_deadline",
]
