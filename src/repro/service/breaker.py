"""Per-backend circuit breakers for the query engine.

A breaker tracks consecutive failures of one backend and implements
the classic three-state machine:

* **closed** — traffic flows; each failure increments a consecutive
  counter, each success resets it.  Hitting ``failure_threshold``
  consecutive failures *trips* the breaker open.
* **open** — traffic is shed (queries fall through to the next rung of
  the fallback ladder without touching the backend).  After
  ``cooldown_s`` the next :meth:`allow` transitions to half-open.
* **half-open** — exactly one probe query is admitted.  Success closes
  the breaker; failure re-opens it and restarts the cooldown.

The engine is single-threaded (one scheduler loop owns all breakers),
so no locking is needed.  The clock is injectable for deterministic
tests.  Every transition is recorded with its timestamp and reason —
part of the attempt-history observability contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..errors import ZenTypeError

__all__ = ["CircuitBreaker", "BreakerTransition", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of a breaker: when, from, to, and why."""

    at: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one backend."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise ZenTypeError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown_s < 0:
            raise ZenTypeError(f"cooldown_s must be >= 0, got {cooldown_s!r}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._transitions: List[BreakerTransition] = []
        self.trips = 0  # closed/half-open -> open transitions
        self.shed = 0  # queries rejected while open

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooled down."""
        self._maybe_half_open()
        return self._state

    @property
    def transitions(self) -> Tuple[BreakerTransition, ...]:
        """Every state change so far, in order."""
        return tuple(self._transitions)

    def _move(self, to_state: str, reason: str) -> None:
        if to_state == self._state:
            return
        self._transitions.append(
            BreakerTransition(self._clock(), self._state, to_state, reason)
        )
        if to_state == OPEN:
            self.trips += 1
            self._opened_at = self._clock()
        self._state = to_state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._move(HALF_OPEN, f"cooldown of {self.cooldown_s}s elapsed")

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a query be sent to this backend right now?

        Open breakers shed (return False, counted); half-open breakers
        admit the probe.
        """
        self._maybe_half_open()
        if self._state == OPEN:
            self.shed += 1
            return False
        return True

    def record_success(self) -> None:
        """A query on this backend succeeded."""
        self._consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._move(CLOSED, "half-open probe succeeded")
        # A success while OPEN can only come from a query admitted
        # before the trip; it does not close the breaker early.

    def record_failure(self, reason: str = "") -> None:
        """A query on this backend failed (crash, timeout, OOM, budget)."""
        self._maybe_half_open()
        self._consecutive_failures += 1
        why = reason or "failure"
        if self._state == HALF_OPEN:
            self._move(OPEN, f"half-open probe failed ({why})")
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._move(
                OPEN,
                f"{self._consecutive_failures} consecutive failures "
                f"(last: {why})",
            )

    def snapshot(self) -> dict:
        """Picklable observability snapshot for results and benchmarks."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
            "shed": self.shed,
            "transitions": [
                (t.at, t.from_state, t.to_state, t.reason)
                for t in self._transitions
            ],
        }
