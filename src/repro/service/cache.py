"""Worker-side compiled-model cache for the warm-dispatch path.

The dominant cost of a tiny service query is not the solve — it is
re-resolving the ``module:attribute`` builder reference, re-invoking
the builder, and re-constructing the Zen expression DAG on every
worker hop.  :class:`ModelCache` amortizes all of that: each worker
process keeps one LRU of resolved :meth:`ZenFunction.from_ref`
results (plus any compiled per-backend artifacts, e.g. a built
state-set transformer with its BDDs) keyed by
``(builder ref + builder args, backend)``; the built function's type
signature is recorded on the entry for observability and differential
checks.

Invalidation is *epoch-based*: the parent engine owns a monotonically
increasing epoch, piggybacks it on every batch submission, and can
push an explicit ``("epoch", n)`` control message; a worker whose
cache is behind the announced epoch flushes everything before serving
the next spec.  A respawned worker starts at epoch 0 with an empty
cache, so it can never serve an entry from a previous life.

The cache speaks the shared telemetry counter protocol
(``snapshot()`` / ``reset_counters()`` — see
:mod:`repro.telemetry.metrics`): hits, misses, and evictions are
exposed as ``service.cache.{hit,miss,evict}`` so worker replies can
carry the numbers back to the parent's metrics registry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..core.function import ZenFunction

__all__ = ["CacheEntry", "ModelCache", "ref_cache_key"]


def ref_cache_key(spec: Any) -> str:
    """Canonical cache/sticky-routing key for a spec's model builder.

    Strings pass through (already canonical); callables are named by
    module and qualname.  Builder arguments are folded in by ``repr``
    so two parameterizations of one builder never collide.
    """
    builder = spec.builder
    if isinstance(builder, str):
        base = builder
    else:
        module = getattr(builder, "__module__", "?")
        qualname = getattr(builder, "__qualname__", None) or repr(builder)
        base = f"{module}:{qualname}"
    if spec.builder_args or spec.builder_kwargs:
        base += repr(spec.builder_args)
        base += repr(sorted(spec.builder_kwargs.items()))
    return base


class CacheEntry:
    """One warm model: the built function plus compiled artifacts."""

    __slots__ = ("function", "signature", "epoch", "artifacts")

    def __init__(self, function: ZenFunction, epoch: int):
        self.function = function
        #: Recorded type signature of the built model — part of the
        #: logical cache identity (a builder whose signature changed
        #: must come with an epoch bump).
        self.signature: Tuple[str, ...] = tuple(
            str(t) for t in function.arg_types
        )
        self.epoch = epoch
        #: Lazily built per-kind compiled state (e.g. ``"transformer"``
        #: → a built StateSetTransformer whose BDDs live in this
        #: worker's manager).
        self.artifacts: Dict[str, Any] = {}


class ModelCache:
    """LRU of resolved/compiled models, keyed ``(ref key, backend)``.

    Not thread-safe: a worker process is single-threaded by design,
    and an in-process caller should own its instance.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], CacheEntry]" = (
            OrderedDict()
        )
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- epochs ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def bump_epoch(self, epoch: int) -> bool:
        """Advance to ``epoch``, flushing every entry if it is newer.

        Returns True when a flush happened.  Older announcements are
        ignored (a stale control message must never resurrect or keep
        entries the parent already invalidated).
        """
        if epoch <= self._epoch:
            return False
        self._epoch = epoch
        self._entries.clear()
        return True

    def invalidate(self) -> int:
        """Flush everything and advance the local epoch (in-process use)."""
        self._epoch += 1
        self._entries.clear()
        return self._epoch

    # -- lookup ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get_function(self, spec: Any) -> Tuple[ZenFunction, bool, CacheEntry]:
        """Resolve the spec's model, warm if possible.

        Returns ``(function, hit, entry)``; a miss resolves the
        builder reference, builds the model, and inserts it (evicting
        the least recently used entry past capacity).
        """
        key = (ref_cache_key(spec), spec.backend)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.function, True, entry
        self.misses += 1
        function = ZenFunction.from_ref(
            spec.builder, *spec.builder_args, **spec.builder_kwargs
        )
        entry = CacheEntry(function, self._epoch)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return function, False, entry

    # -- counter protocol ------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat numeric snapshot (shared telemetry counter protocol)."""
        return {
            "service.cache.hit": self.hits,
            "service.cache.miss": self.misses,
            "service.cache.evict": self.evictions,
            "service.cache.size": len(self._entries),
            "service.cache.epoch": self._epoch,
        }

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
