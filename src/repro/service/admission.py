"""Admission control, brownout hysteresis, and hedge timing policy.

This module holds the *decision* half of the engine's overload
protection; the dispatcher in :mod:`repro.service.engine` holds the
*mechanism* half (actually shedding queued tasks, launching hedges,
shrinking ladders).  Splitting them keeps every policy deterministic
and unit-testable with an injected clock — no subprocesses needed.

Three cooperating pieces:

* :class:`AdmissionController` — a bounded counting semaphore with
  per-priority headroom.  ``interactive`` may fill the whole queue;
  ``batch`` stops being admitted at ``shed_threshold`` of the depth;
  ``fuzz`` stops one shed-band earlier still.  The staggered limits
  mean low-priority traffic experiences backpressure *before* the
  queue is full, so there is always reserved headroom for interactive
  work — the classic priority-admission design from overload-tolerant
  RPC systems.

* :class:`BrownoutController` — a two-state (``normal``/``brownout``)
  hysteresis machine.  Entry is edge-triggered by stress (utilization
  at/above ``enter_utilization``, or any shed event); exit requires
  utilization at/below ``exit_utilization`` *continuously* for a full
  ``window_s`` since the last stress signal, so a sawtoothing queue
  cannot flap the mode.

* :class:`HedgeTracker` — an online latency-quantile tracker that
  turns observed per-attempt service times into the hedge delay
  (``p95 * factor``).  Hedging stays disabled (``delay() is None``)
  until ``min_samples`` completions have been seen, because a hedge
  delay derived from two data points is noise.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import ZenQueueFull

__all__ = [
    "PRIORITIES",
    "PRIORITY_RANK",
    "AdmissionController",
    "BrownoutController",
    "HedgeTracker",
    "NORMAL",
    "BROWNOUT",
]

#: Priority classes, highest first.  Rank 0 is never shed and never
#: refused admission while any slot remains.
PRIORITIES: Tuple[str, ...] = ("interactive", "batch", "fuzz")
PRIORITY_RANK: Dict[str, int] = {p: i for i, p in enumerate(PRIORITIES)}

NORMAL = "normal"
BROWNOUT = "brownout"


class AdmissionController:
    """Bounded admission with per-priority headroom.

    Counts every task that has been admitted but not yet finished
    (queued *or* in flight), so the bound covers the engine's whole
    working set, not just the pending list.  ``max_depth=None`` means
    unbounded (the pre-overload-protection behaviour).

    Thread-safe: admission happens on caller threads, release on the
    dispatcher thread.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        shed_threshold: float = 0.9,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth!r}")
        if not 0.0 < shed_threshold <= 1.0:
            raise ValueError(
                f"shed_threshold must be in (0, 1], got {shed_threshold!r}"
            )
        self.max_depth = max_depth
        self.shed_threshold = shed_threshold
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._counts: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.admitted: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.rejected: Dict[str, int] = {p: 0 for p in PRIORITIES}

    # -- limits ----------------------------------------------------------

    def limit_for(self, priority: str) -> Optional[int]:
        """Admit limit for one priority class (None = unbounded).

        ``interactive`` gets the full depth; ``batch`` is cut off at
        ``shed_threshold`` of it; ``fuzz`` one shed-band below that
        (``2*shed_threshold - 1``), floored at one slot so a quiet
        engine still serves fuzz traffic.
        """
        if self.max_depth is None:
            return None
        if priority == "interactive":
            return self.max_depth
        if priority == "batch":
            fraction = self.shed_threshold
        else:
            fraction = max(0.0, 2.0 * self.shed_threshold - 1.0)
        return max(1, int(self.max_depth * fraction))

    # -- state -----------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def utilization(self) -> float:
        """Fraction of the admission bound in use (0.0 when unbounded)."""
        if self.max_depth is None:
            return 0.0
        with self._lock:
            return sum(self._counts.values()) / self.max_depth

    def detail(self) -> Dict[str, object]:
        """Rich nested view for ``overload_stats()`` and status pages."""
        with self._lock:
            depth = sum(self._counts.values())
            return {
                "max_depth": self.max_depth,
                "depth": depth,
                "utilization": (
                    depth / self.max_depth if self.max_depth else 0.0
                ),
                "in_flight": dict(self._counts),
                "admitted": dict(self.admitted),
                "rejected": dict(self.rejected),
                "limits": {p: self.limit_for(p) for p in PRIORITIES},
            }

    # Shared counter protocol (snapshot/delta/reset_counters) — flat
    # numeric view so MetricsRegistry.absorb() and the flight recorder
    # can fold admission state in with every other counter source.
    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            out: Dict[str, float] = {
                "depth": float(sum(self._counts.values())),
            }
            for priority in PRIORITIES:
                out[f"in_flight.{priority}"] = float(
                    self._counts[priority]
                )
                out[f"admitted.{priority}"] = float(
                    self.admitted[priority]
                )
                out[f"rejected.{priority}"] = float(
                    self.rejected[priority]
                )
            if self.max_depth:
                out["utilization"] = out["depth"] / self.max_depth
            else:
                out["utilization"] = 0.0
            return out

    def delta(
        self, before: Dict[str, float], after: Dict[str, float]
    ) -> Dict[str, float]:
        return {
            key: after.get(key, 0.0) - before.get(key, 0.0)
            for key in set(before) | set(after)
        }

    def reset_counters(self) -> None:
        with self._lock:
            for priority in PRIORITIES:
                self.admitted[priority] = 0
                self.rejected[priority] = 0

    # -- admission -------------------------------------------------------

    def _admit_locked(self, priority: str) -> bool:
        limit = self.limit_for(priority)
        if limit is not None and sum(self._counts.values()) >= limit:
            return False
        self._counts[priority] += 1
        self.admitted[priority] += 1
        return True

    def try_admit(self, priority: str) -> bool:
        """Non-blocking admit; False means the class is at its limit."""
        with self._lock:
            ok = self._admit_locked(priority)
            if not ok:
                self.rejected[priority] += 1
            return ok

    def admit(
        self,
        priority: str,
        wait: bool = False,
        timeout_s: Optional[float] = None,
        abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Admit one task or raise :class:`ZenQueueFull`.

        ``wait=True`` blocks until a slot frees (optionally bounded by
        ``timeout_s``); ``abort`` is polled on every wakeup so a
        closing engine can unblock waiters.
        """
        deadline = (
            None if timeout_s is None else self._clock() + timeout_s
        )
        with self._cond:
            while True:
                if self._admit_locked(priority):
                    return
                timed_out = (
                    deadline is not None and self._clock() >= deadline
                )
                aborted = abort is not None and abort()
                if not wait or timed_out or aborted:
                    self.rejected[priority] += 1
                    limit = self.limit_for(priority)
                    depth = sum(self._counts.values())
                    raise ZenQueueFull(
                        f"admission queue full for priority "
                        f"{priority!r} (depth {depth}, limit {limit}"
                        + (", engine closing" if aborted else "")
                        + (
                            f", waited {timeout_s}s" if timed_out else ""
                        )
                        + ")",
                        priority=priority,
                        depth=depth,
                        limit=limit,
                    )
                # Bounded waits double as an abort/deadline poll: a
                # release() notify normally wakes us immediately.
                remaining = 0.05
                if deadline is not None:
                    remaining = min(
                        remaining, max(0.0, deadline - self._clock())
                    )
                self._cond.wait(timeout=remaining)

    def release(self, priority: str) -> None:
        """Return one slot (called exactly once per finished task)."""
        with self._cond:
            if self._counts.get(priority, 0) > 0:
                self._counts[priority] -= 1
            self._cond.notify_all()


class BrownoutController:
    """Hysteretic normal/brownout mode machine.

    ``observe(utilization, sheds)`` is called from the dispatcher loop
    (and opportunistically from stat readers); it returns the current
    mode.  Stress — utilization at/above ``enter_utilization`` or a
    positive shed count — flips the mode to brownout immediately and
    re-arms the recovery window.  Recovery back to normal requires
    utilization at/below ``exit_utilization`` and a full ``window_s``
    of continuous calm since the last stress signal.
    """

    def __init__(
        self,
        enter_utilization: float = 0.75,
        exit_utilization: float = 0.5,
        window_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < enter_utilization <= 1.0:
            raise ValueError(
                "enter_utilization must be in (0, 1], got "
                f"{enter_utilization!r}"
            )
        if not 0.0 <= exit_utilization <= enter_utilization:
            raise ValueError(
                "exit_utilization must be in [0, enter_utilization], "
                f"got {exit_utilization!r}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s!r}")
        self.enter_utilization = enter_utilization
        self.exit_utilization = exit_utilization
        self.window_s = window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._mode = NORMAL
        self._last_stress = -float("inf")
        self._entered = 0
        self._exited = 0
        #: (at, from_mode, to_mode, reason) transition log.
        self.transitions: List[Tuple[float, str, str, str]] = []

    @property
    def mode(self) -> str:
        with self._lock:
            return self._mode

    def observe(self, utilization: float, sheds: int = 0) -> str:
        """Feed one stress sample; returns the (possibly new) mode."""
        now = self._clock()
        with self._lock:
            stressed = sheds > 0 or utilization >= self.enter_utilization
            if stressed:
                self._last_stress = now
                if self._mode == NORMAL:
                    reason = (
                        f"shed x{sheds}"
                        if sheds > 0
                        else f"utilization {utilization:.2f}"
                    )
                    self._mode = BROWNOUT
                    self._entered += 1
                    self.transitions.append(
                        (now, NORMAL, BROWNOUT, reason)
                    )
            elif (
                self._mode == BROWNOUT
                and utilization <= self.exit_utilization
                and now - self._last_stress >= self.window_s
            ):
                self._mode = NORMAL
                self._exited += 1
                self.transitions.append(
                    (
                        now,
                        BROWNOUT,
                        NORMAL,
                        f"calm {now - self._last_stress:.2f}s",
                    )
                )
            return self._mode

    def detail(self) -> Dict[str, object]:
        """Rich nested view for ``overload_stats()`` and status pages."""
        with self._lock:
            return {
                "mode": self._mode,
                "enter_utilization": self.enter_utilization,
                "exit_utilization": self.exit_utilization,
                "window_s": self.window_s,
                "transitions": [
                    {"at": at, "from": frm, "to": to, "reason": reason}
                    for at, frm, to, reason in self.transitions
                ],
            }

    # Shared counter protocol.
    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "browned_out": float(self._mode == BROWNOUT),
                "entered": float(self._entered),
                "exited": float(self._exited),
            }

    def delta(
        self, before: Dict[str, float], after: Dict[str, float]
    ) -> Dict[str, float]:
        return {
            key: after.get(key, 0.0) - before.get(key, 0.0)
            for key in set(before) | set(after)
        }

    def reset_counters(self) -> None:
        with self._lock:
            self._entered = 0
            self._exited = 0


class HedgeTracker:
    """Online latency quantiles driving the hedge-launch delay.

    Keeps the last ``maxlen`` successful per-attempt service times and
    derives ``delay() = max(min_delay_s, quantile * factor)``.  With a
    ``fixed_delay_s`` override the tracker is bypassed entirely
    (deterministic tests, operators who know their SLO).  Not
    thread-safe beyond CPython list-append atomicity — the dispatcher
    is the only writer, and a torn read in ``delay()`` is harmless.
    """

    def __init__(
        self,
        quantile: float = 0.95,
        factor: float = 1.5,
        min_samples: int = 10,
        min_delay_s: float = 0.001,
        fixed_delay_s: Optional[float] = None,
        maxlen: int = 512,
    ):
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile!r}")
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor!r}")
        if min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {min_samples!r}"
            )
        self.quantile = quantile
        self.factor = factor
        self.min_samples = min_samples
        self.min_delay_s = min_delay_s
        self.fixed_delay_s = fixed_delay_s
        self._samples: Deque[float] = deque(maxlen=maxlen)
        self._observed = 0

    def observe(self, elapsed_s: float) -> None:
        if elapsed_s >= 0:
            self._samples.append(elapsed_s)
            self._observed += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self) -> Optional[float]:
        """Nearest-rank quantile of the observed service times."""
        samples = sorted(self._samples)
        if not samples:
            return None
        rank = max(
            0, min(len(samples) - 1, int(self.quantile * len(samples)) - 1)
        )
        if self.quantile * len(samples) > rank + 1:
            rank += 1
        return samples[min(rank, len(samples) - 1)]

    def delay(self) -> Optional[float]:
        """Current hedge delay, or None while hedging is not yet armed."""
        if self.fixed_delay_s is not None:
            return self.fixed_delay_s
        if len(self._samples) < self.min_samples:
            return None
        p = self.percentile()
        if p is None:
            return None
        return max(self.min_delay_s, p * self.factor)

    # Shared counter protocol.
    def snapshot(self) -> Dict[str, float]:
        delay = self.delay()
        return {
            "observed": float(self._observed),
            "samples": float(len(self._samples)),
            "armed": float(delay is not None),
            "delay_s": float(delay) if delay is not None else 0.0,
        }

    def delta(
        self, before: Dict[str, float], after: Dict[str, float]
    ) -> Dict[str, float]:
        return {
            key: after.get(key, 0.0) - before.get(key, 0.0)
            for key in set(before) | set(after)
        }

    def reset_counters(self) -> None:
        self._observed = 0
