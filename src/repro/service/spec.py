"""Picklable query descriptions for the fault-isolated query engine.

A :class:`QuerySpec` is everything a subprocess worker needs to run one
verification query: *how to rebuild the model* (a picklable builder
reference, since a built :class:`~repro.core.function.ZenFunction`
cannot cross a process boundary), *which analysis to run* (``find`` /
``verify`` / ``generate_inputs`` / ``transformer`` / ``evaluate`` /
``call``), and the knobs PR 2 introduced (backend, list bound,
cooperative :class:`~repro.core.budget.Budget`) plus the *hard* limits
only a process boundary can enforce (kill-based wall clock, RSS cap).

:func:`run_spec` executes a spec in the current process; the worker
loop calls it, and callers can use it directly for an in-process dry
run of a spec before shipping it to the pool.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..core.budget import Budget, start_meter
from ..core.function import DEFAULT_MAX_LIST_LENGTH, ZenFunction
from ..errors import ZenTypeError
from ..telemetry.spans import TRACER
from .admission import PRIORITIES

__all__ = ["QuerySpec", "clamp_spec_deadline", "resolve_ref", "run_spec"]

if False:  # typing-only, avoids a runtime import cycle
    from .cache import ModelCache

#: Analyses a spec may request.  "call" runs an arbitrary picklable
#: callable (used for baseline checks whose result is plain data).
QUERY_KINDS = (
    "find",
    "verify",
    "generate_inputs",
    "transformer",
    "evaluate",
    "call",
)

_SERVICE_BACKENDS = ("sat", "bdd")


def resolve_ref(ref: Any) -> Any:
    """Resolve a ``"module:attribute"`` string to the named object.

    Non-string references (already-resolved callables) pass through
    untouched.  Dotted attribute paths after the colon are followed.
    """
    if not isinstance(ref, str):
        return ref
    module_name, _, attr_path = ref.partition(":")
    if not module_name or not attr_path:
        raise ZenTypeError(
            f"expected a 'module:attribute' reference, got {ref!r}"
        )
    try:
        target = importlib.import_module(module_name)
    except ImportError as error:
        raise ZenTypeError(
            f"cannot import module {module_name!r} for {ref!r}: {error}"
        ) from error
    for part in attr_path.split("."):
        try:
            target = getattr(target, part)
        except AttributeError as error:
            raise ZenTypeError(f"cannot resolve {ref!r}: {error}") from error
    return target


@dataclass(frozen=True)
class QuerySpec:
    """A picklable description of one verification query.

    * ``builder`` — ``"module:attribute"`` reference (or picklable
      top-level callable) resolving to a ZenFunction, an annotated
      model function, or a builder callable invoked with
      ``builder_args``/``builder_kwargs`` (see
      :meth:`ZenFunction.from_ref`).  For ``kind="call"`` the resolved
      object is called directly with ``args`` and its (picklable)
      result is the answer.
    * ``kind`` — one of ``find`` / ``verify`` / ``generate_inputs`` /
      ``transformer`` / ``evaluate`` / ``call``.
    * ``predicate`` — optional reference to the find/verify property,
      resolved the same way as ``builder``.
    * ``backend`` / ``max_list_length`` / ``budget`` / ``validate`` —
      forwarded to the analysis exactly as in the in-process API.
      Backends must be named (``"sat"``/``"bdd"``): instances are
      process-local and cannot be shipped to a worker.
    * ``timeout_s`` — *hard* wall-clock limit; the parent kills the
      worker when it trips (``None`` = the engine's default).
    * ``rss_limit_bytes`` — additional address space the query may
      allocate beyond the worker's usage at task start; the worker
      enforces it with ``RLIMIT_AS`` so a blowup raises MemoryError
      inside the worker instead of taking down the machine.
    * ``args`` — concrete inputs for ``evaluate`` / ``call``.
    * ``label`` — free-form tag echoed through results and attempt
      records.
    * ``trace`` — when True, the executing process records a trace of
      the query (a ``task.<kind>`` root span over the compile/solve
      instrumentation) and ships the serialized span tree back in the
      result payload under ``"spans"``.  The engine sets this
      automatically when the parent's tracer is enabled.
    * ``use_cache`` — when True (default) a worker may serve the
      builder resolution from its warm
      :class:`~repro.service.cache.ModelCache`; set False to force a
      cold rebuild (differential cold-vs-warm checks).
    * ``priority`` — admission class (``"interactive"`` / ``"batch"``
      / ``"fuzz"``).  Interactive work is never shed and is admitted
      while any queue slot remains; batch and fuzz hit backpressure
      and load shedding first.
    * ``deadline_s`` — *client* deadline for the whole query: queue
      wait, every dispatch, every retry backoff, and the in-worker
      solve all decrement one budget.  Distinct from ``timeout_s``
      (the hard per-attempt kill).  Expiry raises
      :class:`~repro.errors.ZenQueryTimeout` with the attempt history.
    * ``hedge`` — per-query override of the engine's tail-latency
      hedging (None = use the engine default).
    """

    builder: Any
    kind: str = "find"
    builder_args: Tuple[Any, ...] = ()
    builder_kwargs: Dict[str, Any] = field(default_factory=dict)
    predicate: Any = None
    backend: str = "sat"
    max_list_length: int = DEFAULT_MAX_LIST_LENGTH
    budget: Optional[Budget] = None
    validate: bool = True
    max_inputs: int = 64
    args: Tuple[Any, ...] = ()
    timeout_s: Optional[float] = None
    rss_limit_bytes: Optional[int] = None
    label: str = ""
    trace: bool = False
    use_cache: bool = True
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    hedge: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ZenTypeError(
                f"QuerySpec.kind must be one of {QUERY_KINDS}, got "
                f"{self.kind!r}"
            )
        if not isinstance(self.backend, str) or (
            self.backend not in _SERVICE_BACKENDS
        ):
            raise ZenTypeError(
                "QuerySpec.backend must be a backend *name* "
                f"{_SERVICE_BACKENDS} (instances are process-local), got "
                f"{self.backend!r}"
            )
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise ZenTypeError(
                f"QuerySpec.budget must be a Budget or None, got "
                f"{self.budget!r} (meters are per-process state)"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ZenTypeError(
                f"QuerySpec.timeout_s must be positive, got {self.timeout_s!r}"
            )
        if self.priority not in PRIORITIES:
            raise ZenTypeError(
                f"QuerySpec.priority must be one of {PRIORITIES}, got "
                f"{self.priority!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ZenTypeError(
                "QuerySpec.deadline_s must be positive, got "
                f"{self.deadline_s!r}"
            )
        if self.hedge is not None and not isinstance(self.hedge, bool):
            raise ZenTypeError(
                f"QuerySpec.hedge must be True/False/None, got {self.hedge!r}"
            )

    def with_backend(self, backend: str) -> "QuerySpec":
        """A copy of this spec targeting a different backend."""
        if backend == self.backend:
            return self
        return replace(self, backend=backend)

    def with_trace(self, trace: bool = True) -> "QuerySpec":
        """A copy of this spec with tracing switched on (or off)."""
        if trace == self.trace:
            return self
        return replace(self, trace=trace)


#: Floor for clamped limits: a deadline that already expired still
#: ships a sliver of budget so the failure is attributed to the
#: deadline machinery, not to a zero-division or negative timeout.
MIN_REMAINING_S = 1e-3


def clamp_spec_deadline(
    spec: QuerySpec,
    remaining_s: Optional[float],
    budget_factor: float = 1.0,
) -> QuerySpec:
    """Shrink a spec's limits to a remaining client deadline.

    Deadline *propagation*: the engine computes how much of the
    client's ``deadline_s`` is left at dispatch time (after queue wait,
    earlier attempts, and backoff) and clamps both enforcement layers
    to it — the hard per-attempt ``timeout_s`` and the cooperative
    :class:`~repro.core.budget.Budget` deadline (attached fresh when
    the spec carries none, so even a budget-less spec stops
    cooperatively before the hard kill).  ``budget_factor`` < 1
    additionally shrinks the *cooperative* deadline (brownout mode);
    the hard timeout is left at the remaining deadline so well-behaved
    queries fail soft, never by the kill path.

    With ``remaining_s=None`` only the brownout shrink applies (and
    only to a budget the spec already carries).
    """
    if remaining_s is None:
        if budget_factor >= 1.0 or spec.budget is None:
            return spec
        base = spec.budget
        if base.deadline_s is None:
            return spec
        return replace(
            spec,
            budget=replace(
                base,
                deadline_s=max(
                    MIN_REMAINING_S, base.deadline_s * budget_factor
                ),
            ),
        )
    remaining = max(MIN_REMAINING_S, remaining_s)
    timeout = (
        remaining
        if spec.timeout_s is None
        else min(spec.timeout_s, remaining)
    )
    base = spec.budget if spec.budget is not None else Budget()
    soft = remaining * max(MIN_REMAINING_S, budget_factor)
    if base.deadline_s is not None:
        soft = min(base.deadline_s, soft)
    return replace(
        spec,
        timeout_s=timeout,
        budget=replace(base, deadline_s=max(MIN_REMAINING_S, soft)),
    )


def _build_function(
    spec: QuerySpec, cache: Optional["ModelCache"]
) -> Any:
    """Resolve the spec's model, via the warm cache when allowed.

    Returns ``(function, hit, entry)`` — ``hit`` is None when the
    cache was not consulted, and ``entry`` is the live
    :class:`~repro.service.cache.CacheEntry` (or None) so kinds with
    compiled artifacts (transformers) can reuse them.
    """
    if cache is not None and spec.use_cache:
        return cache.get_function(spec)
    return (
        ZenFunction.from_ref(
            spec.builder, *spec.builder_args, **spec.builder_kwargs
        ),
        None,
        None,
    )


def run_spec(
    spec: QuerySpec, cache: Optional["ModelCache"] = None
) -> Dict[str, Any]:
    """Execute a spec in the current process.

    Returns a picklable payload: ``answer`` (the analysis result),
    ``stats`` (the budget meter's final snapshot, ``{}`` when the spec
    carries no budget), and ``function`` (the model's name).  With
    ``spec.trace`` the payload additionally carries ``"spans"`` — the
    serialized trace of this execution (rooted at a ``task.<kind>``
    span) — so a parent process can merge a worker's timeline into its
    own.  With a ``cache`` (the worker's warm
    :class:`~repro.service.cache.ModelCache`), builder resolution may
    be served warm and the payload carries ``"cache_hit"``.  Raises
    whatever the underlying
    analysis raises — the worker loop converts exceptions into
    structured replies.
    """
    if not spec.trace:
        return _execute_spec(spec, cache)
    # A worker starts each task with a clean, disabled tracer; an
    # in-process caller may already be tracing, in which case the root
    # joins the caller's tree *and* is shipped in the payload.
    fresh = not TRACER.enabled
    if fresh:
        TRACER.reset()
        TRACER.enable()
    # Named task.<kind> (not query.<kind>) so the wrapper does not
    # collide with the analysis's own query.* span in profile phases.
    root = TRACER.begin(
        f"task.{spec.kind}",
        {"label": spec.label, "backend": spec.backend},
    )
    try:
        payload = _execute_spec(spec, cache)
    finally:
        TRACER.finish(root)
        if fresh:
            TRACER.disable()
    payload["spans"] = [root.to_dict()]
    return payload


def _execute_spec(
    spec: QuerySpec, cache: Optional["ModelCache"] = None
) -> Dict[str, Any]:
    if spec.kind == "call":
        target = resolve_ref(spec.builder)
        if not callable(target):
            raise ZenTypeError(
                f"kind='call' needs a callable builder, got {target!r}"
            )
        answer = target(*spec.builder_args, *spec.args, **spec.builder_kwargs)
        return {"answer": answer, "stats": {}, "function": getattr(
            target, "__name__", "<call>"
        )}

    fn, cache_hit, entry = _build_function(spec, cache)
    meter = start_meter(spec.budget)
    predicate = resolve_ref(spec.predicate) if spec.predicate else None

    if spec.kind == "find":
        answer = fn.find(
            predicate,
            backend=spec.backend,
            max_list_length=spec.max_list_length,
            budget=meter,
            validate=spec.validate,
        )
    elif spec.kind == "verify":
        if predicate is None:
            raise ZenTypeError("kind='verify' needs a predicate (invariant)")
        answer = fn.verify(
            predicate,
            backend=spec.backend,
            max_list_length=spec.max_list_length,
            budget=meter,
            validate=spec.validate,
        )
    elif spec.kind == "generate_inputs":
        answer = fn.generate_inputs(
            max_inputs=spec.max_inputs,
            max_list_length=spec.max_list_length,
            budget=meter,
        )
    elif spec.kind == "transformer":
        # Transformers hold BDD nodes of a process-local manager —
        # exactly the compiled state the warm cache is for: the first
        # build is the expensive, crash/OOM-prone step, repeats reuse
        # the in-worker BDDs and only re-ship the picklable summary.
        transformer = None
        if entry is not None:
            transformer = entry.artifacts.get("transformer")
        if transformer is None:
            transformer = fn.transformer(budget=meter)
            if entry is not None:
                entry.artifacts["transformer"] = transformer
        answer = {"built": True, "function": fn.name}
        nodes = getattr(
            getattr(transformer, "context", None), "manager", None
        )
        if nodes is not None and hasattr(nodes, "num_nodes"):
            answer["manager_nodes"] = nodes.num_nodes
    elif spec.kind == "evaluate":
        answer = fn.evaluate(*spec.args)
    else:  # pragma: no cover - guarded by __post_init__
        raise ZenTypeError(f"unhandled kind {spec.kind!r}")

    payload: Dict[str, Any] = {
        "answer": answer,
        "stats": meter.stats() if meter is not None else {},
        "function": fn.name,
    }
    if cache_hit is not None:
        payload["cache_hit"] = cache_hit
    return payload
