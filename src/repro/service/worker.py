"""Subprocess worker: the isolated executor of query batches.

The worker side is deliberately dumb: receive a batch of specs over a
pipe, run them in order, stream one reply per spec back.  All policy
(retries, backoff, breakers, hard-deadline kills, sticky routing)
lives in the parent engine; all *state that needs an address space of
its own* lives here:

* **the warm model cache** — each worker keeps a process-global
  :class:`~repro.service.cache.ModelCache` of resolved builder refs
  and compiled artifacts, so repeated queries against the same model
  skip the resolve/rebuild that dominates tiny solves.  The parent
  piggybacks its cache epoch on every batch and may push an explicit
  ``("epoch", n)`` control message; either flushes a stale cache, and
  a respawned worker always starts cold at epoch 0;
* **RSS cap** — before a task with ``rss_limit_bytes``, the worker
  lowers its ``RLIMIT_AS`` soft limit to (current VM size + cap), so a
  BDD blowup or runaway allocation raises MemoryError inside the
  worker instead of invoking the machine's OOM killer.  The limit is
  restored afterwards; an OOM reply tells the parent to recycle the
  worker anyway (allocator state after a MemoryError is suspect);
* **crash containment** — ``os._exit``, aborts in native code, and
  signal kills only take down this process; the parent observes EOF on
  the pipe and the exit status.

Wire protocol (parent → worker):

* ``("batch", seq, epoch, (spec, ...), (deadline_at, ...))`` — run the
  specs in order.  ``deadline_at`` is the spec's absolute *client*
  deadline on the shared ``time.monotonic`` clock (``CLOCK_MONOTONIC``
  is system-wide on Linux, so parent-stamped deadlines are directly
  comparable here), or None.  A spec whose deadline already passed
  while queued behind its batch-mates is skipped with an ``"expired"``
  reply instead of burning worker time on an answer nobody waits for;
* ``("epoch", epoch)`` — flush the model cache if ``epoch`` is newer;
* ``None`` — shut down.

Worker → parent: one ``(seq, index, status, info)`` tuple per spec,
in submission order, so a single request round-trip carries N specs
and streams N results back (the parent keeps per-spec hard deadlines
by re-arming its kill timer as each reply lands).

Replies are always plain picklable data.  Exceptions are flattened to
``{"type", "message", "reason", "stats"}`` dictionaries — shipping
exception *objects* across the boundary would reintroduce arbitrary
unpickling of solver state into the parent.  Successful replies carry
``cache_hit`` plus the cache's counter snapshot so the parent can
aggregate hit rates without another round-trip.
"""

from __future__ import annotations

import gc
import os
import sys
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from ..telemetry.spans import TRACER
from .cache import ModelCache
from .spec import QuerySpec, run_spec

__all__ = ["worker_main", "execute_task", "describe_exception"]

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

_PAGE_SIZE = 4096

#: Default capacity of a worker's warm model cache (entries, LRU).
DEFAULT_CACHE_CAPACITY = 32


def _current_vm_bytes() -> Optional[int]:
    """Current virtual memory size of this process, if knowable.

    Reads ``/proc/self/statm`` (Linux).  ``RLIMIT_AS`` caps *address
    space*, which a Python process consumes hundreds of MB of before
    any query runs, so per-query caps are expressed as headroom above
    the current usage rather than as absolute values.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[0]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None


def _install_rss_limit(extra_bytes: int) -> Optional[Tuple[int, int]]:
    """Cap address space at (current usage + extra_bytes).

    Returns the previous ``RLIMIT_AS`` for restoration, or None when
    the platform cannot enforce the cap (the query then runs
    unlimited; the parent's hard timeout still bounds it).
    """
    if resource is None:
        return None
    current = _current_vm_bytes()
    if current is None:
        return None
    previous = resource.getrlimit(resource.RLIMIT_AS)
    soft = current + extra_bytes
    hard = previous[1]
    if hard != resource.RLIM_INFINITY:
        soft = min(soft, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):
        return None
    return previous


def _restore_rss_limit(previous: Optional[Tuple[int, int]]) -> None:
    if previous is None or resource is None:
        return
    try:
        resource.setrlimit(resource.RLIMIT_AS, previous)
    except (ValueError, OSError):  # pragma: no cover - kernel refusal
        pass


def _safe_text(value: Any) -> str:
    """``str`` that cannot itself raise (hostile __str__/__repr__)."""
    try:
        return str(value)
    except Exception:
        try:
            return repr(value)
        except Exception:
            return f"<unprintable {type(value).__name__}>"


def describe_exception(error: BaseException) -> Dict[str, Any]:
    """Flatten an exception into the picklable reply dictionary.

    Every field is built defensively: an exception whose ``__str__``
    raises, or whose ``stats`` attribute is not a mapping, still
    produces a structured reply instead of a second, masking failure
    inside the error path.
    """
    try:
        stats = dict(getattr(error, "stats", {}) or {})
    except Exception:
        stats = {}
    try:
        tb = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )[-4000:]
    except Exception:
        tb = ""
    return {
        "type": type(error).__name__,
        "message": _safe_text(error),
        "reason": _safe_text(getattr(error, "reason", "")) if getattr(
            error, "reason", ""
        ) else "",
        "stats": stats,
        "traceback": tb,
    }


def execute_task(
    spec: QuerySpec, cache: Optional[ModelCache] = None
) -> Tuple[str, Dict[str, Any]]:
    """Run one spec, translating every outcome to a (status, info) pair.

    Statuses: ``"ok"`` (info = run_spec payload), ``"oom"`` (the RSS
    cap tripped), ``"error"`` (info = flattened exception).  Every
    info dict carries ``elapsed_s`` — the worker-side wall clock of
    the attempt, free of pipe and scheduling skew.
    """
    previous = None
    started = time.perf_counter()
    try:
        if spec.rss_limit_bytes is not None:
            previous = _install_rss_limit(spec.rss_limit_bytes)
        info = run_spec(spec, cache)
        info["elapsed_s"] = time.perf_counter() - started
        return "ok", info
    except MemoryError as error:
        # Free headroom before building the reply: drop the limit
        # first, then collect whatever the unwound query left behind.
        _restore_rss_limit(previous)
        previous = None
        gc.collect()
        info = describe_exception(error)
        info["rss_limit_bytes"] = spec.rss_limit_bytes
        info["elapsed_s"] = time.perf_counter() - started
        return "oom", info
    except BaseException as error:  # noqa: BLE001 - boundary translation
        info = describe_exception(error)
        info["elapsed_s"] = time.perf_counter() - started
        return "error", info
    finally:
        _restore_rss_limit(previous)


def _degraded_reply(status: str, info: Any, send_error: Exception) -> Dict[str, Any]:
    """A guaranteed-picklable stand-in for a reply that failed to pickle.

    Failure replies keep their identity: the original exception's type,
    repr'd message, and traceback survive as plain strings (only the
    unpicklable payload — typically a ``stats`` dict holding live
    objects — is dropped), so the parent's attempt records and any
    fuzz artifact stay triageable.  Success replies degrade to the
    ``unpicklable-answer`` error the engine already understands.
    """
    if status in ("error", "oom") and isinstance(info, dict):
        original_type = _safe_text(info.get("type", "")) or "ZenServiceError"
        return {
            "type": original_type,
            "message": (
                f"{original_type}: {_safe_text(info.get('message', ''))!r} "
                f"(original worker reply failed to pickle: "
                f"{type(send_error).__name__}: {_safe_text(send_error)})"
            ),
            "reason": "unpicklable-error",
            "stats": {},
            "traceback": _safe_text(info.get("traceback", ""))[-4000:],
        }
    return {
        "type": "ZenServiceError",
        "message": "worker could not pickle the query "
        f"answer (pid {os.getpid()})",
        "reason": "unpicklable-answer",
        "stats": {},
        "traceback": "",
    }


def _send_reply(conn, seq: int, index: int, status: str, info) -> bool:
    """Ship one reply; degrade unpicklable payloads to structured errors.

    ``Connection.send`` pickles before writing, so a pickling failure
    leaves the pipe clean — the degraded reply below is the *only*
    bytes the parent sees for this spec, never a truncated frame.
    """
    try:
        conn.send((seq, index, status, info))
        return True
    except Exception as send_error:
        try:
            conn.send(
                (seq, index, "error", _degraded_reply(status, info, send_error))
            )
            return True
        except Exception:
            return False


def worker_main(conn, config: Optional[Dict[str, Any]] = None) -> None:
    """Entry point of a pool worker process.

    Loops on the pipe until EOF or a ``None`` shutdown sentinel.  With
    the ``spawn`` start method the parent passes its ``sys.path`` in
    ``config`` so ``module:attribute`` builder references resolve in
    the fresh interpreter.
    """
    config = config or {}
    for entry in reversed(config.get("sys_path", [])):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    # With the fork start method this process inherits the parent's
    # tracer — enabled flag and the forking thread's live span stack
    # included.  Neither belongs to this worker's timeline: tracing is
    # re-enabled per task by run_spec when the spec asks for it.
    TRACER.hard_reset()
    cache = ModelCache(
        capacity=config.get("cache_capacity", DEFAULT_CACHE_CAPACITY)
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        kind = message[0]
        if kind == "epoch":
            cache.bump_epoch(message[1])
            continue
        if kind != "batch":  # pragma: no cover - protocol guard
            continue
        _, seq, epoch, specs, deadlines = message
        cache.bump_epoch(epoch)
        for index, spec in enumerate(specs):
            deadline_at = (
                deadlines[index] if index < len(deadlines) else None
            )
            if deadline_at is not None and time.monotonic() >= deadline_at:
                expired = {
                    "type": "ZenQueryTimeout",
                    "message": (
                        "client deadline expired while the spec waited "
                        "behind its batch-mates in worker "
                        f"{os.getpid()}"
                    ),
                    "reason": "deadline",
                    "stats": {},
                    "traceback": "",
                    "elapsed_s": 0.0,
                }
                if not _send_reply(conn, seq, index, "expired", expired):
                    return
                continue
            evictions_before = cache.evictions
            status, info = execute_task(spec, cache)
            if status == "ok":
                info["cache_evicted"] = cache.evictions - evictions_before
                info["cache_stats"] = cache.snapshot()
            if not _send_reply(conn, seq, index, status, info):
                return
