"""The fault-isolated parallel query engine.

:class:`QueryEngine` executes :class:`~repro.service.spec.QuerySpec`
queries in a pool of subprocess workers, adding the guarantees the
in-process API cannot give:

* **hard limits** — wall-clock deadlines are enforced by killing the
  worker (SIGKILL, not a cooperative checkpoint) and RSS caps by
  ``RLIMIT_AS`` inside the worker, so a runaway CDCL loop, a BDD
  blowup in a non-checkpointed kernel, or a wedged interpreter cannot
  take the parent down;
* **crash isolation + respawn** — a worker that dies (``os._exit``,
  native abort, OOM kill) is observed via pipe EOF and its exit
  status, and a fresh worker replaces it before the next attempt;
* **retries with exponential backoff + jitter** — crash/timeout/OOM
  outcomes are retried up to ``retries`` times per backend rung;
* **per-backend circuit breakers** — N consecutive failures open the
  breaker and shed that backend's load onto the next rung of the
  fallback ladder (the same backend ladder as
  :func:`~repro.core.budget.solve_with_fallback`), half-opening after
  a cooldown;
* **a differential oracle** — :meth:`QueryEngine.run_differential`
  races the SAT and BDD backends on the same query in parallel
  workers; each answer is still concrete-replay-validated in its
  worker (PR 2), and if both complete with contradictory sat/unsat
  verdicts the engine raises
  :class:`~repro.errors.ZenBackendDisagreement`.

Every result carries its full attempt history — worker pids, attempt
counts, backoff delays, breaker states — for observability.

The engine is a single-threaded scheduler: one loop owns the pool,
multiplexes queries over idle workers, and watches deadlines.  It is
not itself thread-safe; share specs, not engines, across threads.
"""

from __future__ import annotations

import random
import sys
import time
from dataclasses import dataclass, field, replace
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    ZenBackendDisagreement,
    ZenCircuitOpen,
    ZenQueryFailed,
    ZenServiceError,
    ZenTypeError,
)
from ..telemetry.profile import QueryProfile, profile_from_spans
from ..telemetry.spans import TRACER, span
from .breaker import CircuitBreaker
from .spec import QuerySpec
from .worker import worker_main

__all__ = ["AttemptRecord", "QueryEngine", "ServiceResult"]

#: Exception types that indicate a misconfigured spec or model, not a
#: backend failure: no retry, no ladder, no breaker charge.
_CONFIG_ERRORS = frozenset(
    {"ZenTypeError", "ZenArityError", "ZenDepthError"}
)

#: Outcomes caused by the execution substrate rather than the query;
#: these are retried (with backoff) on the same backend.
_RETRYABLE = frozenset({"crash", "timeout", "oom"})


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt (or shed decision) in a query's execution history.

    * ``backend`` / ``attempt`` — the rung and the 1-based attempt
      number within it;
    * ``worker_pid`` — the subprocess that ran it (None for sheds);
    * ``outcome`` — ``ok`` / ``crash`` / ``timeout`` / ``oom`` /
      ``budget_exceeded`` / ``error`` / ``shed`` / ``cancelled``;
    * ``error_type`` / ``error`` — structured failure identity and
      message (empty on success);
    * ``backoff_s`` — the backoff delay scheduled *after* this attempt
      (0 when it was the last attempt on its rung);
    * ``elapsed_s`` — wall-clock duration of the attempt (also
      available as :attr:`duration_ms`);
    * ``queue_wait_s`` — how long the task sat eligible-but-unserved
      before this attempt was submitted (pool contention + backoff
      skew; 0 for sheds, which never reach a worker);
    * ``breaker_state`` — the backend's breaker state right after the
      outcome was recorded.
    """

    backend: str
    attempt: int
    worker_pid: Optional[int]
    outcome: str
    error_type: str = ""
    error: str = ""
    backoff_s: float = 0.0
    elapsed_s: float = 0.0
    queue_wait_s: float = 0.0
    breaker_state: str = ""

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration of this attempt in milliseconds."""
        return self.elapsed_s * 1000.0


@dataclass(frozen=True)
class ServiceResult:
    """A completed query plus its observability record.

    ``answer`` is exactly what the in-process analysis would have
    returned (already concrete-replay-validated for find/verify when
    the spec's ``validate`` flag is on).  ``attempts`` is the full
    :class:`AttemptRecord` history, ``stats`` the budget meter's final
    snapshot from the answering worker, and ``elapsed_s`` the query's
    total wall time in the engine including retries and backoff.

    For differential-oracle runs, ``agreed`` is True when both
    backends completed and concurred (None when only one side
    finished) and ``answers`` maps each backend to its answer.

    When the parent's tracer was enabled for the query, ``profile``
    is a :class:`~repro.telemetry.QueryProfile` built from the
    answering worker's span tree (compile/solve/kernel timings).
    """

    answer: Any
    backend: str
    kind: str
    label: str = ""
    function: str = ""
    worker_pid: Optional[int] = None
    attempts: Tuple[AttemptRecord, ...] = ()
    stats: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    agreed: Optional[bool] = None
    answers: Optional[Dict[str, Any]] = None
    profile: Optional[QueryProfile] = None

    @property
    def retried(self) -> bool:
        """True when more than one execution attempt was needed."""
        return sum(1 for a in self.attempts if a.outcome != "shed") > 1


class _WorkerHandle:
    """Owns one worker process and its pipe; respawnable in place."""

    def __init__(self, ctx, config: Dict[str, Any], index: int):
        self._ctx = ctx
        self._config = config
        self.index = index
        self.process = None
        self.conn = None
        self.restarts = -1  # first ensure() is a spawn, not a restart

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def ensure(self) -> None:
        """Spawn (or respawn) the worker if it is not running."""
        if self.alive:
            return
        self.reap()
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._config),
            daemon=True,
            name=f"repro-query-worker-{self.index}",
        )
        self.process.start()
        child_conn.close()  # parent keeps one end; EOF now detects death
        self.conn = parent_conn
        self.restarts += 1

    def kill(self) -> Optional[int]:
        """SIGKILL the worker (if alive), reap it, return the exitcode."""
        exitcode = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
            exitcode = self.process.exitcode
        self.reap()
        return exitcode

    def reap(self) -> None:
        """Release pipe and process objects of a dead worker."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        self.process = None

    def shutdown(self) -> None:
        """Polite stop: sentinel, short join, then kill."""
        if self.process is None:
            return
        if self.conn is not None and self.process.is_alive():
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=1.0)
        self.kill()


class _Task:
    """Mutable scheduler state for one query."""

    __slots__ = (
        "index",
        "spec",
        "ladder",
        "ladder_pos",
        "attempt",
        "seq",
        "ready_at",
        "deadline",
        "submitted_at",
        "enqueued_at",
        "queue_wait_s",
        "started_at",
        "finished_at",
        "attempts",
        "result",
        "error",
        "group",
        "done",
    )

    def __init__(self, index: int, spec: QuerySpec, ladder: Sequence[str]):
        self.index = index
        self.spec = spec
        self.ladder = list(ladder)
        self.ladder_pos = 0
        self.attempt = 0  # retries used on the current rung
        self.seq = -1
        self.ready_at = 0.0
        self.deadline: Optional[float] = None
        self.submitted_at = 0.0
        self.enqueued_at = 0.0
        self.queue_wait_s = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts: List[AttemptRecord] = []
        self.result: Optional[ServiceResult] = None
        self.error: Optional[ZenServiceError] = None
        self.group: Optional[Dict[str, Any]] = None
        self.done = False

    @property
    def backend(self) -> str:
        # Clamp: a task whose final rung just failed sits one past the
        # end until the scheduler finish-fails it.
        return self.ladder[min(self.ladder_pos, len(self.ladder) - 1)]

    def finish(self, now: float) -> None:
        self.finished_at = now
        self.done = True


class QueryEngine:
    """A pool of subprocess workers executing verification queries.

    Use as a context manager (workers are killed on exit)::

        with QueryEngine(pool_size=4) as engine:
            result = engine.run(QuerySpec(builder="mymodels:acl_model"))
            oracle = engine.run_differential(
                QuerySpec(builder="mymodels:acl_model")
            )
    """

    def __init__(
        self,
        pool_size: int = 2,
        *,
        retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        jitter_s: float = 0.02,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        default_timeout_s: Optional[float] = 60.0,
        backends: Sequence[str] = ("sat", "bdd"),
        start_method: Optional[str] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if pool_size < 1:
            raise ZenTypeError(f"pool_size must be >= 1, got {pool_size!r}")
        if retries < 0:
            raise ZenTypeError(f"retries must be >= 0, got {retries!r}")
        if not backends:
            raise ZenTypeError("QueryEngine needs at least one backend")
        if start_method is None:
            # fork shares the parent's imported modules (cheap spawn,
            # builder refs always resolve); spawn is the portable
            # fallback and gets sys.path shipped in the worker config.
            methods = get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.pool_size = pool_size
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.default_timeout_s = default_timeout_s
        self.backends = tuple(backends)
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._seq = 0
        self._closed = False
        self._ctx = get_context(start_method)
        config = {"sys_path": list(sys.path)}
        self._workers = [
            _WorkerHandle(self._ctx, config, i) for i in range(pool_size)
        ]
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown_s=breaker_cooldown_s,
                clock=clock,
                name=name,
            )
            for name in self.backends
        }

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker (sentinel, then SIGKILL stragglers)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            handle.shutdown()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- observability ---------------------------------------------------

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """The per-backend circuit breakers (live objects)."""
        return dict(self._breakers)

    def breaker_snapshots(self) -> Dict[str, dict]:
        """Picklable snapshot of every breaker's state and history."""
        return {name: b.snapshot() for name, b in self._breakers.items()}

    def worker_pids(self) -> List[Optional[int]]:
        """Current pid of each pool slot (None = not spawned)."""
        return [handle.pid for handle in self._workers]

    def total_restarts(self) -> int:
        """Worker respawns performed since the engine started."""
        return sum(max(0, handle.restarts) for handle in self._workers)

    # -- public API ------------------------------------------------------

    def run(
        self, spec: QuerySpec, *, fallback: bool = True
    ) -> ServiceResult:
        """Execute one query; raise its structured error on failure.

        With ``fallback`` (default) the query ladders across the
        engine's backends, preferred backend first; without it only
        ``spec.backend`` is tried.
        """
        outcome = self.run_many([spec], fallback=fallback)[0]
        if isinstance(outcome, ZenServiceError):
            raise outcome
        return outcome

    def run_many(
        self, specs: Sequence[QuerySpec], *, fallback: bool = True
    ) -> List[Union[ServiceResult, ZenServiceError]]:
        """Execute a portfolio of queries across the pool in parallel.

        Returns one entry per spec, in order: a :class:`ServiceResult`
        on success or the structured :class:`ZenServiceError` the
        query ended with (not raised, so one poisoned query cannot
        mask the rest of the portfolio).
        """
        self._check_open()
        tasks = [
            _Task(i, spec, self._ladder(spec, fallback))
            for i, spec in enumerate(specs)
        ]
        with span("service.run_many", queries=len(specs)):
            self._execute(tasks)
        out: List[Union[ServiceResult, ZenServiceError]] = []
        for task in tasks:
            out.append(task.result if task.result is not None else task.error)
        return out

    def run_differential(
        self,
        spec: Union[QuerySpec, Dict[str, QuerySpec]],
        backends: Sequence[str] = ("sat", "bdd"),
        *,
        race: bool = False,
    ) -> ServiceResult:
        """Cross-check a find/verify query across two backends.

        Both backends run the same query in parallel workers (each
        answer concrete-replay-validated in its worker).  Semantics:

        * both complete and agree on satisfiability → the
          first-finished result, ``agreed=True``, ``answers`` holding
          both sides;
        * both complete and *contradict* (one found a validated
          witness, the other proved none exists) → raise
          :class:`ZenBackendDisagreement`;
        * one side fails (crash/timeout/budget/breaker) → the
          survivor's validated answer, ``agreed=None``;
        * both fail → :class:`ZenQueryFailed` with the combined
          attempt history.

        With ``race=True`` the first *sound* answer wins immediately
        and the other worker is cancelled (lower latency, no
        cross-check unless the slower side already finished).  `spec`
        may also be a dict mapping backend name to spec — the two
        sides are then expected to be semantically equivalent queries
        (useful for oracle testing and staged encodings).
        """
        self._check_open()
        if isinstance(spec, dict):
            sides = {b: s.with_backend(b) for b, s in spec.items()}
        else:
            sides = {b: spec.with_backend(b) for b in backends}
        if len(sides) < 2:
            raise ZenTypeError(
                f"differential mode needs two backends, got {list(sides)}"
            )
        for name, side in sides.items():
            if side.kind not in ("find", "verify"):
                raise ZenTypeError(
                    "differential mode compares find/verify answers, got "
                    f"kind={side.kind!r} for backend {name!r}"
                )
        tasks = [
            _Task(i, side, [name])
            for i, (name, side) in enumerate(sides.items())
        ]
        group = {"race": race, "tasks": tasks}
        for task in tasks:
            task.group = group
        with span(
            "service.run_differential", backends=list(sides), race=race
        ):
            self._execute(tasks)

        combined: Tuple[AttemptRecord, ...] = tuple(
            record for task in tasks for record in task.attempts
        )
        finished = [t for t in tasks if t.result is not None]
        if len(finished) == len(tasks):
            answers = {t.ladder[0]: t.result.answer for t in tasks}
            verdicts = {b: a is not None for b, a in answers.items()}
            if len(set(verdicts.values())) > 1:
                raise ZenBackendDisagreement(
                    "differential oracle: backends disagree on "
                    f"satisfiability ({verdicts}); each side passed its "
                    "own validation, so at least one encoding is unsound",
                    answers=answers,
                    attempts=combined,
                )
            winner = min(finished, key=lambda t: t.finished_at)
            return replace(
                winner.result,
                attempts=combined,
                agreed=True,
                answers=answers,
            )
        if finished:
            winner = min(finished, key=lambda t: t.finished_at)
            answers = {t.ladder[0]: t.result.answer for t in finished}
            return replace(
                winner.result,
                attempts=combined,
                agreed=None,
                answers=answers,
            )
        raise ZenQueryFailed(
            "differential oracle: every backend failed",
            attempts=combined,
        )

    # -- scheduler -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ZenServiceError("QueryEngine is closed")

    def _ladder(self, spec: QuerySpec, fallback: bool) -> List[str]:
        if not fallback:
            return [spec.backend]
        ladder = [spec.backend]
        ladder.extend(b for b in self.backends if b != spec.backend)
        return ladder

    def _backoff_delay(self, attempt: int) -> float:
        base = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        return min(self.backoff_max_s, base) + self._rng.uniform(
            0.0, self.jitter_s
        )

    def _execute(self, tasks: List[_Task]) -> None:
        pending: List[_Task] = list(tasks)
        inflight: Dict[_WorkerHandle, _Task] = {}
        enqueue_time = self._clock()
        for task in tasks:
            task.enqueued_at = enqueue_time
        try:
            while not all(task.done for task in tasks):
                now = self._clock()
                self._fill_idle_workers(pending, inflight, now)
                if all(task.done for task in tasks):
                    break
                if not inflight:
                    waits = [t.ready_at for t in pending if not t.done]
                    if not waits:  # pragma: no cover - defensive
                        break
                    self._sleep(max(min(waits) - now, 0.001))
                    continue
                self._wait_and_collect(pending, inflight)
                self._enforce_deadlines(pending, inflight)
                self._cancel_raced(pending, inflight)
        finally:
            # Never leave an orphaned in-flight query running (e.g. an
            # exception such as ZenBackendDisagreement raised upward).
            for handle in list(inflight):
                handle.kill()

    def _fill_idle_workers(self, pending, inflight, now) -> None:
        for handle in self._workers:
            if handle in inflight:
                continue
            # A launch can finish a task without occupying the worker
            # (ladder exhausted, all rungs shed): keep feeding this
            # handle until it is busy or nothing is ready.
            while handle not in inflight:
                task = self._next_ready(pending, now)
                if task is None:
                    return
                pending.remove(task)
                self._launch(task, handle, pending, inflight, now)

    def _next_ready(self, pending, now) -> Optional[_Task]:
        for task in list(pending):
            if task.done:
                pending.remove(task)
                continue
            if task.ready_at <= now:
                return task
        return None

    def _launch(self, task, handle, pending, inflight, now) -> None:
        """Submit `task` to `handle`, advancing past shed rungs.

        Finishes the task in place when its ladder is exhausted.
        """
        while True:
            if task.ladder_pos >= len(task.ladder):
                self._finish_failure(task, now)
                return
            backend = task.backend
            breaker = self._breakers.setdefault(
                backend,
                CircuitBreaker(clock=self._clock, name=backend),
            )
            if not breaker.allow():
                task.attempts.append(
                    AttemptRecord(
                        backend=backend,
                        attempt=task.attempt + 1,
                        worker_pid=None,
                        outcome="shed",
                        error_type="ZenCircuitOpen",
                        error=f"circuit open for backend {backend!r}",
                        breaker_state=breaker.state,
                    )
                )
                task.ladder_pos += 1
                task.attempt = 0
                continue
            handle.ensure()
            spec = task.spec.with_backend(backend)
            if TRACER.enabled:
                # Parent is profiling: have the worker trace this
                # execution and ship its span tree back in the reply.
                spec = spec.with_trace(True)
            self._seq += 1
            task.seq = self._seq
            task.submitted_at = now
            # Queue wait: time between becoming eligible (enqueue, or
            # the end of the previous attempt's backoff) and now.
            task.queue_wait_s = max(
                0.0, now - max(task.ready_at, task.enqueued_at)
            )
            if task.started_at is None:
                task.started_at = now
            timeout = (
                spec.timeout_s
                if spec.timeout_s is not None
                else self.default_timeout_s
            )
            task.deadline = None if timeout is None else now + timeout
            try:
                handle.conn.send((task.seq, spec))
            except (OSError, ValueError):
                handle.kill()  # broken pipe: respawn and retry the send
                continue
            inflight[handle] = task
            return

    def _wait_and_collect(self, pending, inflight) -> None:
        now = self._clock()
        timeouts = [
            task.deadline - now
            for task in inflight.values()
            if task.deadline is not None
        ]
        # Tasks already ready but queued behind busy workers must not
        # turn the wait into a spin: only *future* wakeups count.
        timeouts.extend(
            task.ready_at - now
            for task in pending
            if not task.done and task.ready_at > now
        )
        timeout = max(0.0, min(timeouts)) if timeouts else None
        ready = connection.wait(
            [h.conn for h in inflight], timeout=timeout
        )
        now = self._clock()
        by_conn = {h.conn: h for h in inflight}
        for conn in ready:
            handle = by_conn.get(conn)
            if handle is None or handle not in inflight:
                continue
            task = inflight[handle]
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._on_worker_death(task, handle, pending, inflight, now)
                continue
            try:
                seq, status, info = message
            except (TypeError, ValueError):
                self._on_worker_death(task, handle, pending, inflight, now)
                continue
            if seq != task.seq:
                continue  # stale reply from a pre-kill submission
            self._on_reply(task, handle, status, info, pending, inflight, now)

    def _enforce_deadlines(self, pending, inflight) -> None:
        now = self._clock()
        for handle, task in list(inflight.items()):
            if task.deadline is None or now < task.deadline:
                continue
            del inflight[handle]
            pid = handle.pid
            handle.kill()
            timeout = (
                task.spec.timeout_s
                if task.spec.timeout_s is not None
                else self.default_timeout_s
            )
            self._record_failure(
                task,
                outcome="timeout",
                error_type="ZenQueryTimeout",
                message=(
                    f"hard deadline of {timeout}s exceeded; worker pid "
                    f"{pid} killed"
                ),
                pid=pid,
                pending=pending,
                now=now,
                retryable=True,
            )

    def _cancel_raced(self, pending, inflight) -> None:
        """In race mode, cancel siblings once one task has an answer."""
        winners = [
            task
            for task in list(inflight.values()) + pending
            if task.group is not None and task.group.get("race")
        ]
        if not winners:
            return
        now = self._clock()
        groups = {id(t.group): t.group for t in winners}
        for group in groups.values():
            if not any(t.result is not None for t in group["tasks"]):
                continue
            for task in group["tasks"]:
                if task.done:
                    continue
                for handle, running in list(inflight.items()):
                    if running is task:
                        del inflight[handle]
                        handle.kill()
                if task in pending:
                    pending.remove(task)
                task.attempts.append(
                    AttemptRecord(
                        backend=task.backend,
                        attempt=task.attempt + 1,
                        worker_pid=None,
                        outcome="cancelled",
                        error="cancelled: sibling answered first (race mode)",
                    )
                )
                task.error = ZenQueryFailed(
                    "cancelled: sibling answered first (race mode)",
                    attempts=task.attempts,
                    label=task.spec.label,
                )
                task.finish(now)

    # -- outcome handling ------------------------------------------------

    def _on_reply(self, task, handle, status, info, pending, inflight, now):
        del inflight[handle]
        backend = task.backend
        breaker = self._breakers[backend]
        elapsed = now - task.submitted_at
        pid = handle.pid
        if status == "ok":
            breaker.record_success()
            task.attempts.append(
                AttemptRecord(
                    backend=backend,
                    attempt=task.attempt + 1,
                    worker_pid=pid,
                    outcome="ok",
                    elapsed_s=elapsed,
                    queue_wait_s=task.queue_wait_s,
                    breaker_state=breaker.state,
                )
            )
            profile = None
            worker_spans = info.get("spans")
            if worker_spans and TRACER.enabled:
                # Merge the worker's timeline into the parent trace
                # (the foreign pid keeps it on its own track) and
                # condense it into the result's profile.
                for tree in worker_spans:
                    TRACER.adopt(tree)
                profile = profile_from_spans(
                    worker_spans,
                    query=f"query.{task.spec.kind}",
                    backend=backend,
                    counters=dict(info.get("stats", {})),
                )
            task.result = ServiceResult(
                answer=info.get("answer"),
                backend=backend,
                kind=task.spec.kind,
                label=task.spec.label,
                function=info.get("function", ""),
                worker_pid=pid,
                attempts=tuple(task.attempts),
                stats=dict(info.get("stats", {})),
                elapsed_s=now - (task.started_at or now),
                profile=profile,
            )
            task.finish(now)
            return
        if status == "oom":
            # Even a survived MemoryError leaves allocator state
            # suspect: recycle the worker before its next task.
            handle.kill()
            self._record_failure(
                task,
                outcome="oom",
                error_type=info.get("type", "MemoryError"),
                message=(
                    f"worker pid {pid} hit its RSS cap "
                    f"({info.get('rss_limit_bytes')} extra bytes): "
                    f"{info.get('message', '')}"
                ),
                pid=pid,
                pending=pending,
                now=now,
                retryable=True,
            )
            return
        # status == "error": structured exception from the worker.
        error_type = info.get("type", "")
        message = info.get("message", "")
        if error_type in _CONFIG_ERRORS:
            task.attempts.append(
                AttemptRecord(
                    backend=backend,
                    attempt=task.attempt + 1,
                    worker_pid=pid,
                    outcome="error",
                    error_type=error_type,
                    error=message,
                    elapsed_s=elapsed,
                    queue_wait_s=task.queue_wait_s,
                    breaker_state=breaker.state,
                )
            )
            task.error = ZenQueryFailed(
                f"query is misconfigured ({error_type}: {message}); "
                "not retried",
                attempts=task.attempts,
                label=task.spec.label,
            )
            task.finish(now)
            return
        outcome = (
            "budget_exceeded"
            if error_type == "ZenBudgetExceeded"
            else "error"
        )
        self._record_failure(
            task,
            outcome=outcome,
            error_type=error_type,
            message=message,
            pid=pid,
            pending=pending,
            now=now,
            # Budget exhaustion and solver errors are deterministic for
            # a given rung: move down the ladder instead of retrying.
            retryable=False,
            elapsed=elapsed,
        )

    def _on_worker_death(self, task, handle, pending, inflight, now):
        del inflight[handle]
        pid = handle.pid
        exitcode = handle.kill()
        if exitcode is not None and exitcode < 0:
            detail = f"killed by signal {-exitcode}"
        else:
            detail = f"exited with status {exitcode}"
        self._record_failure(
            task,
            outcome="crash",
            error_type="ZenWorkerCrash",
            message=f"worker pid {pid} died mid-query ({detail})",
            pid=pid,
            pending=pending,
            now=now,
            retryable=True,
        )

    def _record_failure(
        self,
        task,
        *,
        outcome,
        error_type,
        message,
        pid,
        pending,
        now,
        retryable,
        elapsed=None,
    ):
        backend = task.backend
        breaker = self._breakers[backend]
        breaker.record_failure(outcome)
        attempt_number = task.attempt + 1
        backoff = 0.0
        if retryable and outcome in _RETRYABLE and task.attempt < self.retries:
            task.attempt += 1
            backoff = self._backoff_delay(task.attempt)
            task.ready_at = now + backoff
        else:
            task.ladder_pos += 1
            task.attempt = 0
            task.ready_at = now
        duration = elapsed if elapsed is not None else now - task.submitted_at
        task.attempts.append(
            AttemptRecord(
                backend=backend,
                attempt=attempt_number,
                worker_pid=pid,
                outcome=outcome,
                error_type=error_type,
                error=message,
                backoff_s=backoff,
                elapsed_s=duration,
                queue_wait_s=task.queue_wait_s,
                breaker_state=breaker.state,
            )
        )
        if TRACER.enabled:
            # Failed attempts ship no worker span tree (the reply is an
            # error, or the worker is dead); file a retroactive span so
            # retries are visible on the merged timeline.
            TRACER.record(
                f"attempt.{outcome}",
                TRACER.now_wall() - duration,
                duration,
                {
                    "backend": backend,
                    "attempt": attempt_number,
                    "error_type": error_type,
                    "backoff_s": round(backoff, 4),
                },
            )
        pending.append(task)  # _launch finish-fails it if the ladder is done

    def _finish_failure(self, task, now) -> None:
        executed = [a for a in task.attempts if a.outcome != "shed"]
        if not executed and task.attempts:
            task.error = ZenCircuitOpen(
                "every backend's circuit breaker is open; query "
                f"{task.spec.label or task.spec.kind!r} shed without "
                "executing",
                attempts=task.attempts,
            )
        else:
            summary = ", ".join(
                f"{a.backend}#{a.attempt}:{a.outcome}" for a in task.attempts
            )
            task.error = ZenQueryFailed(
                f"query failed after {len(executed)} attempt(s) across "
                f"{len(task.ladder)} backend rung(s) [{summary}]",
                attempts=task.attempts,
                label=task.spec.label,
            )
        task.finish(now)
