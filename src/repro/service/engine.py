"""The fault-isolated parallel query engine.

:class:`QueryEngine` executes :class:`~repro.service.spec.QuerySpec`
queries in a pool of subprocess workers, adding the guarantees the
in-process API cannot give:

* **hard limits** — wall-clock deadlines are enforced by killing the
  worker (SIGKILL, not a cooperative checkpoint) and RSS caps by
  ``RLIMIT_AS`` inside the worker, so a runaway CDCL loop, a BDD
  blowup in a non-checkpointed kernel, or a wedged interpreter cannot
  take the parent down;
* **crash isolation + respawn** — a worker that dies (``os._exit``,
  native abort, OOM kill) is observed via pipe EOF and its exit
  status, and a fresh worker replaces it before the next attempt.
  Benign in-worker exceptions come back as structured error replies
  and never recycle the worker; a builder that keeps killing workers
  trips per-ref crash-loop suppression after
  ``crash_loop_threshold`` worker deaths;
* **retries with exponential backoff + jitter** — crash/timeout/OOM
  outcomes are retried up to ``retries`` times per backend rung;
* **per-backend circuit breakers** — N consecutive failures open the
  breaker and shed that backend's load onto the next rung of the
  fallback ladder (the same backend ladder as
  :func:`~repro.core.budget.solve_with_fallback`), half-opening after
  a cooldown;
* **a differential oracle** — :meth:`QueryEngine.run_differential`
  races the SAT and BDD backends on the same query in parallel
  workers; each answer is still concrete-replay-validated in its
  worker (PR 2), and if both complete with contradictory sat/unsat
  verdicts the engine raises
  :class:`~repro.errors.ZenBackendDisagreement`.

Warm dispatch (PR 5)
--------------------

The dispatch path amortizes the per-query costs that made the pool
anti-scale on tiny solves:

* **warm workers** — each worker keeps a
  :class:`~repro.service.cache.ModelCache` of resolved builder refs
  and compiled artifacts; the engine owns the cache *epoch* and
  invalidates every worker with :meth:`invalidate_cache`;
* **sticky routing** — a task's builder ref hashes to a preferred
  worker so repeat queries land on a warm cache; idle workers steal
  foreign tasks only when the sticky worker is busy;
* **request batching** — one pipe round-trip carries up to
  ``max_batch_size`` specs and streams one reply per spec back, with
  the hard deadline re-armed per spec as replies land;
* **an asyncio-friendly front-end** — :meth:`submit` returns a
  :class:`concurrent.futures.Future`, :meth:`gather` collects, and
  :meth:`run_async` / :meth:`run_many_async` await the same futures
  from an event loop.

A persistent dispatcher thread owns the pool; the public API enqueues
tasks and waits on futures, so any number of caller threads (or one
event loop with thousands of in-flight queries) can share one engine.

Overload protection (PR 7)
--------------------------

The engine degrades *predictably* instead of queueing unboundedly:

* **admission control** — a bounded admission window
  (``max_queue_depth``) with per-priority headroom
  (:mod:`repro.service.admission`): ``interactive`` may use every
  slot, ``batch``/``fuzz`` hit :class:`~repro.errors.ZenQueueFull`
  backpressure earlier (fast-reject by default, blocking with
  ``submit(..., wait=True)``);
* **load shedding** — at ``shed_threshold`` utilization the
  dispatcher drops queued ``batch``/``fuzz`` tasks (never
  ``interactive``) with a structured ``shed_overload`` attempt record
  and :class:`~repro.errors.ZenOverloadShed`;
* **deadline propagation** — ``QuerySpec.deadline_s`` is one budget
  for the query's whole life: queue wait, dispatch, retries, and the
  in-worker cooperative :class:`~repro.core.budget.Budget` all
  decrement it.  Tasks that expire in the queue fail without burning
  a worker; a retry that cannot finish inside the remaining deadline
  is never launched; batched specs that expired behind a slow
  batch-mate are skipped by the worker itself;
* **hedged requests** — with hedging enabled, a request still
  unanswered after a p95-derived delay is duplicated on a second,
  idle worker; the first reply wins and the loser is killed and
  charged to telemetry (``service.hedge.*``);
* **brownout mode** — sustained stress (shedding, or utilization at
  the brownout threshold) flips the engine into a degraded mode:
  fallback ladders shrink to one rung, cooperative budgets shrink by
  ``brownout_budget_factor``, hedging pauses, and non-interactive
  cold-cache work is shed (the warm fast path stays open).  Recovery
  is hysteretic (:class:`~repro.service.admission.BrownoutController`).

Every result carries its full attempt history — worker pids, attempt
counts, backoff delays, breaker states, cache hits, batch sizes — for
observability.
"""

from __future__ import annotations

import os
import random
import select
import sys
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field, replace
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    ZenBackendDisagreement,
    ZenCircuitOpen,
    ZenOverloadShed,
    ZenQueryFailed,
    ZenQueryTimeout,
    ZenServiceError,
    ZenTypeError,
)
from ..obs.recorder import RECORDER, FlightRecorder
from ..obs.rolling import LOG_BOUNDS, RollingHistogram
from ..obs.slo import SLOMonitor, SLOSpec
from ..obs.status import EngineStatus, write_status_file
from ..telemetry.metrics import METRICS
from ..telemetry.profile import QueryProfile, profile_from_spans
from ..telemetry.spans import TRACER, Span, span
from .admission import (
    BROWNOUT,
    NORMAL,
    PRIORITIES,
    PRIORITY_RANK,
    AdmissionController,
    BrownoutController,
    HedgeTracker,
)
from .breaker import OPEN as BREAKER_OPEN
from .breaker import CircuitBreaker
from .cache import ref_cache_key
from .spec import QuerySpec, clamp_spec_deadline
from .worker import worker_main

__all__ = ["AttemptRecord", "QueryEngine", "ServiceResult"]

#: Exception types that indicate a misconfigured spec or model, not a
#: backend failure: no retry, no ladder, no breaker charge.
_CONFIG_ERRORS = frozenset(
    {"ZenTypeError", "ZenArityError", "ZenDepthError"}
)

#: Outcomes caused by the execution substrate rather than the query;
#: these are retried (with backoff) on the same backend.
_RETRYABLE = frozenset({"crash", "timeout", "oom"})

#: Bucket edges of the ``service.batch.size`` histogram.
BATCH_SIZE_BOUNDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Queue waits shorter than this don't earn a span (scheduler noise).
_QUEUE_WAIT_SPAN_FLOOR_S = 0.005


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt (or shed decision) in a query's execution history.

    * ``backend`` / ``attempt`` — the rung and the 1-based attempt
      number within it;
    * ``worker_pid`` — the subprocess that ran it (None for sheds);
    * ``outcome`` — ``ok`` / ``crash`` / ``timeout`` / ``oom`` /
      ``budget_exceeded`` / ``error`` / ``shed`` / ``cancelled`` /
      ``crash_loop`` / ``shed_overload`` (dropped by load shedding) /
      ``deadline_expired`` (the client deadline ran out) /
      ``engine_shutdown`` (queued when the engine drained);
    * ``error_type`` / ``error`` — structured failure identity and
      message (empty on success);
    * ``backoff_s`` — the backoff delay scheduled *after* this attempt
      (0 when it was the last attempt on its rung);
    * ``elapsed_s`` — wall-clock duration of the attempt (also
      available as :attr:`duration_ms`);
    * ``queue_wait_s`` — how long the task sat eligible-but-unserved
      before this attempt was submitted (pool contention + backoff
      skew; 0 for sheds, which never reach a worker);
    * ``breaker_state`` — the backend's breaker state right after the
      outcome was recorded;
    * ``hedged`` — True when this attempt ran on the hedge lane (a
      tail-latency duplicate), not the primary dispatch.
    """

    backend: str
    attempt: int
    worker_pid: Optional[int]
    outcome: str
    error_type: str = ""
    error: str = ""
    backoff_s: float = 0.0
    elapsed_s: float = 0.0
    queue_wait_s: float = 0.0
    breaker_state: str = ""
    hedged: bool = False

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration of this attempt in milliseconds."""
        return self.elapsed_s * 1000.0


@dataclass(frozen=True)
class ServiceResult:
    """A completed query plus its observability record.

    ``answer`` is exactly what the in-process analysis would have
    returned (already concrete-replay-validated for find/verify when
    the spec's ``validate`` flag is on).  ``attempts`` is the full
    :class:`AttemptRecord` history, ``stats`` the budget meter's final
    snapshot from the answering worker, and ``elapsed_s`` the query's
    total wall time in the engine including retries and backoff.

    For differential-oracle runs, ``agreed`` is True when both
    backends completed and concurred (None when only one side
    finished) and ``answers`` maps each backend to its answer.

    When the parent's tracer was enabled for the query, ``profile``
    is a :class:`~repro.telemetry.QueryProfile` built from the
    answering worker's span tree (compile/solve/kernel timings).

    Warm-dispatch observability: ``cache_hit`` is True/False when the
    worker consulted its model cache (None when the spec opted out),
    and ``batch_size`` is how many specs shared the answering
    submission's round-trip.

    Overload observability: ``priority`` echoes the spec's admission
    class, ``queue_wait_s`` totals the eligible-but-unserved time
    across every attempt, and ``hedged`` is True when the winning
    answer came from the hedge lane rather than the primary dispatch.
    """

    answer: Any
    backend: str
    kind: str
    label: str = ""
    function: str = ""
    worker_pid: Optional[int] = None
    attempts: Tuple[AttemptRecord, ...] = ()
    stats: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    agreed: Optional[bool] = None
    answers: Optional[Dict[str, Any]] = None
    profile: Optional[QueryProfile] = None
    cache_hit: Optional[bool] = None
    batch_size: int = 1
    priority: str = "interactive"
    queue_wait_s: float = 0.0
    hedged: bool = False

    @property
    def retried(self) -> bool:
        """True when more than one execution attempt was needed."""
        return sum(1 for a in self.attempts if a.outcome != "shed") > 1


class _WorkerHandle:
    """Owns one worker process and its pipe; respawnable in place."""

    def __init__(self, ctx, config: Dict[str, Any], index: int):
        self._ctx = ctx
        self._config = config
        self.index = index
        self.process = None
        self.conn = None
        self.restarts = -1  # first ensure() is a spawn, not a restart

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def ensure(self) -> None:
        """Spawn (or respawn) the worker if it is not running."""
        if self.alive:
            return
        self.reap()
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._config),
            daemon=True,
            name=f"repro-query-worker-{self.index}",
        )
        self.process.start()
        child_conn.close()  # parent keeps one end; EOF now detects death
        self.conn = parent_conn
        self.restarts += 1

    def kill(self) -> Optional[int]:
        """SIGKILL the worker (if alive), reap it, return the exitcode."""
        exitcode = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
            exitcode = self.process.exitcode
        self.reap()
        return exitcode

    def reap(self) -> None:
        """Release pipe and process objects of a dead worker."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        self.process = None

    def shutdown(self) -> None:
        """Polite stop: sentinel, short join, then kill."""
        if self.process is None:
            return
        if self.conn is not None and self.process.is_alive():
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=1.0)
        self.kill()


class _Task:
    """Mutable scheduler state for one query."""

    __slots__ = (
        "index",
        "spec",
        "ladder",
        "ladder_pos",
        "attempt",
        "ref_key",
        "sticky_index",
        "ready_at",
        "deadline",
        "submitted_at",
        "enqueued_at",
        "queue_wait_s",
        "started_at",
        "finished_at",
        "attempts",
        "result",
        "error",
        "group",
        "done",
        "future",
        "trace_parent",
        "batch_size",
        "deadline_at",
        "admitted",
        "hedged",
        "launched",
        "total_queue_wait_s",
    )

    def __init__(
        self,
        index: int,
        spec: QuerySpec,
        ladder: Sequence[str],
        ref_key: str,
        sticky_index: int,
    ):
        self.index = index
        self.spec = spec
        self.ladder = list(ladder)
        self.ladder_pos = 0
        self.attempt = 0  # retries used on the current rung
        self.ref_key = ref_key
        self.sticky_index = sticky_index
        self.ready_at = 0.0
        self.deadline: Optional[float] = None
        self.submitted_at = 0.0
        self.enqueued_at = 0.0
        self.queue_wait_s = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts: List[AttemptRecord] = []
        self.result: Optional[ServiceResult] = None
        self.error: Optional[ZenServiceError] = None
        self.group: Optional[Dict[str, Any]] = None
        self.done = False
        self.future: "Future[ServiceResult]" = Future()
        self.trace_parent: Optional[Span] = None
        self.batch_size = 1
        #: Absolute client deadline (engine clock); None = no deadline.
        self.deadline_at: Optional[float] = None
        #: True while this task holds an admission slot.
        self.admitted = False
        #: True once a hedge duplicate has been launched for it.
        self.hedged = False
        #: True once the first dispatch marked the future RUNNING —
        #: after that, ``Future.cancel()`` is (correctly) refused.
        self.launched = False
        #: Queue wait accumulated across every attempt (the per-attempt
        #: value in ``queue_wait_s`` covers only the latest dispatch).
        self.total_queue_wait_s = 0.0

    @property
    def backend(self) -> str:
        # Clamp: a task whose final rung just failed sits one past the
        # end until the scheduler finish-fails it.
        return self.ladder[min(self.ladder_pos, len(self.ladder) - 1)]

    def finish(self, now: float) -> None:
        self.finished_at = now
        self.done = True


class _Batch:
    """One in-flight submission: N tasks sharing a worker round-trip.

    The worker executes the specs in order and streams one reply per
    spec; ``next_index`` is the spec currently executing, and
    ``deadline`` is re-armed from that spec's timeout each time a
    reply lands.
    """

    __slots__ = ("seq", "tasks", "next_index", "deadline", "hedge")

    def __init__(self, seq: int, tasks: List[_Task], hedge: bool = False):
        self.seq = seq
        self.tasks = tasks
        self.next_index = 0
        self.deadline: Optional[float] = None
        #: True for a tail-latency duplicate: its single task is also
        #: the current task of a primary batch, first reply wins, and
        #: this lane never charges breakers or consumes retries.
        self.hedge = hedge

    @property
    def current(self) -> _Task:
        return self.tasks[self.next_index]

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.tasks)


class QueryEngine:
    """A pool of subprocess workers executing verification queries.

    Use as a context manager (workers are killed on exit)::

        with QueryEngine(pool_size=4) as engine:
            result = engine.run(QuerySpec(builder="mymodels:acl_model"))
            future = engine.submit(QuerySpec(builder="mymodels:acl_model"))
            oracle = engine.run_differential(
                QuerySpec(builder="mymodels:acl_model")
            )
    """

    def __init__(
        self,
        pool_size: int = 2,
        *,
        retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        jitter_s: float = 0.02,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        default_timeout_s: Optional[float] = 60.0,
        backends: Sequence[str] = ("sat", "bdd"),
        start_method: Optional[str] = None,
        seed: int = 0,
        max_batch_size: int = 8,
        crash_loop_threshold: int = 3,
        cache_capacity: int = 32,
        max_queue_depth: Optional[int] = 10_000,
        shed_threshold: float = 0.9,
        brownout_enter: float = 0.75,
        brownout_exit: float = 0.5,
        brownout_window_s: float = 1.0,
        brownout_budget_factor: float = 0.5,
        hedge: bool = False,
        hedge_after_s: Optional[float] = None,
        hedge_quantile: float = 0.95,
        hedge_factor: float = 1.5,
        hedge_min_samples: int = 10,
        recorder: Optional[FlightRecorder] = None,
        bundle_dir: Optional[str] = None,
        slos: Optional[Sequence[SLOSpec]] = None,
        status_file: Optional[str] = None,
        status_interval_s: float = 1.0,
        latency_window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if pool_size < 1:
            raise ZenTypeError(f"pool_size must be >= 1, got {pool_size!r}")
        if retries < 0:
            raise ZenTypeError(f"retries must be >= 0, got {retries!r}")
        if not backends:
            raise ZenTypeError("QueryEngine needs at least one backend")
        if max_batch_size < 1:
            raise ZenTypeError(
                f"max_batch_size must be >= 1, got {max_batch_size!r}"
            )
        if crash_loop_threshold < 0:
            raise ZenTypeError(
                "crash_loop_threshold must be >= 0 (0 disables), got "
                f"{crash_loop_threshold!r}"
            )
        if cache_capacity < 1:
            raise ZenTypeError(
                f"cache_capacity must be >= 1, got {cache_capacity!r}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ZenTypeError(
                "max_queue_depth must be >= 1 or None (unbounded), got "
                f"{max_queue_depth!r}"
            )
        if not 0.0 < shed_threshold <= 1.0:
            raise ZenTypeError(
                f"shed_threshold must be in (0, 1], got {shed_threshold!r}"
            )
        if not 0.0 < brownout_budget_factor <= 1.0:
            raise ZenTypeError(
                "brownout_budget_factor must be in (0, 1], got "
                f"{brownout_budget_factor!r}"
            )
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ZenTypeError(
                f"hedge_after_s must be >= 0, got {hedge_after_s!r}"
            )
        if start_method is None:
            # fork shares the parent's imported modules (cheap spawn,
            # builder refs always resolve); spawn is the portable
            # fallback and gets sys.path shipped in the worker config.
            methods = get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.pool_size = pool_size
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.jitter_s = jitter_s
        self.default_timeout_s = default_timeout_s
        self.backends = tuple(backends)
        self.max_batch_size = max_batch_size
        self.crash_loop_threshold = crash_loop_threshold
        self.cache_capacity = cache_capacity
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._seq = 0
        self._closed = False
        self._draining = False
        self._ctx = get_context(start_method)
        config = {
            "sys_path": list(sys.path),
            "cache_capacity": cache_capacity,
        }
        self._workers = [
            _WorkerHandle(self._ctx, config, i) for i in range(pool_size)
        ]
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown_s=breaker_cooldown_s,
                clock=clock,
                name=name,
            )
            for name in self.backends
        }
        # -- dispatcher plumbing ----------------------------------------
        self._commands: "deque[Tuple[Any, ...]]" = deque()
        self._cmd_lock = threading.Lock()
        self._dispatcher_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._wakeup_r, self._wakeup_w = os.pipe()
        # -- warm-dispatch state ----------------------------------------
        self._epoch = 0
        self._crash_counts: Dict[str, int] = {}
        self._cache_agg = {"hit": 0, "miss": 0, "evict": 0}
        self._worker_cache_snapshots: Dict[int, Dict[str, float]] = {}
        self._batches = 0
        self._batched_tasks = 0
        self._sticky_hits = 0
        self._steals = 0
        self._batch_hist = METRICS.histogram(
            "service.batch.size", BATCH_SIZE_BOUNDS
        )
        # -- overload-protection state ----------------------------------
        self.shed_threshold = shed_threshold
        self.brownout_budget_factor = brownout_budget_factor
        self.hedge_enabled = hedge
        self._admission = AdmissionController(
            max_depth=max_queue_depth,
            shed_threshold=shed_threshold,
            clock=clock,
        )
        self._brownout = BrownoutController(
            enter_utilization=brownout_enter,
            exit_utilization=brownout_exit,
            window_s=brownout_window_s,
            clock=clock,
        )
        self._hedge_tracker = HedgeTracker(
            quantile=hedge_quantile,
            factor=hedge_factor,
            min_samples=hedge_min_samples,
            fixed_delay_s=hedge_after_s,
        )
        self._shed_count = 0
        self._observed_sheds = 0
        self._observed_mode = NORMAL
        self._expired_count = 0
        self._cancelled_count = 0
        self._shutdown_failed_count = 0
        self._hedges = {"launched": 0, "won": 0, "lost": 0, "failed": 0}
        #: Builder refs known warm in at least one worker (from ok
        #: replies whose cache was consulted) — the brownout fast path
        #: keeps serving these while cold builds are shed.
        self._warm_refs: set = set()
        # -- operational observability (repro.obs) -----------------------
        if status_interval_s <= 0:
            raise ZenTypeError(
                f"status_interval_s must be > 0, got {status_interval_s!r}"
            )
        if latency_window_s <= 0:
            raise ZenTypeError(
                f"latency_window_s must be > 0, got {latency_window_s!r}"
            )
        self._recorder = recorder if recorder is not None else RECORDER
        self.bundle_dir = bundle_dir
        self.status_file = status_file
        self.status_interval_s = status_interval_s
        self._status_written_at = -float("inf")
        self._pool_busy = 0
        self._latency_windows = {
            p: RollingHistogram(latency_window_s) for p in PRIORITIES
        }
        self._latency_hist = METRICS.histogram(
            "service.latency_s", LOG_BOUNDS
        )
        self._slo = SLOMonitor(slos) if slos else None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Drain deterministically, then close.

        Unlike :meth:`close` (which kills in-flight work), a drain:

        * stops admitting new work (further submissions raise
          :class:`~repro.errors.ZenServiceError`);
        * resolves every *queued* task's future with a structured
          ``engine_shutdown`` attempt outcome — never left
          forever-pending;
        * lets in-flight batches run to completion, still bounded by
          their hard timeouts and remaining client deadlines;
        * then stops the dispatcher and the workers.

        ``timeout_s`` bounds the wait for in-flight work; whatever is
        still running after it is killed by the :meth:`close` that
        always follows.
        """
        if self._closed:
            return
        self._draining = True
        dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            with self._cmd_lock:
                self._commands.append(("drain",))
            self._wake()
            dispatcher.join(timeout=timeout_s)
        self.close()

    def close(self) -> None:
        """Stop dispatcher and workers (sentinel, then SIGKILL)."""
        if self._closed:
            return
        self._closed = True
        dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            with self._cmd_lock:
                self._commands.append(("stop",))
            self._wake()
            dispatcher.join(timeout=10.0)
        for handle in self._workers:
            handle.shutdown()
        for fd in (self._wakeup_r, self._wakeup_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wakeup_r = self._wakeup_w = -1

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- observability ---------------------------------------------------

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """The per-backend circuit breakers (live objects)."""
        return dict(self._breakers)

    def breaker_snapshots(self) -> Dict[str, dict]:
        """Picklable snapshot of every breaker's state and history."""
        return {name: b.snapshot() for name, b in self._breakers.items()}

    def worker_pids(self) -> List[Optional[int]]:
        """Current pid of each pool slot (None = not spawned)."""
        return [handle.pid for handle in self._workers]

    def total_restarts(self) -> int:
        """Worker respawns performed since the engine started."""
        return sum(max(0, handle.restarts) for handle in self._workers)

    def cache_stats(self) -> Dict[str, Any]:
        """Aggregated warm-cache effectiveness across worker replies.

        ``hit``/``miss``/``evict`` are totals observed on successful
        replies; ``hit_rate`` is hits / lookups (0.0 before any
        lookup); ``epoch`` is the engine's current invalidation epoch;
        ``workers`` maps pool index → last cache snapshot seen from
        that worker.
        """
        lookups = self._cache_agg["hit"] + self._cache_agg["miss"]
        return {
            "hit": self._cache_agg["hit"],
            "miss": self._cache_agg["miss"],
            "evict": self._cache_agg["evict"],
            "hit_rate": (
                self._cache_agg["hit"] / lookups if lookups else 0.0
            ),
            "epoch": self._epoch,
            "workers": dict(self._worker_cache_snapshots),
        }

    def dispatch_stats(self) -> Dict[str, Any]:
        """Batching and sticky-routing effectiveness counters."""
        return {
            "batches": self._batches,
            "batched_tasks": self._batched_tasks,
            "mean_batch_size": (
                self._batched_tasks / self._batches if self._batches else 0.0
            ),
            "sticky_hits": self._sticky_hits,
            "steals": self._steals,
            "max_batch_size": self.max_batch_size,
            "crash_loops": dict(self._crash_counts),
        }

    @property
    def mode(self) -> str:
        """Current degradation mode: ``"normal"`` or ``"brownout"``.

        Reading the property feeds the brownout controller a fresh
        utilization sample, so recovery is observable even while the
        dispatcher sits idle between bursts.
        """
        return self._brownout.observe(self._admission.utilization(), 0)

    def _absorb_overload_metrics(self) -> None:
        """Fold the admission/brownout/hedge silos into METRICS.

        All three speak the shared ``snapshot()`` counter protocol, so
        their state shows up in ``METRICS.snapshot()`` (and therefore
        in flight-recorder bundles) under stable gauge names.
        """
        METRICS.absorb("service.admission", self._admission)
        METRICS.absorb("service.brownout", self._brownout)
        METRICS.absorb("service.hedge_delay", self._hedge_tracker)

    def overload_stats(self) -> Dict[str, Any]:
        """Admission, shedding, deadline, and brownout counters."""
        launched = self._hedges["launched"]
        self._absorb_overload_metrics()
        return {
            "mode": self.mode,
            "queue_depth": self._admission.depth(),
            "utilization": self._admission.utilization(),
            "shed_threshold": self.shed_threshold,
            "admission": self._admission.detail(),
            "shed_overload": self._shed_count,
            "deadline_expired": self._expired_count,
            "cancelled": self._cancelled_count,
            "engine_shutdown": self._shutdown_failed_count,
            "brownout": self._brownout.detail(),
            "hedge": {
                **self._hedges,
                "enabled": self.hedge_enabled,
                "delay_s": self._hedge_tracker.delay(),
                "samples": len(self._hedge_tracker),
                "win_rate": (
                    self._hedges["won"] / launched if launched else 0.0
                ),
            },
        }

    @property
    def recorder(self) -> FlightRecorder:
        """The flight recorder this engine feeds (shared by default)."""
        return self._recorder

    def debug_bundles(self) -> List[str]:
        """Paths of the debug bundles captured so far (oldest first)."""
        return self._recorder.bundle_paths()

    def status(self, now: Optional[float] = None) -> EngineStatus:
        """One self-contained operational snapshot (see ``repro.obs``).

        Safe to call from any thread; with ``status_file=`` configured
        the dispatcher also writes one on a cadence so
        ``python -m repro.obs status`` works from another process.
        """
        at = now if now is not None else self._clock()
        admission = self._admission.detail()
        cache = self.cache_stats()
        launched = self._hedges["launched"]
        self._absorb_overload_metrics()
        return EngineStatus(
            generated_unix=time.time(),
            pid=os.getpid(),
            pool_size=self.pool_size,
            pool_busy=self._pool_busy,
            workers=[p for p in self.worker_pids() if p is not None],
            mode=self.mode,
            queue={
                "depth": admission["depth"],
                "max_depth": admission["max_depth"],
                "utilization": admission["utilization"],
                "in_flight": admission["in_flight"],
                "limits": admission["limits"],
            },
            latency_ms={
                priority: window.summary(at)
                for priority, window in self._latency_windows.items()
            },
            cache={
                "hits": cache["hit"],
                "misses": cache["miss"],
                "evictions": cache["evict"],
                "hit_rate": cache["hit_rate"],
            },
            breakers={
                name: breaker.state
                for name, breaker in self._breakers.items()
            },
            hedge={
                **self._hedges,
                "enabled": self.hedge_enabled,
                "delay_s": self._hedge_tracker.delay(),
                "win_rate": (
                    self._hedges["won"] / launched if launched else 0.0
                ),
            },
            slo=self._slo.state(at) if self._slo is not None else [],
            compose={
                key[len("compose."):]: float(value)
                for key, value in METRICS.snapshot().items()
                if key.startswith("compose.")
            },
            counters={
                "shed_overload": float(self._shed_count),
                "deadline_expired": float(self._expired_count),
                "cancelled": float(self._cancelled_count),
                "engine_shutdown": float(self._shutdown_failed_count),
                "restarts": float(self.total_restarts()),
                **{
                    f"recorder.{key}": float(value)
                    for key, value in self._recorder.snapshot().items()
                },
            },
        )

    def invalidate_cache(self) -> int:
        """Advance the cache epoch, flushing every worker's warm cache.

        Idle workers get an explicit ``("epoch", n)`` control message;
        busy workers pick the epoch up from their next batch header.
        Returns the new epoch.
        """
        self._check_open()
        with self._cmd_lock:
            self._epoch += 1
            epoch = self._epoch
            dispatcher = self._dispatcher
            if dispatcher is not None and dispatcher.is_alive():
                self._commands.append(("epoch", epoch))
        self._wake()
        return epoch

    # -- public API ------------------------------------------------------

    def run(
        self, spec: QuerySpec, *, fallback: bool = True
    ) -> ServiceResult:
        """Execute one query; raise its structured error on failure.

        With ``fallback`` (default) the query ladders across the
        engine's backends, preferred backend first; without it only
        ``spec.backend`` is tried.
        """
        outcome = self.run_many([spec], fallback=fallback)[0]
        if isinstance(outcome, ZenServiceError):
            raise outcome
        return outcome

    def run_many(
        self, specs: Sequence[QuerySpec], *, fallback: bool = True
    ) -> List[Union[ServiceResult, ZenServiceError]]:
        """Execute a portfolio of queries across the pool in parallel.

        Returns one entry per spec, in order: a :class:`ServiceResult`
        on success or the structured :class:`ZenServiceError` the
        query ended with (not raised, so one poisoned query cannot
        mask the rest of the portfolio).
        """
        self._check_open()
        tasks: List[_Task] = []
        with span("service.run_many", queries=len(specs)) as sp:
            # Admit-then-enqueue one task at a time: blocking admission
            # of the whole portfolio up front would deadlock when the
            # portfolio is larger than the admission window (admitted
            # tasks only release their slots once dispatched).
            for i, spec in enumerate(specs):
                self._admit(spec, wait=True)
                task = self._make_task(i, spec, self._ladder(spec, fallback))
                self._attach_trace([task], sp)
                self._enqueue([task])
                tasks.append(task)
            wait_futures([t.future for t in tasks])
        out: List[Union[ServiceResult, ZenServiceError]] = []
        for task in tasks:
            out.append(task.result if task.result is not None else task.error)
        return out

    def submit(
        self,
        spec: QuerySpec,
        *,
        fallback: bool = True,
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
    ) -> "Future[ServiceResult]":
        """Enqueue one query and return its future immediately.

        The future resolves to a :class:`ServiceResult` or raises the
        query's structured :class:`~repro.errors.ZenServiceError`.
        Futures compose with :meth:`gather` (blocking) or
        ``asyncio.wrap_future`` (see :meth:`run_async`), so one
        process can keep thousands of queries in flight against the
        pool without blocking per batch.

        Backpressure: when the admission window for ``spec.priority``
        is full the call raises :class:`~repro.errors.ZenQueueFull`
        *synchronously* (fast-reject, the default) or, with
        ``wait=True``, blocks until a slot frees (bounded by
        ``wait_timeout_s`` when given).

        A future cancelled (``Future.cancel()``) before its task is
        dispatched is skipped by the dispatcher with a ``cancelled``
        attempt record; the worker never runs it.
        """
        self._check_open()
        self._admit(spec, wait=wait, wait_timeout_s=wait_timeout_s)
        task = self._make_task(0, spec, self._ladder(spec, fallback))
        if TRACER.enabled:
            task.trace_parent = TRACER.current()
        self._enqueue([task])
        return task.future

    def gather(
        self, futures: Sequence["Future[ServiceResult]"]
    ) -> List[Union[ServiceResult, ZenServiceError]]:
        """Wait for :meth:`submit` futures; error objects, not raises.

        Mirrors :meth:`run_many` semantics: one entry per future in
        order, each a :class:`ServiceResult` or the structured error
        the query failed with.
        """
        out: List[Union[ServiceResult, ZenServiceError]] = []
        for future in futures:
            try:
                out.append(future.result())
            except ZenServiceError as error:
                out.append(error)
        return out

    async def run_async(
        self, spec: QuerySpec, *, fallback: bool = True
    ) -> ServiceResult:
        """Await one query from an event loop (raises on failure)."""
        import asyncio

        return await asyncio.wrap_future(
            self.submit(spec, fallback=fallback)
        )

    async def run_many_async(
        self, specs: Sequence[QuerySpec], *, fallback: bool = True
    ) -> List[Union[ServiceResult, ZenServiceError]]:
        """Await a portfolio concurrently; error objects, not raises."""
        import asyncio

        futures = [
            asyncio.wrap_future(self.submit(spec, fallback=fallback))
            for spec in specs
        ]
        gathered = await asyncio.gather(*futures, return_exceptions=True)
        out: List[Union[ServiceResult, ZenServiceError]] = []
        for item in gathered:
            if isinstance(item, BaseException) and not isinstance(
                item, ZenServiceError
            ):
                raise item
            out.append(item)
        return out

    def run_differential(
        self,
        spec: Union[QuerySpec, Dict[str, QuerySpec]],
        backends: Sequence[str] = ("sat", "bdd"),
        *,
        race: bool = False,
    ) -> ServiceResult:
        """Cross-check a find/verify query across two backends.

        Both backends run the same query in parallel workers (each
        answer concrete-replay-validated in its worker).  Semantics:

        * both complete and agree on satisfiability → the
          first-finished result, ``agreed=True``, ``answers`` holding
          both sides;
        * both complete and *contradict* (one found a validated
          witness, the other proved none exists) → raise
          :class:`ZenBackendDisagreement`;
        * one side fails (crash/timeout/budget/breaker) → the
          survivor's validated answer, ``agreed=None``;
        * both fail → :class:`ZenQueryFailed` with the combined
          attempt history.

        With ``race=True`` the first *sound* answer wins immediately
        and the other worker is cancelled (lower latency, no
        cross-check unless the slower side already finished).  `spec`
        may also be a dict mapping backend name to spec — the two
        sides are then expected to be semantically equivalent queries
        (useful for oracle testing and staged encodings).
        """
        self._check_open()
        if isinstance(spec, dict):
            sides = {b: s.with_backend(b) for b, s in spec.items()}
        else:
            sides = {b: spec.with_backend(b) for b in backends}
        if len(sides) < 2:
            raise ZenTypeError(
                f"differential mode needs two backends, got {list(sides)}"
            )
        for name, side in sides.items():
            if side.kind not in ("find", "verify"):
                raise ZenTypeError(
                    "differential mode compares find/verify answers, got "
                    f"kind={side.kind!r} for backend {name!r}"
                )
        tasks: List[_Task] = []
        group = {"race": race, "tasks": tasks}
        with span(
            "service.run_differential", backends=list(sides), race=race
        ) as sp:
            # Incremental admit-then-enqueue (see run_many): a depth-1
            # window must be able to drain side 1 before side 2 blocks.
            for i, (name, side) in enumerate(sides.items()):
                self._admit(side, wait=True)
                task = self._make_task(i, side, [name])
                task.group = group
                self._attach_trace([task], sp)
                self._enqueue([task])
                tasks.append(task)
            wait_futures([t.future for t in tasks])

        combined: Tuple[AttemptRecord, ...] = tuple(
            record for task in tasks for record in task.attempts
        )
        finished = [t for t in tasks if t.result is not None]
        if len(finished) == len(tasks):
            answers = {t.ladder[0]: t.result.answer for t in tasks}
            verdicts = {b: a is not None for b, a in answers.items()}
            if len(set(verdicts.values())) > 1:
                self._obs_trigger(
                    "backend_disagreement",
                    detail=", ".join(
                        f"{b}={'sat' if v else 'unsat'}"
                        for b, v in sorted(verdicts.items())
                    ),
                    extra={
                        "verdicts": dict(verdicts),
                        "labels": {
                            b: s.label for b, s in sides.items()
                        },
                    },
                )
                raise ZenBackendDisagreement(
                    "differential oracle: backends disagree on "
                    f"satisfiability ({verdicts}); each side passed its "
                    "own validation, so at least one encoding is unsound",
                    answers=answers,
                    attempts=combined,
                    attempts_by_backend={
                        t.ladder[0]: tuple(t.attempts) for t in tasks
                    },
                    profiles={
                        t.ladder[0]: t.result.profile for t in tasks
                    },
                )
            winner = min(finished, key=lambda t: t.finished_at)
            return replace(
                winner.result,
                attempts=combined,
                agreed=True,
                answers=answers,
            )
        if finished:
            winner = min(finished, key=lambda t: t.finished_at)
            answers = {t.ladder[0]: t.result.answer for t in finished}
            return replace(
                winner.result,
                attempts=combined,
                agreed=None,
                answers=answers,
            )
        raise ZenQueryFailed(
            "differential oracle: every backend failed",
            attempts=combined,
        )

    # -- task construction & dispatch hand-off ---------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ZenServiceError("QueryEngine is closed")
        if self._draining:
            raise ZenServiceError("QueryEngine is draining (shutdown)")

    def _admit(
        self,
        spec: QuerySpec,
        *,
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
    ) -> None:
        """Claim one admission slot for ``spec`` or raise ZenQueueFull."""
        start = self._clock()
        try:
            self._admission.admit(
                spec.priority,
                wait=wait,
                timeout_s=wait_timeout_s,
                abort=lambda: self._closed or self._draining,
            )
        except ZenServiceError:
            METRICS.counter("service.admission.reject").inc()
            self._recorder.record_event(
                "admission_reject", priority=spec.priority,
                label=spec.label,
            )
            raise
        waited = self._clock() - start
        if TRACER.enabled and waited >= _QUEUE_WAIT_SPAN_FLOOR_S:
            # Retroactive span: blocking admission happened on the
            # caller's thread, inside its open run_many/submit span.
            TRACER.record(
                "service.admission_wait",
                TRACER.now_wall() - waited,
                waited,
                {"priority": spec.priority, "label": spec.label},
            )

    def _ladder(self, spec: QuerySpec, fallback: bool) -> List[str]:
        if not fallback:
            return [spec.backend]
        if self._brownout.mode == BROWNOUT:
            # Brownout: no fallback ladder — a failing query fails
            # fast on its preferred backend instead of occupying
            # workers for every rung while the queue burns.
            return [spec.backend]
        ladder = [spec.backend]
        ladder.extend(b for b in self.backends if b != spec.backend)
        return ladder

    def _make_task(
        self, index: int, spec: QuerySpec, ladder: Sequence[str]
    ) -> _Task:
        ref_key = ref_cache_key(spec)
        sticky = zlib.crc32(ref_key.encode("utf-8")) % self.pool_size
        task = _Task(index, spec, ladder, ref_key, sticky)
        task.admitted = True
        if spec.deadline_s is not None:
            # The client deadline starts ticking at submission, so the
            # queue wait ahead of the first dispatch counts against it.
            task.deadline_at = self._clock() + spec.deadline_s
        return task

    def _complete(self, task: _Task, now: float) -> None:
        """Mark done and return the admission slot (exactly once)."""
        if not task.done:
            task.finish(now)
        if task.admitted:
            task.admitted = False
            self._admission.release(task.spec.priority)
            self._observe_completion(task, now)

    def _observe_completion(self, task: _Task, now: float) -> None:
        """Feed one finished task to the obs layer (exactly once).

        This is the always-on per-query cost of the flight recorder
        and rolling windows: one deque append, one histogram observe,
        one SLO sample — measured in bench_micro_bdd's telemetry row.
        """
        ok = task.result is not None
        started = (
            task.started_at
            if task.started_at is not None
            else (task.enqueued_at or now)
        )
        latency = max(0.0, now - started)
        window = self._latency_windows.get(task.spec.priority)
        if window is not None:
            window.observe(now, latency)
        self._latency_hist.labels(priority=task.spec.priority).observe(
            latency
        )
        if self._slo is not None:
            self._slo.observe(ok, latency, now)
        last = task.attempts[-1] if task.attempts else None
        self._recorder.record_attempt(
            {
                "spec": task.spec.label or task.ref_key,
                "kind": task.spec.kind,
                "priority": task.spec.priority,
                "ok": ok,
                "outcome": (
                    last.outcome
                    if last is not None
                    else ("ok" if ok else "unknown")
                ),
                "backend": task.backend,
                "latency_s": round(latency, 6),
                "queue_wait_s": round(task.total_queue_wait_s, 6),
                "attempts": len(task.attempts),
                "at": now,
            }
        )

    @staticmethod
    def _attach_trace(tasks: Sequence[_Task], sp: Any) -> None:
        """Pin the caller's open span as each task's adoption parent.

        The dispatcher thread has no span stack of its own; worker
        span trees and retroactive attempt spans must attach to the
        *submitting* thread's ``service.run_many`` /
        ``service.run_differential`` span, which stays open until all
        futures resolve.
        """
        parent = sp if isinstance(sp, Span) else None
        for task in tasks:
            task.trace_parent = parent

    def _enqueue(self, tasks: Sequence[_Task]) -> None:
        self._ensure_dispatcher()
        with self._cmd_lock:
            self._commands.append(("tasks", list(tasks)))
        self._wake()

    def _ensure_dispatcher(self) -> None:
        with self._dispatcher_lock:
            if self._dispatcher is not None and self._dispatcher.is_alive():
                return
            thread = threading.Thread(
                target=self._dispatch_loop,
                name="repro-service-dispatcher",
                daemon=True,
            )
            self._dispatcher = thread
            thread.start()

    def _wake(self) -> None:
        fd = self._wakeup_w
        if fd < 0:
            return
        try:
            os.write(fd, b"x")
        except OSError:  # pragma: no cover - closed during shutdown
            pass

    def _drain_wakeup(self) -> None:
        fd = self._wakeup_r
        if fd < 0:
            return
        try:
            while True:
                readable, _, _ = select.select([fd], [], [], 0)
                if not readable:
                    return
                if not os.read(fd, 4096):
                    return
        except OSError:  # pragma: no cover - closed during shutdown
            return

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """The persistent scheduler: owns the pool until told to stop."""
        pending: List[_Task] = []
        inflight: Dict[_WorkerHandle, _Batch] = {}
        state = {"stop": False, "draining": False}
        try:
            while True:
                self._drain_commands(pending, inflight, state)
                if state["stop"]:
                    self._shutdown_dispatch(pending, inflight)
                    return
                now = self._clock()
                self._expire_queued(pending, now)
                if state["draining"]:
                    # Drain: fail the queue with engine_shutdown, let
                    # in-flight work finish (deadlines still enforced
                    # below), never launch anything new.
                    self._drain_queued(pending, now)
                    if not pending and not inflight:
                        return  # drained; close() stops the workers
                else:
                    self._shed_overloaded(pending, now)
                    self._observe_mode()
                    self._fill_workers(pending, inflight, now)
                    self._launch_hedges(inflight, self._clock())
                self._pool_busy = len(inflight)
                self._obs_tick(self._clock())
                timeout = self._wait_timeout(
                    pending, inflight, self._clock(), state["draining"]
                )
                if self.status_file is not None or self._slo is not None:
                    # Keep the status file fresh and SLO recovery
                    # observable even while the pool sits idle.
                    cap = max(0.05, self.status_interval_s)
                    timeout = cap if timeout is None else min(timeout, cap)
                waitables: List[Any] = [
                    h.conn for h in inflight if h.conn is not None
                ]
                if self._wakeup_r >= 0:
                    waitables.append(self._wakeup_r)
                try:
                    ready = connection.wait(waitables, timeout=timeout)
                except OSError:  # pragma: no cover - fd churn race
                    ready = []
                if self._wakeup_r in ready:
                    self._drain_wakeup()
                self._collect_replies(ready, pending, inflight)
                self._enforce_deadlines(pending, inflight)
                self._cancel_raced(pending, inflight)
        except Exception as error:  # pragma: no cover - defensive
            failure = ZenServiceError(
                f"dispatcher thread failed: {type(error).__name__}: {error}"
            )
            self._shutdown_dispatch(pending, inflight, failure)

    def _drain_commands(self, pending, inflight, state) -> None:
        while True:
            with self._cmd_lock:
                if not self._commands:
                    break
                command = self._commands.popleft()
            kind = command[0]
            if kind == "tasks":
                now = self._clock()
                for task in command[1]:
                    task.enqueued_at = now
                    pending.append(task)
            elif kind == "epoch":
                epoch = command[1]
                for handle in self._workers:
                    if handle.conn is None or not handle.alive:
                        continue
                    try:
                        handle.conn.send(("epoch", epoch))
                    except (OSError, ValueError):
                        handle.kill()
            elif kind == "drain":
                state["draining"] = True
            elif kind == "stop":
                state["stop"] = True

    def _shutdown_dispatch(
        self, pending, inflight, error: Optional[ZenServiceError] = None
    ) -> None:
        failure = error or ZenServiceError("QueryEngine is closed")
        now = self._clock()
        for handle, batch in list(inflight.items()):
            handle.kill()
            for task in batch.tasks[batch.next_index:]:
                self._fail_now(task, failure, now)
        inflight.clear()
        for task in pending:
            self._fail_now(task, failure, now)
        pending.clear()

    def _fail_now(
        self, task: _Task, error: ZenServiceError, now: float
    ) -> None:
        if task.done:
            return
        task.error = error
        self._complete(task, now)
        try:
            task.future.set_exception(error)
        except Exception:  # pragma: no cover - already resolved
            pass

    def _wait_timeout(
        self, pending, inflight, now, draining=False
    ) -> Optional[float]:
        timeouts: List[float] = []
        hedge_delay = (
            self._hedge_tracker.delay()
            if self._brownout.mode != BROWNOUT
            else None
        )
        for batch in inflight.values():
            if batch.deadline is not None:
                timeouts.append(batch.deadline - now)
            if (
                hedge_delay is not None
                and not batch.hedge
                and not batch.exhausted
                and not batch.current.hedged
                and self._hedge_wanted(batch.current)
            ):
                # Wake when the current task crosses the hedge delay.
                timeouts.append(
                    batch.current.submitted_at + hedge_delay - now
                )
        ready_pending = False
        for task in pending:
            if task.done:
                continue
            if task.deadline_at is not None:
                timeouts.append(task.deadline_at - now)
            if task.ready_at > now:
                timeouts.append(task.ready_at - now)
            else:
                ready_pending = True
        if self._brownout.mode == BROWNOUT:
            # Tick often enough that hysteretic recovery is observed
            # within (a fraction of) one window even with no traffic.
            timeouts.append(max(0.05, self._brownout.window_s * 0.25))
        if draining and inflight:
            timeouts.append(0.1)
        if timeouts:
            return max(0.0, min(timeouts))
        if ready_pending and not inflight:
            # Defensive: ready work but nothing launched and nothing to
            # wait for should not happen; poll rather than wedge.
            return 0.05
        return None

    # -- overload protection (dispatcher side) ---------------------------

    def _expire_queued(self, pending, now) -> None:
        """Fail queued tasks whose future was cancelled or whose client
        deadline passed — without burning a worker on either."""
        for task in list(pending):
            if task.done:
                pending.remove(task)
                continue
            if task.future.cancelled():
                pending.remove(task)
                self._cancel_task(task, now)
                continue
            if task.deadline_at is not None and now >= task.deadline_at:
                pending.remove(task)
                self._expire_task(task, now, where="in queue")

    def _cancel_task(self, task, now) -> None:
        """Bookkeeping for a future the caller cancelled pre-dispatch.

        The future is already resolved (cancelled); only the attempt
        record and the admission slot need completing.
        """
        self._cancelled_count += 1
        METRICS.counter("service.cancelled").inc()
        task.attempts.append(
            AttemptRecord(
                backend=task.backend,
                attempt=task.attempt + 1,
                worker_pid=None,
                outcome="cancelled",
                error="cancelled by the caller before dispatch",
            )
        )
        self._complete(task, now)

    def _expire_task(self, task, now, where, pid=None) -> None:
        """Resolve a task as deadline_expired (no retry, no breaker)."""
        self._expired_count += 1
        METRICS.counter("service.deadline.expired").inc()
        task.attempts.append(
            AttemptRecord(
                backend=task.backend,
                attempt=task.attempt + 1,
                worker_pid=pid,
                outcome="deadline_expired",
                error_type="ZenQueryTimeout",
                error=(
                    f"client deadline of {task.spec.deadline_s}s "
                    f"expired {where}"
                ),
                queue_wait_s=task.total_queue_wait_s,
            )
        )
        task.error = ZenQueryTimeout(
            f"client deadline of {task.spec.deadline_s}s expired "
            f"{where} (label {task.spec.label!r})",
            timeout_s=task.spec.deadline_s,
            pid=pid,
            attempts=task.attempts,
        )
        self._complete(task, now)
        try:
            task.future.set_exception(task.error)
        except Exception:  # pragma: no cover - already resolved
            pass

    def _drain_queued(self, pending, now) -> None:
        """Resolve every queued task with an engine_shutdown outcome."""
        for task in list(pending):
            pending.remove(task)
            if task.done:
                continue
            self._shutdown_failed_count += 1
            task.attempts.append(
                AttemptRecord(
                    backend=task.backend,
                    attempt=task.attempt + 1,
                    worker_pid=None,
                    outcome="engine_shutdown",
                    error_type="ZenServiceError",
                    error=(
                        "engine drained before this task was dispatched"
                    ),
                    queue_wait_s=task.total_queue_wait_s,
                )
            )
            task.error = ZenQueryFailed(
                "engine shut down (drain) before this query was "
                "dispatched",
                attempts=task.attempts,
                label=task.spec.label,
            )
            self._complete(task, now)
            try:
                task.future.set_exception(task.error)
            except Exception:  # pragma: no cover - already resolved
                pass

    def _shed_overloaded(self, pending, now) -> None:
        """Drop queued batch/fuzz tasks while utilization is critical.

        Lowest priority sheds first, newest arrivals within a class
        first (oldest queued work is closest to service).  interactive
        is never shed — its protection is the reserved admission
        headroom plus this policy.
        """
        if self._admission.max_depth is None:
            return
        if self._admission.utilization() < self.shed_threshold:
            return
        candidates = [
            t
            for t in pending
            if not t.done and t.spec.priority != "interactive"
        ]
        candidates.sort(
            key=lambda t: (
                PRIORITY_RANK.get(t.spec.priority, 1),
                t.enqueued_at,
            ),
            reverse=True,
        )
        for task in candidates:
            if self._admission.utilization() < self.shed_threshold:
                break
            pending.remove(task)
            self._shed_task(task, now)

    def _shed_task(self, task, now, reason="queue overloaded") -> None:
        """Resolve a task as shed_overload (structured, never retried)."""
        self._shed_count += 1
        METRICS.counter("service.shed.overload").inc()
        utilization = self._admission.utilization()
        if TRACER.enabled:
            TRACER.record(
                "service.shed",
                TRACER.now_wall(),
                0.0,
                {
                    "priority": task.spec.priority,
                    "reason": reason,
                    "utilization": round(utilization, 3),
                },
                parent=task.trace_parent,
            )
        self._recorder.record_event(
            "shed",
            priority=task.spec.priority,
            reason=reason,
            utilization=round(utilization, 3),
        )
        task.attempts.append(
            AttemptRecord(
                backend=task.backend,
                attempt=task.attempt + 1,
                worker_pid=None,
                outcome="shed_overload",
                error_type="ZenOverloadShed",
                error=(
                    f"{reason} (utilization {utilization:.0%}); "
                    f"{task.spec.priority} task shed"
                ),
                queue_wait_s=task.total_queue_wait_s,
            )
        )
        task.error = ZenOverloadShed(
            f"query shed under overload: {reason} "
            f"(priority {task.spec.priority!r}, "
            f"utilization {utilization:.0%})",
            attempts=task.attempts,
            priority=task.spec.priority,
        )
        self._complete(task, now)
        try:
            task.future.set_exception(task.error)
        except Exception:  # pragma: no cover - already resolved
            pass

    def _observe_mode(self) -> str:
        """Feed the brownout controller one dispatch-loop sample."""
        sheds = self._shed_count - self._observed_sheds
        self._observed_sheds = self._shed_count
        utilization = self._admission.utilization()
        mode = self._brownout.observe(utilization, sheds)
        # Compare against the last mode *this* loop acted on, not the
        # controller's pre-observe state: the ``mode`` property also
        # feeds the controller, so a status() or chaos-harness read
        # from another thread can consume the raw transition edge.
        if mode != self._observed_mode:
            self._observed_mode = mode
            METRICS.counter(f"service.brownout.{mode}").inc()
            edge = "enter" if mode == BROWNOUT else "exit"
            if TRACER.enabled:
                TRACER.record(
                    f"service.brownout.{edge}",
                    TRACER.now_wall(),
                    0.0,
                    {
                        "utilization": round(utilization, 3),
                        "sheds": sheds,
                    },
                )
            self._recorder.record_event(
                f"brownout_{edge}",
                utilization=round(utilization, 3),
                sheds=sheds,
            )
            if mode == BROWNOUT:
                self._obs_trigger(
                    "brownout",
                    detail=(
                        f"utilization={utilization:.2f} sheds={sheds}"
                    ),
                )
        return mode

    # -- operational observability (repro.obs) ---------------------------

    def _obs_tick(self, now: float) -> None:
        """Periodic obs work on the dispatcher thread.

        Evaluates the SLO monitor (burn alerts become structured
        events and can trigger bundle capture) and refreshes the
        cross-process status file on its cadence.
        """
        if self._slo is not None:
            for event in self._slo.evaluate(now):
                kind = str(event.pop("kind"))
                self._recorder.record_event(kind, **event)
                if kind == "slo_burn":
                    self._obs_trigger(
                        "slo_burn",
                        detail=str(event.get("slo")),
                        extra={"slo_event": event},
                    )
        if (
            self.status_file is not None
            and now - self._status_written_at >= self.status_interval_s
        ):
            self._status_written_at = now
            try:
                write_status_file(self.status_file, self.status(now=now))
            except OSError:  # pragma: no cover - disk trouble must not
                pass  # kill the dispatcher

    def _obs_trigger(
        self,
        cause: str,
        detail: str = "",
        *,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Record an operational trigger; capture a debug bundle.

        Bundles are only written when the engine was configured with
        ``bundle_dir=``; the trigger event lands in the flight
        recorder's ring either way.  Per-cause cooldown and bundle-dir
        pruning live in the recorder.
        """
        context = self._bundle_context()
        if extra:
            context.update(extra)
        return self._recorder.trigger(
            cause,
            detail,
            context=context,
            bundle_dir=self.bundle_dir,
            now=self._clock(),
        )

    def _bundle_context(self) -> Dict[str, Any]:
        """Engine config + live state frozen into a debug bundle."""
        return {
            "engine": {
                "pool_size": self.pool_size,
                "retries": self.retries,
                "backends": list(self.backends),
                "max_batch_size": self.max_batch_size,
                "crash_loop_threshold": self.crash_loop_threshold,
                "cache_capacity": self.cache_capacity,
                "hedge_enabled": self.hedge_enabled,
                "shed_threshold": self.shed_threshold,
            },
            "overload": self.overload_stats(),
            "cache": self.cache_stats(),
            "dispatch": self.dispatch_stats(),
            "breakers": self.breaker_snapshots(),
            "worker_pids": self.worker_pids(),
        }

    # -- hedged requests -------------------------------------------------

    def _hedge_wanted(self, task) -> bool:
        """Policy: is this task eligible for a tail-latency duplicate?"""
        wanted = (
            task.spec.hedge
            if task.spec.hedge is not None
            else self.hedge_enabled
        )
        # Race-group siblings already run redundantly; hedging them
        # would double-book workers for no extra information.
        return wanted and task.group is None

    def _launch_hedges(self, inflight, now) -> None:
        """Duplicate slow in-flight tasks onto idle workers.

        A hedge is a single-task batch marked ``hedge=True`` whose task
        is *also* the current task of a primary batch; the first ok
        reply wins, every other outcome of the hedge lane is discarded
        (no breaker charge, no retry consumption).  Suppressed in
        brownout — spare capacity belongs to the queue then.
        """
        if self._brownout.mode == BROWNOUT:
            return
        delay = self._hedge_tracker.delay()
        if delay is None:
            return
        idle = [
            h
            for h in self._workers
            if h not in inflight
        ]
        if not idle:
            return
        for handle, batch in list(inflight.items()):
            if not idle:
                return
            if batch.hedge or batch.exhausted:
                continue
            task = batch.current
            if task.done or task.hedged or not self._hedge_wanted(task):
                continue
            if now - task.submitted_at < delay:
                continue
            hedge_handle = idle.pop()
            self._launch_hedge(hedge_handle, task, inflight, now)

    def _launch_hedge(self, handle, task, inflight, now) -> None:
        try:
            handle.ensure()
        except Exception:  # pragma: no cover - spawn failure
            return
        spec = task.spec.with_backend(task.backend)
        if TRACER.enabled:
            spec = spec.with_trace(True)
        remaining = (
            None
            if task.deadline_at is None
            else task.deadline_at - now
        )
        if remaining is not None or spec.deadline_s is not None:
            spec = clamp_spec_deadline(spec, remaining)
        self._seq += 1
        batch = _Batch(self._seq, [task], hedge=True)
        timeout = self._attempt_timeout(task, spec, now)
        batch.deadline = None if timeout is None else now + timeout
        try:
            handle.conn.send(
                (
                    "batch",
                    batch.seq,
                    self._epoch,
                    (spec,),
                    (task.deadline_at,),
                )
            )
        except (OSError, ValueError):
            handle.kill()
            return
        task.hedged = True
        inflight[handle] = batch
        self._hedges["launched"] += 1
        METRICS.counter("service.hedge.launched").inc()
        if TRACER.enabled:
            TRACER.record(
                "service.hedge.launch",
                TRACER.now_wall(),
                0.0,
                {
                    "backend": task.backend,
                    "primary_elapsed_s": round(now - task.submitted_at, 4),
                },
                parent=task.trace_parent,
            )
        self._recorder.record_event(
            "hedge_launch",
            backend=task.backend,
            label=task.spec.label,
        )

    def _settle_hedge(
        self, task, winner_batch, pending, inflight, now
    ) -> None:
        """First reply won; cancel the losing lane and charge telemetry.

        The loser's worker is killed (its answer is no longer wanted
        and may be arbitrarily slow — that is why the hedge existed);
        batch-mates queued behind a losing primary are requeued
        uncharged, exactly like any other worker loss.
        """
        won = winner_batch.hedge
        self._hedges["won" if won else "lost"] += 1
        METRICS.counter(
            "service.hedge.won" if won else "service.hedge.lost"
        ).inc()
        if TRACER.enabled:
            TRACER.record(
                "service.hedge.won" if won else "service.hedge.lost",
                TRACER.now_wall(),
                0.0,
                {"backend": task.backend},
                parent=task.trace_parent,
            )
        self._recorder.record_event(
            "hedge_won" if won else "hedge_lost",
            backend=task.backend,
            label=task.spec.label,
        )
        for handle, other in list(inflight.items()):
            if other is winner_batch or other.exhausted:
                continue
            if other.current is not task:
                continue
            del inflight[handle]
            handle.kill()
            self._requeue_rest(other, pending, now)

    # -- worker filling (sticky + batching) ------------------------------

    def _fill_workers(self, pending, inflight, now) -> None:
        """Assign ready tasks to idle workers until a fixpoint.

        Multiple passes: a worker going busy in one pass legitimizes
        steals (tasks sticky to it become stealable) in the next.
        """
        progress = True
        while progress and pending:
            progress = False
            for handle in self._workers:
                if handle in inflight:
                    continue
                chosen = self._select_batch(handle, pending, inflight, now)
                if not chosen:
                    continue
                progress = True
                if not self._launch_batch(handle, chosen, inflight, now):
                    # Broken pipe: the worker was killed; requeue and
                    # let the next pass resubmit to the respawn.
                    for task, _ in chosen:
                        pending.append(task)

    def _select_batch(
        self, handle, pending, inflight, now
    ) -> List[Tuple[_Task, str]]:
        """Pick up to ``max_batch_size`` ready tasks for this worker.

        Sticky rule: a worker takes its own tasks freely but steals a
        foreign task only when that task's sticky worker is busy —
        otherwise the warm worker gets first refusal on its ref.
        Race-group siblings never share a batch (they must run in
        parallel workers).

        Scheduling order is priority-major (interactive before batch
        before fuzz), FIFO within a class — the stable sort preserves
        arrival order, so overload cannot starve a class internally.
        """
        chosen: List[Tuple[_Task, str]] = []
        groups: set = set()
        brownout = self._brownout.mode == BROWNOUT
        ordered = sorted(
            pending, key=lambda t: PRIORITY_RANK.get(t.spec.priority, 1)
        )
        for task in ordered:
            if len(chosen) >= self.max_batch_size:
                break
            if task.done:
                pending.remove(task)
                continue
            if task.ready_at > now:
                continue
            if task.group is not None and id(task.group) in groups:
                continue
            if brownout and self._brownout_cold_shed(task):
                pending.remove(task)
                self._shed_task(
                    task,
                    now,
                    reason=(
                        "brownout fast path: cold-model build for a "
                        "non-interactive query"
                    ),
                )
                continue
            if task.sticky_index != handle.index:
                sticky_handle = self._workers[task.sticky_index]
                if sticky_handle not in inflight:
                    continue
            backend = self._resolve_rung(task, now)
            pending.remove(task)
            if backend is None:
                continue  # finished in place (shed-out or crash loop)
            chosen.append((task, backend))
            if task.group is not None:
                groups.add(id(task.group))
        return chosen

    def _brownout_cold_shed(self, task) -> bool:
        """In brownout, only cache-hittable non-interactive work runs.

        A non-interactive query whose builder has never been seen warm
        in any worker would pay the full cold build under overload —
        shed it; warm refs (and everything interactive, and kinds that
        never touch the cache) keep flowing.
        """
        return (
            task.spec.priority != "interactive"
            and task.spec.use_cache
            and task.spec.kind != "call"
            and task.ref_key not in self._warm_refs
        )

    def _resolve_rung(self, task: _Task, now: float) -> Optional[str]:
        """Advance the task past shed rungs; None = finished in place."""
        count = self._crash_counts.get(task.ref_key, 0)
        if self.crash_loop_threshold and count >= self.crash_loop_threshold:
            task.attempts.append(
                AttemptRecord(
                    backend=task.backend,
                    attempt=task.attempt + 1,
                    worker_pid=None,
                    outcome="crash_loop",
                    error_type="ZenCrashLoop",
                    error=(
                        f"builder {task.ref_key!r} killed {count} workers; "
                        "crash-loop suppression is refusing further "
                        "attempts until it succeeds elsewhere"
                    ),
                )
            )
            # Capture the bundle before resolving the future: a caller
            # reacting to the failure must already see the bundle.
            self._obs_trigger(
                "crash_loop",
                detail=task.ref_key,
                extra={"crash_count": count},
            )
            self._finish_failure(task, now)
            return None
        while True:
            if task.ladder_pos >= len(task.ladder):
                self._finish_failure(task, now)
                return None
            backend = task.backend
            breaker = self._breakers.setdefault(
                backend,
                CircuitBreaker(clock=self._clock, name=backend),
            )
            if breaker.allow():
                return backend
            task.attempts.append(
                AttemptRecord(
                    backend=backend,
                    attempt=task.attempt + 1,
                    worker_pid=None,
                    outcome="shed",
                    error_type="ZenCircuitOpen",
                    error=f"circuit open for backend {backend!r}",
                    breaker_state=breaker.state,
                )
            )
            task.ladder_pos += 1
            task.attempt = 0

    def _launch_batch(self, handle, chosen, inflight, now) -> bool:
        """Ship one batch to a worker; False on a broken pipe."""
        # First dispatch flips each future to RUNNING; a future the
        # caller managed to cancel() in the enqueue→launch window is
        # honored here instead of shipping dead work to a worker.
        live = []
        for task, backend in chosen:
            if task.launched:
                live.append((task, backend))
            elif task.future.set_running_or_notify_cancel():
                task.launched = True
                live.append((task, backend))
            else:
                self._cancel_task(task, now)
        if not live:
            return True
        chosen = live
        handle.ensure()
        brownout = self._brownout.mode == BROWNOUT
        budget_factor = self.brownout_budget_factor if brownout else 1.0
        specs = []
        deadlines = []
        for task, backend in chosen:
            spec = task.spec.with_backend(backend)
            if TRACER.enabled:
                # Parent is profiling: have the worker trace this
                # execution and ship its span tree back in the reply.
                spec = spec.with_trace(True)
            # Deadline propagation: the spec that ships carries only
            # what is left of the client deadline — in both the hard
            # timeout and the cooperative budget.  Brownout shrinks
            # the cooperative budget even without a client deadline.
            remaining = (
                None
                if task.deadline_at is None
                else task.deadline_at - now
            )
            if remaining is not None or brownout:
                spec = clamp_spec_deadline(
                    spec, remaining, budget_factor=budget_factor
                )
            specs.append(spec)
            deadlines.append(task.deadline_at)
        self._seq += 1
        batch = _Batch(self._seq, [task for task, _ in chosen])
        size = len(chosen)
        for task, _ in chosen:
            # Queue wait: time between becoming eligible (enqueue, or
            # the end of the previous attempt's backoff) and now.
            task.queue_wait_s = max(
                0.0, now - max(task.ready_at, task.enqueued_at)
            )
            task.total_queue_wait_s += task.queue_wait_s
            if task.started_at is None:
                task.started_at = now
            task.submitted_at = now
            task.batch_size = size
            if task.sticky_index == handle.index:
                self._sticky_hits += 1
            else:
                self._steals += 1
            if (
                TRACER.enabled
                and task.queue_wait_s >= _QUEUE_WAIT_SPAN_FLOOR_S
            ):
                TRACER.record(
                    "service.queue_wait",
                    TRACER.now_wall() - task.queue_wait_s,
                    task.queue_wait_s,
                    {
                        "backend": task.backend,
                        "label": task.spec.label,
                        "batch_size": size,
                    },
                    parent=task.trace_parent,
                )
        first = batch.current
        timeout = self._attempt_timeout(first, first.spec, now)
        batch.deadline = None if timeout is None else now + timeout
        try:
            handle.conn.send(
                (
                    "batch",
                    batch.seq,
                    self._epoch,
                    tuple(specs),
                    tuple(deadlines),
                )
            )
        except (OSError, ValueError):
            handle.kill()
            return False
        inflight[handle] = batch
        self._batches += 1
        self._batched_tasks += size
        self._batch_hist.observe(size)
        return True

    def _timeout_for(self, spec: QuerySpec) -> Optional[float]:
        return (
            spec.timeout_s
            if spec.timeout_s is not None
            else self.default_timeout_s
        )

    def _attempt_timeout(
        self, task: _Task, spec: QuerySpec, now: float
    ) -> Optional[float]:
        """Hard per-attempt timeout clamped to the client deadline."""
        timeout = self._timeout_for(spec)
        if task.deadline_at is not None:
            remaining = max(0.001, task.deadline_at - now)
            timeout = (
                remaining if timeout is None else min(timeout, remaining)
            )
        return timeout

    # -- reply collection ------------------------------------------------

    def _collect_replies(self, ready, pending, inflight) -> None:
        by_conn = {h.conn: h for h in inflight}
        for conn in ready:
            handle = by_conn.get(conn)
            if handle is None:
                continue
            while handle in inflight and handle.conn is not None:
                try:
                    if not handle.conn.poll():
                        break
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(
                        handle, pending, inflight, self._clock()
                    )
                    break
                try:
                    seq, index, status, info = message
                except (TypeError, ValueError):
                    self._on_worker_death(
                        handle, pending, inflight, self._clock()
                    )
                    break
                batch = inflight.get(handle)
                if (
                    batch is None
                    or seq != batch.seq
                    or index != batch.next_index
                ):
                    continue  # stale reply from a pre-kill submission
                self._on_reply(
                    batch, handle, status, info, pending, inflight,
                    self._clock(),
                )

    def _advance_batch(self, batch, handle, inflight, now) -> None:
        batch.next_index += 1
        if batch.exhausted:
            del inflight[handle]
            return
        nxt = batch.current
        nxt.submitted_at = now
        timeout = self._attempt_timeout(nxt, nxt.spec, now)
        batch.deadline = None if timeout is None else now + timeout

    def _requeue_rest(self, batch, pending, now) -> None:
        """Return a dead batch's not-yet-run tasks to the queue, uncharged."""
        for task in batch.tasks[batch.next_index + 1:]:
            if task.done:
                continue
            task.ready_at = now
            pending.append(task)

    def _on_reply(
        self, batch, handle, status, info, pending, inflight, now
    ) -> None:
        task = batch.current
        if task.done:
            # Resolved elsewhere (race sibling cancelled it, the other
            # hedge lane answered, or the deadline expired); the worker
            # ran it anyway — discard, keep the batch moving.
            self._advance_batch(batch, handle, inflight, now)
            return
        if batch.hedge and status != "ok":
            # The hedge lane only ever *wins*; every failure there is
            # discarded — no breaker charge, no retry consumption, the
            # primary dispatch still owns the task's fate.
            self._hedges["failed"] += 1
            METRICS.counter("service.hedge.failed").inc()
            if status == "oom":
                del inflight[handle]
                handle.kill()
            else:
                self._advance_batch(batch, handle, inflight, now)
            return
        backend = task.backend
        breaker = self._breakers[backend]
        elapsed = float(info.get("elapsed_s", now - task.submitted_at))
        pid = handle.pid
        if status == "expired":
            # The worker skipped the spec: its client deadline passed
            # while it waited behind batch-mates.  Substrate is fine —
            # no breaker charge, no retry.
            self._expire_task(
                task,
                now,
                where=f"behind its batch-mates in worker pid {pid}",
                pid=pid,
            )
            self._advance_batch(batch, handle, inflight, now)
            return
        if status == "ok":
            breaker.record_success()
            self._crash_counts.pop(task.ref_key, None)
            self._absorb_cache_info(handle, info)
            self._hedge_tracker.observe(elapsed)
            if info.get("cache_hit") is not None:
                self._warm_refs.add(task.ref_key)
            task.attempts.append(
                AttemptRecord(
                    backend=backend,
                    attempt=task.attempt + 1,
                    worker_pid=pid,
                    outcome="ok",
                    elapsed_s=elapsed,
                    queue_wait_s=task.queue_wait_s,
                    breaker_state=breaker.state,
                    hedged=batch.hedge,
                )
            )
            profile = None
            worker_spans = info.get("spans")
            if worker_spans and TRACER.enabled:
                # Merge the worker's timeline into the parent trace
                # (the foreign pid keeps it on its own track) and
                # condense it into the result's profile.
                for tree in worker_spans:
                    TRACER.adopt(tree, parent=task.trace_parent)
                    self._recorder.record_span(tree)
                profile = profile_from_spans(
                    worker_spans,
                    query=f"query.{task.spec.kind}",
                    backend=backend,
                    counters=dict(info.get("stats", {})),
                )
            task.result = ServiceResult(
                answer=info.get("answer"),
                backend=backend,
                kind=task.spec.kind,
                label=task.spec.label,
                function=info.get("function", ""),
                worker_pid=pid,
                attempts=tuple(task.attempts),
                stats=dict(info.get("stats", {})),
                elapsed_s=now - (task.started_at or now),
                profile=profile,
                cache_hit=info.get("cache_hit"),
                batch_size=task.batch_size,
                priority=task.spec.priority,
                queue_wait_s=task.total_queue_wait_s,
                hedged=batch.hedge,
            )
            self._complete(task, now)
            try:
                task.future.set_result(task.result)
            except Exception:  # pragma: no cover - already resolved
                pass
            self._advance_batch(batch, handle, inflight, now)
            if task.hedged:
                self._settle_hedge(task, batch, pending, inflight, now)
            return
        if status == "oom":
            # Even a survived MemoryError leaves allocator state
            # suspect: recycle the worker before its next task.  The
            # rest of the batch is requeued uncharged.
            del inflight[handle]
            handle.kill()
            self._requeue_rest(batch, pending, now)
            self._record_failure(
                task,
                outcome="oom",
                error_type=info.get("type", "MemoryError"),
                message=(
                    f"worker pid {pid} hit its RSS cap "
                    f"({info.get('rss_limit_bytes')} extra bytes): "
                    f"{info.get('message', '')}"
                ),
                pid=pid,
                pending=pending,
                now=now,
                retryable=True,
                elapsed=elapsed,
            )
            return
        # status == "error": structured exception from the worker.  The
        # worker already contained it — it keeps its process (and warm
        # cache) and moves on to the next batched spec.
        error_type = info.get("type", "")
        message = info.get("message", "")
        if error_type in _CONFIG_ERRORS:
            task.attempts.append(
                AttemptRecord(
                    backend=backend,
                    attempt=task.attempt + 1,
                    worker_pid=pid,
                    outcome="error",
                    error_type=error_type,
                    error=message,
                    elapsed_s=elapsed,
                    queue_wait_s=task.queue_wait_s,
                    breaker_state=breaker.state,
                )
            )
            task.error = ZenQueryFailed(
                f"query is misconfigured ({error_type}: {message}); "
                "not retried",
                attempts=task.attempts,
                label=task.spec.label,
            )
            self._complete(task, now)
            try:
                task.future.set_exception(task.error)
            except Exception:  # pragma: no cover - already resolved
                pass
            self._advance_batch(batch, handle, inflight, now)
            return
        outcome = (
            "budget_exceeded"
            if error_type == "ZenBudgetExceeded"
            else "error"
        )
        self._record_failure(
            task,
            outcome=outcome,
            error_type=error_type,
            message=message,
            pid=pid,
            pending=pending,
            now=now,
            # Budget exhaustion and solver errors are deterministic for
            # a given rung: move down the ladder instead of retrying.
            retryable=False,
            elapsed=elapsed,
        )
        self._advance_batch(batch, handle, inflight, now)

    def _absorb_cache_info(self, handle, info) -> None:
        hit = info.get("cache_hit")
        if hit is not None:
            key = "hit" if hit else "miss"
            self._cache_agg[key] += 1
            METRICS.counter(f"service.cache.{key}").inc()
        evicted = info.get("cache_evicted", 0)
        if evicted:
            self._cache_agg["evict"] += evicted
            METRICS.counter("service.cache.evict").inc(evicted)
        snapshot = info.get("cache_stats")
        if snapshot:
            self._worker_cache_snapshots[handle.index] = snapshot

    def _enforce_deadlines(self, pending, inflight) -> None:
        now = self._clock()
        for handle, batch in list(inflight.items()):
            if batch.deadline is None or now < batch.deadline:
                continue
            del inflight[handle]
            pid = handle.pid
            handle.kill()
            if batch.hedge:
                # A timed-out hedge lane is discarded: the primary
                # dispatch still owns the task and its deadline.
                self._hedges["failed"] += 1
                METRICS.counter("service.hedge.failed").inc()
                continue
            task = batch.current
            self._requeue_rest(batch, pending, now)
            if task.done:
                continue  # cancelled task wedged the worker; no charge
            if (
                task.deadline_at is not None
                and now >= task.deadline_at - 1e-9
            ):
                # The *client* deadline ran out mid-attempt: terminal,
                # no retry could help, no breaker charge (the substrate
                # may be healthy — the client budget is simply spent).
                self._expire_task(
                    task,
                    now,
                    where=f"mid-attempt (worker pid {pid} killed)",
                    pid=pid,
                )
                continue
            timeout = self._timeout_for(task.spec)
            self._record_failure(
                task,
                outcome="timeout",
                error_type="ZenQueryTimeout",
                message=(
                    f"hard deadline of {timeout}s exceeded; worker pid "
                    f"{pid} killed"
                ),
                pid=pid,
                pending=pending,
                now=now,
                retryable=True,
            )

    def _cancel_raced(self, pending, inflight) -> None:
        """In race mode, cancel siblings once one task has an answer."""
        groups: Dict[int, Dict[str, Any]] = {}
        for task in list(pending):
            if task.group is not None and task.group.get("race"):
                groups[id(task.group)] = task.group
        for batch in inflight.values():
            for task in batch.tasks:
                if task.group is not None and task.group.get("race"):
                    groups[id(task.group)] = task.group
        if not groups:
            return
        now = self._clock()
        for group in groups.values():
            if not any(t.result is not None for t in group["tasks"]):
                continue
            for task in group["tasks"]:
                if task.done:
                    continue
                for handle, batch in list(inflight.items()):
                    if batch.current is task:
                        del inflight[handle]
                        handle.kill()
                        self._requeue_rest(batch, pending, now)
                if task in pending:
                    pending.remove(task)
                task.attempts.append(
                    AttemptRecord(
                        backend=task.backend,
                        attempt=task.attempt + 1,
                        worker_pid=None,
                        outcome="cancelled",
                        error="cancelled: sibling answered first (race mode)",
                    )
                )
                task.error = ZenQueryFailed(
                    "cancelled: sibling answered first (race mode)",
                    attempts=task.attempts,
                    label=task.spec.label,
                )
                self._complete(task, now)
                try:
                    task.future.set_exception(task.error)
                except Exception:  # pragma: no cover - already resolved
                    pass

    # -- outcome handling ------------------------------------------------

    def _on_worker_death(self, handle, pending, inflight, now) -> None:
        batch = inflight.pop(handle, None)
        pid = handle.pid
        exitcode = handle.kill()
        if exitcode is not None and exitcode < 0:
            detail = f"killed by signal {-exitcode}"
        else:
            detail = f"exited with status {exitcode}"
        if batch is None:
            return
        if batch.hedge:
            # A dead hedge lane never charges the task, the breaker, or
            # the builder's crash count — the primary dispatch lives.
            self._hedges["failed"] += 1
            METRICS.counter("service.hedge.failed").inc()
            return
        task = batch.current
        self._requeue_rest(batch, pending, now)
        if task.done:
            return
        self._crash_counts[task.ref_key] = (
            self._crash_counts.get(task.ref_key, 0) + 1
        )
        self._record_failure(
            task,
            outcome="crash",
            error_type="ZenWorkerCrash",
            message=f"worker pid {pid} died mid-query ({detail})",
            pid=pid,
            pending=pending,
            now=now,
            retryable=True,
        )

    def _backoff_delay(self, attempt: int) -> float:
        base = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        return min(self.backoff_max_s, base) + self._rng.uniform(
            0.0, self.jitter_s
        )

    def _record_failure(
        self,
        task,
        *,
        outcome,
        error_type,
        message,
        pid,
        pending,
        now,
        retryable,
        elapsed=None,
    ):
        backend = task.backend
        breaker = self._breakers[backend]
        state_before = breaker.state
        breaker.record_failure(outcome)
        if breaker.state == BREAKER_OPEN and state_before != BREAKER_OPEN:
            self._obs_trigger(
                "breaker_open",
                detail=backend,
                extra={"breaker": breaker.snapshot()},
            )
        attempt_number = task.attempt + 1
        backoff = 0.0
        deadline_blocked = False
        will_retry = (
            retryable
            and outcome in _RETRYABLE
            and task.attempt < self.retries
        )
        candidate = (
            self._backoff_delay(task.attempt + 1) if will_retry else 0.0
        )
        if will_retry and task.deadline_at is not None:
            # Deadline propagation: never launch a retry that cannot
            # even *start* before the client deadline — fail now with
            # the full history instead of burning a worker slot.
            if now + candidate >= task.deadline_at:
                will_retry = False
                deadline_blocked = True
        if will_retry:
            task.attempt += 1
            backoff = candidate
            task.ready_at = now + backoff
        else:
            task.ladder_pos += 1
            task.attempt = 0
            task.ready_at = now
        duration = elapsed if elapsed is not None else now - task.submitted_at
        task.attempts.append(
            AttemptRecord(
                backend=backend,
                attempt=attempt_number,
                worker_pid=pid,
                outcome=outcome,
                error_type=error_type,
                error=message,
                backoff_s=backoff,
                elapsed_s=duration,
                queue_wait_s=task.queue_wait_s,
                breaker_state=breaker.state,
            )
        )
        self._recorder.record_attempt(
            {
                "spec": task.spec.label or task.ref_key,
                "priority": task.spec.priority,
                "outcome": outcome,
                "backend": backend,
                "attempt": attempt_number,
                "error_type": error_type,
                "pid": pid,
                "elapsed_s": round(duration, 6),
                "at": now,
            }
        )
        if TRACER.enabled:
            # Failed attempts ship no worker span tree (the reply is an
            # error, or the worker is dead); file a retroactive span so
            # retries are visible on the merged timeline.
            TRACER.record(
                f"attempt.{outcome}",
                TRACER.now_wall() - duration,
                duration,
                {
                    "backend": backend,
                    "attempt": attempt_number,
                    "error_type": error_type,
                    "backoff_s": round(backoff, 4),
                },
                parent=task.trace_parent,
            )
        if deadline_blocked:
            self._expire_task(
                task,
                now,
                where=(
                    f"after a {outcome} attempt (remaining deadline "
                    "cannot fit another retry)"
                ),
                pid=pid,
            )
            return
        pending.append(task)  # _resolve_rung finish-fails an exhausted ladder

    def _finish_failure(self, task, now) -> None:
        if task.attempts and all(
            a.outcome == "shed" for a in task.attempts
        ):
            task.error = ZenCircuitOpen(
                "every backend's circuit breaker is open; query "
                f"{task.spec.label or task.spec.kind!r} shed without "
                "executing",
                attempts=task.attempts,
            )
        else:
            executed = [
                a
                for a in task.attempts
                if a.outcome not in ("shed", "crash_loop")
            ]
            summary = ", ".join(
                f"{a.backend}#{a.attempt}:{a.outcome}" for a in task.attempts
            )
            task.error = ZenQueryFailed(
                f"query failed after {len(executed)} attempt(s) across "
                f"{len(task.ladder)} backend rung(s) [{summary}]",
                attempts=task.attempts,
                label=task.spec.label,
            )
        self._complete(task, now)
        try:
            task.future.set_exception(task.error)
        except Exception:  # pragma: no cover - already resolved
            pass
