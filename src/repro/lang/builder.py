"""The Python embedding of Zen: the ``Zen`` wrapper and constructors.

``Zen`` wraps an expression tree and overloads Python operators so that
modeling code reads like ordinary Python (paper §3)::

    def matches(rule, header):        # rule: concrete, header: Zen
        mask = UINT32_MASK << (32 - rule.prefix_len)
        return (header.dst_ip & mask) == rule.prefix

Python constants are lifted automatically when combined with Zen
values.  A standalone constant needs an explicit type via
:func:`constant` because Python ints are not fixed-width.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Sequence, Union

from ..errors import ZenTypeError
from . import expr as ex
from . import types as ty

_fresh_names = itertools.count()


class Zen:
    """A symbolic-or-concrete value of some Zen type (``Zen<T>`` in C#).

    Wraps an expression; all operators build larger expressions.  Note
    that ``==`` builds an equality *expression* — use ``is`` to compare
    wrapper identity, and never use ``Zen`` values in ``if`` conditions
    (use :func:`if_` instead; a plain ``if`` raises).
    """

    __slots__ = ("expr",)

    def __init__(self, expr: ex.Expr):
        object.__setattr__(self, "expr", expr)

    # -- introspection -------------------------------------------------

    @property
    def type(self) -> ty.ZenType:
        """The Zen type of this value."""
        return self.expr.type

    def __repr__(self) -> str:
        return f"Zen<{self.type}>({self.expr})"

    def __bool__(self) -> bool:
        raise ZenTypeError(
            "Zen values cannot be used in Python `if`/`and`/`or`; use "
            "if_(cond, a, b), & and | instead"
        )

    def __hash__(self) -> int:
        return id(self)

    # -- lifting helpers ----------------------------------------------

    def _lift_like(self, other: Any) -> "Zen":
        """Lift `other` to this value's type if it is a raw constant."""
        if isinstance(other, Zen):
            return other
        return constant(other, self.type)

    # -- arithmetic ----------------------------------------------------

    def _binary(self, op: str, other: Any, reverse: bool = False) -> "Zen":
        rhs = self._lift_like(other)
        left, right = (rhs, self) if reverse else (self, rhs)
        return Zen(ex.Binary(op, left.expr, right.expr))

    def __add__(self, other):
        return self._binary("add", other)

    def __radd__(self, other):
        return self._binary("add", other, reverse=True)

    def __sub__(self, other):
        return self._binary("sub", other)

    def __rsub__(self, other):
        return self._binary("sub", other, reverse=True)

    def __mul__(self, other):
        return self._binary("mul", other)

    def __rmul__(self, other):
        return self._binary("mul", other, reverse=True)

    def __neg__(self):
        return Zen(ex.Unary("neg", self.expr))

    # -- bitwise / logical ----------------------------------------------

    def _is_bool(self) -> bool:
        return isinstance(self.type, ty.BoolType)

    def __and__(self, other):
        return self._binary("and" if self._is_bool() else "band", other)

    def __rand__(self, other):
        return self._binary(
            "and" if self._is_bool() else "band", other, reverse=True
        )

    def __or__(self, other):
        return self._binary("or" if self._is_bool() else "bor", other)

    def __ror__(self, other):
        return self._binary(
            "or" if self._is_bool() else "bor", other, reverse=True
        )

    def __xor__(self, other):
        if self._is_bool():
            rhs = self._lift_like(other)
            return self != rhs
        return self._binary("bxor", other)

    def __rxor__(self, other):
        return self.__xor__(other)

    def __invert__(self):
        op = "not" if self._is_bool() else "bnot"
        return Zen(ex.Unary(op, self.expr))

    def __lshift__(self, other):
        return self._binary("shl", other)

    def __rshift__(self, other):
        return self._binary("shr", other)

    def implies(self, other: Any) -> "Zen":
        """Logical implication (bool only)."""
        rhs = self._lift_like(other)
        return ~self | rhs

    # -- comparisons -----------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self._binary("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary("ne", other)

    def __lt__(self, other):
        return self._binary("lt", other)

    def __le__(self, other):
        return self._binary("le", other)

    def __gt__(self, other):
        return self._binary("gt", other)

    def __ge__(self, other):
        return self._binary("ge", other)

    # -- objects ---------------------------------------------------------

    def __getattr__(self, name: str) -> "Zen":
        zen_type = self.type
        if isinstance(zen_type, ty.ObjectType) and name in zen_type.fields:
            return Zen(ex.GetField(self.expr, name))
        raise AttributeError(
            f"Zen<{zen_type}> has no attribute or field {name!r}"
        )

    def field(self, name: str) -> "Zen":
        """Explicit field projection (same as attribute access)."""
        return Zen(ex.GetField(self.expr, name))

    def with_field(self, name: str, value: Any) -> "Zen":
        """Functional update of one field."""
        zen_type = self.type
        if not isinstance(zen_type, ty.ObjectType):
            raise ZenTypeError(f"with_field on non-object {zen_type}")
        lifted = _lift_to(value, zen_type.field_type(name))
        return Zen(ex.WithField(self.expr, name, lifted.expr))

    def with_fields(self, **updates: Any) -> "Zen":
        """Functional update of several fields."""
        result = self
        for name, value in updates.items():
            result = result.with_field(name, value)
        return result

    # -- tuples -----------------------------------------------------------

    def __getitem__(self, index: int) -> "Zen":
        return Zen(ex.TupleGet(self.expr, index))

    # -- options -----------------------------------------------------------

    def has_value(self) -> "Zen":
        """Whether an Option holds a value."""
        return Zen(ex.OptionHasValue(self.expr))

    def value(self) -> "Zen":
        """The payload of an Option (default value when None)."""
        return Zen(ex.OptionValue(self.expr))

    def value_or(self, default: Any) -> "Zen":
        """The payload, or `default` when the option is None."""
        if not isinstance(self.type, ty.OptionType):
            raise ZenTypeError(f"value_or on non-option {self.type}")
        lifted = _lift_to(default, self.type.element)
        return if_(self.has_value(), self.value(), lifted)

    # -- lists --------------------------------------------------------------

    def case(
        self,
        empty: Union["Zen", Callable[[], Any]],
        cons: Callable[["Zen", "Zen"], Any],
    ) -> "Zen":
        """List elimination: ``case lst of [] -> empty | hd::tl -> cons``.

        ``empty`` may be a Zen value or a thunk; ``cons`` receives the
        head and tail as Zen values.  The host-language recursion rule
        of the paper applies: a recursive model function calls itself
        inside ``cons`` and terminates because the (bounded) tail
        shrinks at each evaluation step.
        """
        lst_type = self.type
        if not isinstance(lst_type, ty.ListType):
            raise ZenTypeError(f"case on non-list {lst_type}")

        def empty_fn() -> ex.Expr:
            result = empty() if callable(empty) else empty
            if not isinstance(result, Zen):
                raise ZenTypeError("empty branch must produce a Zen value")
            return result.expr

        def cons_fn(head: ex.Expr, tail: ex.Expr) -> ex.Expr:
            result = cons(Zen(head), Zen(tail))
            if not isinstance(result, Zen):
                raise ZenTypeError("cons branch must produce a Zen value")
            return result.expr

        return Zen(ex.ListCase(self.expr, empty_fn, cons_fn))

    # -- adapt ---------------------------------------------------------------

    def adapt(self, target: Any) -> "Zen":
        """View this value at an adapted type (maps <-> pair lists)."""
        return Zen(ex.Adapt(self.expr, ty.from_annotation(target)))


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------


def constant(value: Any, annotation: Any) -> Zen:
    """Lift a concrete Python value at an explicit type."""
    zen_type = ty.from_annotation(annotation)
    if isinstance(value, Zen):
        if value.type != zen_type:
            raise ZenTypeError(
                f"value has type {value.type}, expected {zen_type}"
            )
        return value
    return Zen(_constant_expr(value, zen_type))


def _constant_expr(value: Any, zen_type: ty.ZenType) -> ex.Expr:
    """Build a structured constant expression (lists become cons chains)."""
    if isinstance(zen_type, ty.ListType):
        if not isinstance(value, list):
            raise ZenTypeError(f"expected list for {zen_type}, got {value!r}")
        result: ex.Expr = ex.ListEmpty(zen_type.element)
        for item in reversed(value):
            result = ex.ListCons(_constant_expr(item, zen_type.element), result)
        return result
    if isinstance(zen_type, ty.OptionType):
        if value is None:
            return ex.OptionNone(zen_type.element)
        return ex.OptionSome(_constant_expr(value, zen_type.element))
    if isinstance(zen_type, ty.MapType):
        if not isinstance(value, dict):
            raise ZenTypeError(f"expected dict for {zen_type}, got {value!r}")
        pairs = [(k, v) for k, v in value.items()]
        backing = _constant_expr(pairs, zen_type.adapted())
        return ex.Adapt(backing, zen_type)
    if isinstance(zen_type, ty.TupleType):
        if not isinstance(value, tuple) or len(value) != len(zen_type.elements):
            raise ZenTypeError(f"expected {zen_type}, got {value!r}")
        return ex.MakeTuple(
            [
                _constant_expr(v, t)
                for v, t in zip(value, zen_type.elements)
            ]
        )
    if isinstance(zen_type, ty.ObjectType):
        if not isinstance(value, zen_type.cls):
            raise ZenTypeError(f"expected {zen_type}, got {value!r}")
        return ex.Create(
            zen_type,
            {
                name: _constant_expr(getattr(value, name), ftype)
                for name, ftype in zen_type.fields.items()
            },
        )
    return ex.Constant(value, zen_type)


def lift(value: Any, annotation: Any = None) -> Zen:
    """Lift a Python value, inferring the type when unambiguous.

    Booleans and registered dataclass instances are self-describing;
    ints need an annotation.
    """
    if isinstance(value, Zen):
        return value
    if annotation is not None:
        return constant(value, annotation)
    if isinstance(value, bool):
        return constant(value, ty.BOOL)
    if ty.is_registered(type(value)):
        return constant(value, ty.object_type(type(value)))
    raise ZenTypeError(
        f"cannot infer a Zen type for {value!r}; pass an annotation "
        "(e.g. lift(5, UInt))"
    )


def _lift_to(value: Any, zen_type: ty.ZenType) -> Zen:
    if isinstance(value, Zen):
        if value.type != zen_type:
            raise ZenTypeError(f"expected {zen_type}, got {value.type}")
        return value
    return constant(value, zen_type)


def if_(cond: Any, then: Any, orelse: Any) -> Zen:
    """Conditional expression over Zen values (the library's ``If``)."""
    if not isinstance(cond, Zen):
        cond = lift(cond)
    if isinstance(then, Zen) and not isinstance(orelse, Zen):
        orelse = _lift_to(orelse, then.type)
    elif isinstance(orelse, Zen) and not isinstance(then, Zen):
        then = _lift_to(then, orelse.type)
    elif not isinstance(then, Zen):
        raise ZenTypeError("if_ branches need at least one Zen value")
    return Zen(ex.If(cond.expr, then.expr, orelse.expr))


def symbolic(annotation: Any, name: Optional[str] = None) -> Zen:
    """A fresh symbolic variable of the given type."""
    zen_type = ty.from_annotation(annotation)
    if name is None:
        name = f"var{next(_fresh_names)}"
    return Zen(ex.Var(name, zen_type))


def create(cls: type, **fields: Any) -> Zen:
    """Construct a Zen object value of a registered dataclass type."""
    obj_type = ty.object_type(cls)
    lifted: Dict[str, ex.Expr] = {}
    for name, value in fields.items():
        expected = obj_type.field_type(name)
        lifted[name] = _lift_to(value, expected).expr
    return Zen(ex.Create(obj_type, lifted))


def pair(first: Zen, second: Zen, *rest: Zen) -> Zen:
    """Construct a tuple value."""
    items = (first, second) + rest
    return Zen(ex.MakeTuple([z.expr for z in items]))


def some(value: Any, annotation: Any = None) -> Zen:
    """Construct ``Some(value)``."""
    lifted = lift(value, annotation) if annotation or not isinstance(value, Zen) else value
    return Zen(ex.OptionSome(lifted.expr))


def none(annotation: Any) -> Zen:
    """Construct ``None`` at ``Option[annotation]``."""
    return Zen(ex.OptionNone(ty.from_annotation(annotation)))


def empty_list(annotation: Any) -> Zen:
    """The empty list at ``List[annotation]``."""
    return Zen(ex.ListEmpty(ty.from_annotation(annotation)))


def cons(head: Any, tail: Zen) -> Zen:
    """Prepend an element to a Zen list."""
    if not isinstance(tail.type, ty.ListType):
        raise ZenTypeError(f"cons tail must be a list, got {tail.type}")
    lifted = _lift_to(head, tail.type.element)
    return Zen(ex.ListCons(lifted.expr, tail.expr))


def zen_list(annotation: Any, items: Sequence[Any]) -> Zen:
    """Build a Zen list from Python items (lifted at the element type)."""
    element = ty.from_annotation(annotation)
    result = Zen(ex.ListEmpty(element))
    for item in reversed(list(items)):
        result = cons(_lift_to(item, element), result)
    return result
