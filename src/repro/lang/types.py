"""The Zen type system (Figure 9 of the paper).

Types ``τ`` are: ``bool``, fixed-width integers (byte, short, ushort,
int, uint, long, ulong), pairs/tuples, objects (records), ``List[τ]``,
``Option[τ]`` and maps (adapted to lists of pairs).

Python has no fixed-width integers, so this module provides *annotation
markers* (:data:`Byte`, :data:`UInt`, ...) that users put in dataclass
field annotations and function signatures.  The reflection layer
(:func:`from_annotation`) converts annotations into :class:`ZenType`
instances, mirroring how the C# implementation introspects types at
runtime.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..errors import ZenTypeError


class ZenType:
    """Base class of all Zen types.  Instances are immutable."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return str(self)


class BoolType(ZenType):
    """The Boolean type."""

    def __str__(self) -> str:
        return "bool"


class IntType(ZenType):
    """A fixed-width two's-complement integer type."""

    _NAMES = {
        (8, False): "byte",
        (8, True): "sbyte",
        (16, True): "short",
        (16, False): "ushort",
        (32, True): "int",
        (32, False): "uint",
        (64, True): "long",
        (64, False): "ulong",
    }

    def __init__(self, width: int, signed: bool):
        if width <= 0:
            raise ZenTypeError(f"integer width must be positive: {width}")
        self.width = width
        self.signed = signed

    def _key(self) -> tuple:
        return (self.width, self.signed)

    def __str__(self) -> str:
        name = self._NAMES.get((self.width, self.signed))
        if name:
            return name
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce a Python int into this type's range (wraparound)."""
        masked = value & ((1 << self.width) - 1)
        if self.signed and masked >= (1 << (self.width - 1)):
            masked -= 1 << self.width
        return masked

    def check(self, value: int) -> int:
        """Validate that a Python int is representable; returns it."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ZenTypeError(f"expected an int for {self}, got {value!r}")
        if not self.min_value <= value <= self.max_value:
            raise ZenTypeError(f"{value} out of range for {self}")
        return value


class TupleType(ZenType):
    """An n-ary tuple type (the paper's pairs, generalized)."""

    def __init__(self, elements: Sequence[ZenType]):
        if len(elements) < 2:
            raise ZenTypeError("tuples need at least two elements")
        self.elements = tuple(elements)

    def _key(self) -> tuple:
        return self.elements

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


class ObjectType(ZenType):
    """A record type backed by a registered Python dataclass."""

    def __init__(self, cls: type, fields: Dict[str, ZenType]):
        self.cls = cls
        self.fields = dict(fields)

    def _key(self) -> tuple:
        return (self.cls,)

    def __str__(self) -> str:
        return self.cls.__name__

    def field_type(self, name: str) -> ZenType:
        """Type of a field; raises for unknown field names."""
        try:
            return self.fields[name]
        except KeyError:
            raise ZenTypeError(
                f"{self.cls.__name__} has no field {name!r}; "
                f"fields are {sorted(self.fields)}"
            ) from None


class ListType(ZenType):
    """A (bounded, for symbolic reasoning) homogeneous list type."""

    def __init__(self, element: ZenType):
        self.element = element

    def _key(self) -> tuple:
        return (self.element,)

    def __str__(self) -> str:
        return f"List[{self.element}]"


class OptionType(ZenType):
    """An optional value, represented as a flag plus a value field."""

    def __init__(self, element: ZenType):
        self.element = element

    def _key(self) -> tuple:
        return (self.element,)

    def __str__(self) -> str:
        return f"Option[{self.element}]"


class MapType(ZenType):
    """A finite map, adapted to ``List[(key, value)]`` (paper §5).

    The ``adapt`` expression converts between the map view and its
    backing list-of-pairs representation; most operations are defined
    on the adapted form.
    """

    def __init__(self, key: ZenType, value: ZenType):
        self.key = key
        self.value = value

    def _key(self) -> tuple:
        return (self.key, self.value)

    def __str__(self) -> str:
        return f"Map[{self.key}, {self.value}]"

    def adapted(self) -> ListType:
        """The backing representation: a list of key/value pairs."""
        return ListType(TupleType([self.key, self.value]))


# ----------------------------------------------------------------------
# Singleton instances and annotation markers
# ----------------------------------------------------------------------

BOOL = BoolType()
BYTE = IntType(8, False)
SBYTE = IntType(8, True)
SHORT = IntType(16, True)
USHORT = IntType(16, False)
INT = IntType(32, True)
UINT = IntType(32, False)
LONG = IntType(64, True)
ULONG = IntType(64, False)


class _Marker:
    """Annotation marker resolving to a fixed ZenType."""

    def __init__(self, zen_type: ZenType, name: str):
        self.zen_type = zen_type
        self.__name__ = name

    def __repr__(self) -> str:
        return self.__name__


Bool = _Marker(BOOL, "Bool")
Byte = _Marker(BYTE, "Byte")
SByte = _Marker(SBYTE, "SByte")
Short = _Marker(SHORT, "Short")
UShort = _Marker(USHORT, "UShort")
Int = _Marker(INT, "Int")
UInt = _Marker(UINT, "UInt")
Long = _Marker(LONG, "Long")
ULong = _Marker(ULONG, "ULong")


class _GenericMarker:
    """Annotation marker for parameterized types (ZList[Int], ...)."""

    def __init__(self, name: str, arity: int, build):
        self.__name__ = name
        self._arity = arity
        self._build = build

    def __getitem__(self, params):
        if not isinstance(params, tuple):
            params = (params,)
        if len(params) != self._arity:
            raise ZenTypeError(
                f"{self.__name__} takes {self._arity} parameter(s)"
            )
        return _Parameterized(self, params)

    def __repr__(self) -> str:
        return self.__name__


class _Parameterized:
    """An applied generic marker, e.g. ``ZList[Int]``."""

    def __init__(self, marker: _GenericMarker, params: tuple):
        self.marker = marker
        self.params = params

    def resolve(self) -> ZenType:
        inner = tuple(from_annotation(p) for p in self.params)
        return self.marker._build(*inner)

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.params)
        return f"{self.marker.__name__}[{inner}]"


ZList = _GenericMarker("ZList", 1, lambda e: ListType(e))
ZOption = _GenericMarker("ZOption", 1, lambda e: OptionType(e))
ZPair = _GenericMarker("ZPair", 2, lambda a, b: TupleType([a, b]))
ZMap = _GenericMarker("ZMap", 2, lambda k, v: MapType(k, v))


# ----------------------------------------------------------------------
# Object registration (reflection over dataclasses)
# ----------------------------------------------------------------------

_REGISTRY: Dict[type, ObjectType] = {}


def register_object(cls: type) -> type:
    """Register a dataclass as a Zen object type (decorator-friendly).

    Field annotations must be Zen annotation markers or other
    registered dataclasses::

        @register_object
        @dataclasses.dataclass
        class Header:
            dst_ip: UInt
            src_ip: UInt
    """
    if not dataclasses.is_dataclass(cls):
        raise ZenTypeError(
            f"{cls.__name__} must be a dataclass to register as a Zen object"
        )
    hints = typing.get_type_hints(cls)
    fields: Dict[str, ZenType] = {}
    for field in dataclasses.fields(cls):
        annotation = hints.get(field.name, field.type)
        fields[field.name] = from_annotation(annotation)
    obj_type = ObjectType(cls, fields)
    _REGISTRY[cls] = obj_type
    return cls


def object_type(cls: type) -> ObjectType:
    """Look up the registered ObjectType for a dataclass."""
    try:
        return _REGISTRY[cls]
    except KeyError:
        raise ZenTypeError(
            f"{cls.__name__} is not registered; decorate it with "
            "@register_object"
        ) from None


def is_registered(cls: type) -> bool:
    """True if `cls` has been registered as a Zen object."""
    return cls in _REGISTRY


def from_annotation(annotation: Any) -> ZenType:
    """Resolve a Python annotation into a ZenType.

    Accepts Zen markers (``UInt``), parameterized markers
    (``ZList[Int]``), registered dataclasses, ``bool``, ZenType
    instances (passed through), and tuples of annotations.
    """
    if isinstance(annotation, ZenType):
        return annotation
    if isinstance(annotation, _Marker):
        return annotation.zen_type
    if isinstance(annotation, _Parameterized):
        return annotation.resolve()
    if annotation is bool:
        return BOOL
    if isinstance(annotation, type) and annotation in _REGISTRY:
        return _REGISTRY[annotation]
    if isinstance(annotation, tuple):
        return TupleType([from_annotation(a) for a in annotation])
    if annotation is int:
        raise ZenTypeError(
            "bare `int` is ambiguous; use a fixed-width marker such as "
            "Int, UInt, Byte, ..."
        )
    raise ZenTypeError(f"cannot interpret annotation {annotation!r}")


# ----------------------------------------------------------------------
# Default (zero) values and concrete-value validation
# ----------------------------------------------------------------------


def default_value(zen_type: ZenType) -> Any:
    """The all-zeros value of a type (used to pad absent list cells)."""
    if isinstance(zen_type, BoolType):
        return False
    if isinstance(zen_type, IntType):
        return 0
    if isinstance(zen_type, TupleType):
        return tuple(default_value(e) for e in zen_type.elements)
    if isinstance(zen_type, ObjectType):
        return zen_type.cls(
            **{name: default_value(t) for name, t in zen_type.fields.items()}
        )
    if isinstance(zen_type, ListType):
        return []
    if isinstance(zen_type, OptionType):
        return None
    if isinstance(zen_type, MapType):
        return {}
    raise ZenTypeError(f"no default for {zen_type}")


def check_value(zen_type: ZenType, value: Any) -> Any:
    """Validate a concrete Python value against a type; returns it.

    Options use ``None`` / plain values; a plain value of the element
    type is accepted as "Some".  Maps accept Python dicts.
    """
    if isinstance(zen_type, BoolType):
        if not isinstance(value, bool):
            raise ZenTypeError(f"expected bool, got {value!r}")
        return value
    if isinstance(zen_type, IntType):
        return zen_type.check(value)
    if isinstance(zen_type, TupleType):
        if not isinstance(value, tuple) or len(value) != len(zen_type.elements):
            raise ZenTypeError(f"expected {zen_type}, got {value!r}")
        return tuple(
            check_value(t, v) for t, v in zip(zen_type.elements, value)
        )
    if isinstance(zen_type, ObjectType):
        if not isinstance(value, zen_type.cls):
            raise ZenTypeError(
                f"expected {zen_type.cls.__name__}, got {value!r}"
            )
        for name, ftype in zen_type.fields.items():
            check_value(ftype, getattr(value, name))
        return value
    if isinstance(zen_type, ListType):
        if not isinstance(value, list):
            raise ZenTypeError(f"expected list, got {value!r}")
        return [check_value(zen_type.element, v) for v in value]
    if isinstance(zen_type, OptionType):
        if value is None:
            return None
        return check_value(zen_type.element, value)
    if isinstance(zen_type, MapType):
        if not isinstance(value, dict):
            raise ZenTypeError(f"expected dict, got {value!r}")
        return {
            check_value(zen_type.key, k): check_value(zen_type.value, v)
            for k, v in value.items()
        }
    raise ZenTypeError(f"unknown type {zen_type}")
