"""List combinators written *on top of* the Zen language.

Everything here is user-level code: each helper is an ordinary Python
function that recurses through the host language and builds ``case``
expressions, exactly how §3 of the paper encodes list processing.
They demonstrate that the core language needs no built-in list
library, and they are used by the route-map model.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ZenTypeError
from . import types as ty
from .builder import Zen, constant, cons, if_, some, none


def is_empty(lst: Zen) -> Zen:
    """Whether a Zen list is empty."""
    return lst.case(
        empty=lambda: constant(True, bool),
        cons=lambda hd, tl: constant(False, bool),
    )


def length(lst: Zen, int_annotation: Any = ty.USHORT) -> Zen:
    """List length as a Zen integer (default ushort)."""
    int_type = ty.from_annotation(int_annotation)
    return lst.case(
        empty=lambda: constant(0, int_type),
        cons=lambda hd, tl: length(tl, int_type) + constant(1, int_type),
    )


def contains(lst: Zen, item: Any) -> Zen:
    """Whether the list contains an element equal to `item`."""
    return lst.case(
        empty=lambda: constant(False, bool),
        cons=lambda hd, tl: if_(hd == item, True, contains(tl, item)),
    )


def any_match(lst: Zen, pred: Callable[[Zen], Zen]) -> Zen:
    """Whether any element satisfies the predicate."""
    return lst.case(
        empty=lambda: constant(False, bool),
        cons=lambda hd, tl: if_(pred(hd), True, any_match(tl, pred)),
    )


def all_match(lst: Zen, pred: Callable[[Zen], Zen]) -> Zen:
    """Whether every element satisfies the predicate."""
    return lst.case(
        empty=lambda: constant(True, bool),
        cons=lambda hd, tl: if_(pred(hd), all_match(tl, pred), False),
    )


def fold(lst: Zen, init: Zen, step: Callable[[Zen, Zen], Zen]) -> Zen:
    """Right fold: ``step(hd, fold(tl))`` with `init` for nil."""
    return lst.case(
        empty=lambda: init,
        cons=lambda hd, tl: step(hd, fold(tl, init, step)),
    )


def map_elements(lst: Zen, fn: Callable[[Zen], Zen]) -> Zen:
    """Apply `fn` to every element, preserving list structure."""
    list_type = lst.type
    if not isinstance(list_type, ty.ListType):
        raise ZenTypeError(f"map_elements needs a list, got {list_type}")

    def go(rest: Zen) -> Zen:
        return rest.case(
            empty=lambda: rest,
            cons=lambda hd, tl: cons(fn(hd), go(tl)),
        )

    result = go(lst)
    return result


def head_option(lst: Zen) -> Zen:
    """The first element as an option."""
    list_type = lst.type
    if not isinstance(list_type, ty.ListType):
        raise ZenTypeError(f"head_option needs a list, got {list_type}")
    return lst.case(
        empty=lambda: none(list_type.element),
        cons=lambda hd, tl: some(hd),
    )


def find_first(lst: Zen, pred: Callable[[Zen], Zen]) -> Zen:
    """The first element satisfying `pred`, as an option."""
    list_type = lst.type
    if not isinstance(list_type, ty.ListType):
        raise ZenTypeError(f"find_first needs a list, got {list_type}")
    return lst.case(
        empty=lambda: none(list_type.element),
        cons=lambda hd, tl: if_(pred(hd), some(hd), find_first(tl, pred)),
    )


# --- map operations over the adapted representation (§5) ----------------


def map_get(mapping: Zen, key: Any) -> Zen:
    """Look up a key in a Zen map; returns an option of the value."""
    map_type = mapping.type
    if not isinstance(map_type, ty.MapType):
        raise ZenTypeError(f"map_get needs a map, got {map_type}")
    entries = mapping.adapt(map_type.adapted())
    match = find_first(entries, lambda entry: entry[0] == key)
    return if_(
        match.has_value(),
        some(match.value()[1]),
        none(map_type.value),
    )


def map_set(mapping: Zen, key: Any, value: Any) -> Zen:
    """Insert/overwrite a key (new entries go to the list head)."""
    map_type = mapping.type
    if not isinstance(map_type, ty.MapType):
        raise ZenTypeError(f"map_set needs a map, got {map_type}")
    from .builder import pair, _lift_to

    entries = mapping.adapt(map_type.adapted())
    new_entry = pair(
        _lift_to(key, map_type.key), _lift_to(value, map_type.value)
    )
    return cons(new_entry, entries).adapt(map_type)


def map_contains_key(mapping: Zen, key: Any) -> Zen:
    """Whether a key is present in a Zen map."""
    return map_get(mapping, key).has_value()
