"""Abstract syntax of the Zen expression language (Figure 9).

Expressions are immutable trees.  List ``case`` nodes carry Python
callables for their branches, mirroring the C# embedding where the
branch bodies are host-language lambdas: the recursion through the
host language is what makes bounded symbolic evaluation terminate
(each ``case`` peels one cell off the bounded list).

Expressions are deliberately dumb data; all semantics live in the
evaluators under :mod:`repro.backends`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..errors import ZenTypeError
from . import types as ty

_ids = itertools.count()


class Expr:
    """Base class for expression nodes.

    Every node exposes ``type`` (its ZenType) and ``children``.
    Identity-based hashing keeps nodes usable as cache keys even
    though the Zen wrapper overloads ``==``.
    """

    __slots__ = ("type", "_id")

    def __init__(self, zen_type: ty.ZenType):
        self.type = zen_type
        self._id = next(_ids)

    @property
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __hash__(self) -> int:
        return self._id

    def __eq__(self, other: object) -> bool:
        return self is other


class Constant(Expr):
    """A literal value of any Zen type."""

    __slots__ = ("value",)

    def __init__(self, value: Any, zen_type: ty.ZenType):
        super().__init__(zen_type)
        self.value = ty.check_value(zen_type, value)

    def __str__(self) -> str:
        return repr(self.value)


class Var(Expr):
    """A symbolic input variable."""

    __slots__ = ("name",)

    def __init__(self, name: str, zen_type: ty.ZenType):
        super().__init__(zen_type)
        self.name = name

    def __str__(self) -> str:
        return self.name


class Lifted(Expr):
    """An evaluator-internal value re-entering the expression tree.

    When an evaluator invokes a host-language branch (list case, map
    fold) it wraps already-evaluated head/tail values in ``Lifted`` so
    the branch can build further expressions over them.  The payload's
    meaning depends on the evaluator that created it, identified by
    ``session`` so stale payloads are detected instead of misread.
    """

    __slots__ = ("payload", "session")

    def __init__(self, payload: Any, zen_type: ty.ZenType, session: object):
        super().__init__(zen_type)
        self.payload = payload
        self.session = session

    def __str__(self) -> str:
        return f"<lifted {self.type}>"


_ARITH_OPS = {"add", "sub", "mul"}
_BITWISE_OPS = {"band", "bor", "bxor"}
_SHIFT_OPS = {"shl", "shr"}
_CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_LOGIC_OPS = {"and", "or"}

BINARY_OPS = _ARITH_OPS | _BITWISE_OPS | _SHIFT_OPS | _CMP_OPS | _LOGIC_OPS


class Binary(Expr):
    """A binary operation.

    Arithmetic, bitwise and shift operators take two operands of the
    same integer type and return it; comparisons return bool (equality
    is defined on every type, ordering only on integers); logical
    and/or take booleans.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ZenTypeError(f"unknown binary operator {op!r}")
        lt, rt = left.type, right.type
        if op in _LOGIC_OPS:
            if not isinstance(lt, ty.BoolType) or not isinstance(rt, ty.BoolType):
                raise ZenTypeError(f"{op} requires bool operands")
            result = ty.BOOL
        elif op in _CMP_OPS:
            if lt != rt:
                raise ZenTypeError(f"cannot compare {lt} with {rt}")
            if op not in ("eq", "ne") and not isinstance(lt, ty.IntType):
                raise ZenTypeError(f"ordering {op} requires integer operands")
            result = ty.BOOL
        else:
            if not isinstance(lt, ty.IntType) or lt != rt:
                raise ZenTypeError(
                    f"{op} requires two integers of the same type, "
                    f"got {lt} and {rt}"
                )
            result = lt
        super().__init__(result)
        self.op = op
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.op} {self.left} {self.right})"


class Unary(Expr):
    """Unary operations: logical not, bitwise complement, negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op == "not":
            if not isinstance(operand.type, ty.BoolType):
                raise ZenTypeError("not requires a bool operand")
            result = ty.BOOL
        elif op in ("bnot", "neg"):
            if not isinstance(operand.type, ty.IntType):
                raise ZenTypeError(f"{op} requires an integer operand")
            result = operand.type
        else:
            raise ZenTypeError(f"unknown unary operator {op!r}")
        super().__init__(result)
        self.op = op
        self.operand = operand

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


class If(Expr):
    """Conditional expression; both branches must share one type."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr):
        if not isinstance(cond.type, ty.BoolType):
            raise ZenTypeError("if condition must be bool")
        if then.type != orelse.type:
            raise ZenTypeError(
                f"if branches disagree: {then.type} vs {orelse.type}"
            )
        super().__init__(then.type)
        self.cond = cond
        self.then = then
        self.orelse = orelse

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)

    def __str__(self) -> str:
        return f"(if {self.cond} {self.then} {self.orelse})"


class Create(Expr):
    """Object construction: ``create[τ](e, ..., e)``."""

    __slots__ = ("fields",)

    def __init__(self, obj_type: ty.ObjectType, fields: Dict[str, Expr]):
        if set(fields) != set(obj_type.fields):
            missing = set(obj_type.fields) - set(fields)
            extra = set(fields) - set(obj_type.fields)
            raise ZenTypeError(
                f"create[{obj_type}] field mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        for name, expr in fields.items():
            expected = obj_type.fields[name]
            if expr.type != expected:
                raise ZenTypeError(
                    f"field {name} of {obj_type} expects {expected}, "
                    f"got {expr.type}"
                )
        super().__init__(obj_type)
        self.fields = dict(fields)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.fields[name] for name in sorted(self.fields))

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"{self.type}({inner})"


class GetField(Expr):
    """Field projection ``e.f``."""

    __slots__ = ("obj", "field")

    def __init__(self, obj: Expr, field: str):
        if not isinstance(obj.type, ty.ObjectType):
            raise ZenTypeError(f"cannot project field of {obj.type}")
        super().__init__(obj.type.field_type(field))
        self.obj = obj
        self.field = field

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.obj,)

    def __str__(self) -> str:
        return f"{self.obj}.{self.field}"


class WithField(Expr):
    """Functional field update ``e1[f := e2]``."""

    __slots__ = ("obj", "field", "value")

    def __init__(self, obj: Expr, field: str, value: Expr):
        if not isinstance(obj.type, ty.ObjectType):
            raise ZenTypeError(f"cannot update field of {obj.type}")
        expected = obj.type.field_type(field)
        if value.type != expected:
            raise ZenTypeError(
                f"field {field} expects {expected}, got {value.type}"
            )
        super().__init__(obj.type)
        self.obj = obj
        self.field = field
        self.value = value

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.obj, self.value)

    def __str__(self) -> str:
        return f"{self.obj}[{self.field} := {self.value}]"


class MakeTuple(Expr):
    """Tuple construction."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        super().__init__(ty.TupleType([e.type for e in items]))
        self.items = tuple(items)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.items

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.items) + ")"


class TupleGet(Expr):
    """Tuple projection by index."""

    __slots__ = ("tup", "index")

    def __init__(self, tup: Expr, index: int):
        if not isinstance(tup.type, ty.TupleType):
            raise ZenTypeError(f"cannot index into {tup.type}")
        if not 0 <= index < len(tup.type.elements):
            raise ZenTypeError(
                f"tuple index {index} out of range for {tup.type}"
            )
        super().__init__(tup.type.elements[index])
        self.tup = tup
        self.index = index

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.tup,)

    def __str__(self) -> str:
        return f"{self.tup}[{self.index}]"


class ListEmpty(Expr):
    """The empty list literal ``[]`` at a given element type."""

    __slots__ = ()

    def __init__(self, element: ty.ZenType):
        super().__init__(ty.ListType(element))

    def __str__(self) -> str:
        return "[]"


class ListCons(Expr):
    """List construction ``e1 :: e2``."""

    __slots__ = ("head", "tail")

    def __init__(self, head: Expr, tail: Expr):
        if not isinstance(tail.type, ty.ListType):
            raise ZenTypeError(f"cons tail must be a list, got {tail.type}")
        if head.type != tail.type.element:
            raise ZenTypeError(
                f"cons head {head.type} does not match list of "
                f"{tail.type.element}"
            )
        super().__init__(tail.type)
        self.head = head
        self.tail = tail

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.head, self.tail)

    def __str__(self) -> str:
        return f"({self.head} :: {self.tail})"


class ListCase(Expr):
    """List elimination ``case e1 of e2 | (hd, tl) -> e3``.

    ``empty`` is a thunk producing the nil-branch expression; ``cons``
    maps (head expr, tail expr) to the cons-branch expression.  The
    result type is determined by probing the empty branch once.
    """

    __slots__ = ("lst", "empty", "cons", "_empty_probe")

    def __init__(
        self,
        lst: Expr,
        empty: Callable[[], Expr],
        cons: Callable[[Expr, Expr], Expr],
    ):
        if not isinstance(lst.type, ty.ListType):
            raise ZenTypeError(f"case scrutinee must be a list, got {lst.type}")
        probe = empty()
        super().__init__(probe.type)
        self.lst = lst
        self.empty = empty
        self.cons = cons
        self._empty_probe = probe

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.lst,)

    def __str__(self) -> str:
        return f"(case {self.lst} of [] | hd::tl)"


class OptionNone(Expr):
    """``None`` at a given element type."""

    __slots__ = ()

    def __init__(self, element: ty.ZenType):
        super().__init__(ty.OptionType(element))

    def __str__(self) -> str:
        return f"None[{self.type.element}]"  # type: ignore[attr-defined]


class OptionSome(Expr):
    """``Some(e)``."""

    __slots__ = ("value",)

    def __init__(self, value: Expr):
        super().__init__(ty.OptionType(value.type))
        self.value = value

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"Some({self.value})"


class OptionHasValue(Expr):
    """Flag projection of an option."""

    __slots__ = ("opt",)

    def __init__(self, opt: Expr):
        if not isinstance(opt.type, ty.OptionType):
            raise ZenTypeError(f"has_value requires an option, got {opt.type}")
        super().__init__(ty.BOOL)
        self.opt = opt

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.opt,)

    def __str__(self) -> str:
        return f"{self.opt}.has_value"


class OptionValue(Expr):
    """Value projection of an option (default value when None)."""

    __slots__ = ("opt",)

    def __init__(self, opt: Expr):
        if not isinstance(opt.type, ty.OptionType):
            raise ZenTypeError(f"value requires an option, got {opt.type}")
        super().__init__(opt.type.element)
        self.opt = opt

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.opt,)

    def __str__(self) -> str:
        return f"{self.opt}.value"


class Adapt(Expr):
    """``adapt[τ1, τ2](e)``: view a value of τ1 at type τ2.

    The only built-in adaptation is between maps and their backing
    list-of-pairs representation (both directions); evaluators reject
    other combinations.  This is the extensibility hook of §5.
    """

    __slots__ = ("operand",)

    def __init__(self, operand: Expr, target: ty.ZenType):
        source = operand.type
        ok = (
            isinstance(source, ty.MapType)
            and target == source.adapted()
        ) or (
            isinstance(target, ty.MapType)
            and source == target.adapted()
        )
        if not ok:
            raise ZenTypeError(f"no adaptation from {source} to {target}")
        super().__init__(target)
        self.operand = operand

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"adapt[{self.operand.type}, {self.type}]({self.operand})"
