"""Offline BDD variable reordering (cf. Rudell's dynamic reordering).

The manager keeps an append-only order, so reordering here is
*offline*: a root function is rebuilt into a fresh manager under a
candidate order, and a sifting-style search keeps changes that shrink
the node count.  This is the workflow Zen's ordering heuristics avoid
needing in the common case (§6) but which remains useful when a model
defeats the static analysis.

The entry point is :func:`sift`, which returns a (manager, root,
order) triple; :func:`rebuild` is the underlying order-changing copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ZenBudgetExceeded, ZenSolverError
from .manager import FALSE, TRUE, Bdd


def rebuild(
    source: Bdd, root: int, order: Sequence[int], budget=None
) -> Tuple[Bdd, int]:
    """Copy `root` into a fresh manager under a new variable order.

    `order[k]` is the source variable placed at level k of the new
    manager.  All source variables must appear exactly once.  `budget`
    (a Budget or running meter) is installed on the fresh target
    manager for the duration of the copy, bounding the rebuild itself.
    """
    if sorted(order) != list(range(source.num_vars)):
        raise ZenSolverError("order must be a permutation of all variables")
    target = Bdd()
    target.new_vars(source.num_vars)
    meter = None
    if budget is not None:
        target.set_budget(budget)
        meter = target.budget
    # position_of[v] = level of source variable v in the new manager.
    position_of = {v: k for k, v in enumerate(order)}

    # Rebuild bottom-up with Shannon expansion against the *new* order:
    # recursively cofactor the source function on the new top variable.
    cache: Dict[Tuple[int, int], int] = {}

    def copy(node: int, level: int) -> int:
        if node == TRUE or node == FALSE:
            return node
        if meter is not None:
            # The per-kernel amortized checkpoints never fire on the
            # small managers rebuilds produce, so checkpoint here once
            # per copied (node, level) pair instead.
            meter.tick(target.stats().node_count)
        key = (node, level)
        cached = cache.get(key)
        if cached is not None:
            return cached
        # Find the next new-order level that the node depends on.
        support = _support_set(source, node)
        while level < len(order) and order[level] not in support:
            level += 1
        if level >= len(order):
            raise ZenSolverError("internal: support exhausted during rebuild")
        var = order[level]
        low = copy(source.restrict(node, {var: False}), level + 1)
        high = copy(source.restrict(node, {var: True}), level + 1)
        result = target.ite(target.var(level), high, low)
        cache[key] = result
        return result

    new_root = copy(root, 0)
    return target, new_root


_SUPPORT_CACHE: Dict[Tuple[int, int], frozenset] = {}


def _support_set(manager: Bdd, node: int) -> frozenset:
    key = (id(manager), node)
    cached = _SUPPORT_CACHE.get(key)
    if cached is None:
        cached = frozenset(manager.support(node))
        _SUPPORT_CACHE[key] = cached
    return cached


def sift(
    source: Bdd,
    root: int,
    max_passes: int = 2,
    max_vars: Optional[int] = None,
    budget=None,
    on_budget: str = "degrade",
) -> Tuple[Bdd, int, List[int]]:
    """Sifting-style search for a smaller variable order.

    Each pass moves every variable (largest-contribution first)
    through all positions and keeps the best.  Offline rebuilds make
    this O(n²) rebuilds per pass, so it is intended for small-to-
    medium functions (``max_vars`` guards against accidents).

    `budget` bounds the whole search with one shared meter (every
    candidate rebuild checkpoints against it).  Variable moves are
    committed only after a full position scan, so exhaustion mid-scan
    never leaves a half-applied order.  When the budget runs out,
    ``on_budget="degrade"`` (the default) stops the search and returns
    the best fully-evaluated order found so far — an anytime result —
    while ``on_budget="raise"`` propagates the
    :class:`~repro.errors.ZenBudgetExceeded` (the source manager is
    never mutated either way, so the caller's state stays valid).

    Returns (new manager, new root, order) where ``order[k]`` is the
    original variable at level k.
    """
    if on_budget not in ("degrade", "raise"):
        raise ZenSolverError(
            f"on_budget must be 'degrade' or 'raise', got {on_budget!r}"
        )
    num_vars = source.num_vars
    if max_vars is not None and num_vars > max_vars:
        raise ZenSolverError(
            f"sift limited to {max_vars} variables, manager has {num_vars}"
        )
    meter = budget
    if meter is not None and not hasattr(meter, "tick"):
        meter = meter.start()
    order = list(range(num_vars))
    # If even the baseline rebuild exceeds the budget there is nothing
    # to degrade to, so this raise is unconditional.
    manager, current = rebuild(source, root, order, budget=meter)
    best_size = manager.node_count(current)
    support = set(source.support(root))

    try:
        for _ in range(max_passes):
            improved = False
            for var in sorted(support):
                home = order.index(var)
                best_pos = home
                for pos in range(num_vars):
                    if pos == home:
                        continue
                    candidate = list(order)
                    candidate.remove(var)
                    candidate.insert(pos, var)
                    cand_manager, cand_root = rebuild(
                        source, root, candidate, budget=meter
                    )
                    size = cand_manager.node_count(cand_root)
                    if size < best_size:
                        best_size = size
                        best_pos = pos
                if best_pos != home:
                    order.remove(var)
                    order.insert(best_pos, var)
                    improved = True
            if not improved:
                break
    except ZenBudgetExceeded:
        if on_budget != "degrade":
            raise
        # Fall through: `order` holds only committed (fully evaluated)
        # moves, each of which rebuilt successfully, so the final
        # rebuild below is known to be tractable.
    manager, current = rebuild(source, root, order)
    return manager, current, order


def order_quality(manager: Bdd, root: int) -> int:
    """Node count, the metric sifting minimizes (exposed for tests)."""
    return manager.node_count(root)
