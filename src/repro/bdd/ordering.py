"""Variable-ordering strategies for the BDD backend.

BDD sizes are extremely sensitive to variable order (Rudell 1993; Aziz
et al. 1994).  The paper's key heuristic: when two multi-bit values are
compared for (in)equality, their bits must be *interleaved* in the
order, otherwise the equality BDD is exponential in the bit width.

This module computes variable allocations.  Because the manager's
levels are append-only, ordering decisions are made *before* variables
are allocated: callers describe groups of bitvectors and receive the
level layout to allocate against — exactly how the Zen implementation
picks an ordering strategy from its alias-style analysis before
constructing any BDDs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ZenSolverError


class VariableAllocator:
    """Hands out BDD variable indices according to an ordering plan.

    Two allocation styles are supported:

    * :meth:`sequential` — a block of contiguous indices.
    * :meth:`interleaved` — several equal-width blocks whose bits
      alternate (bit 0 of each group, then bit 1 of each group, ...).

    The allocator only reserves index ranges; the caller must create
    the variables in the manager with ``new_vars`` to cover them.
    """

    def __init__(self) -> None:
        self._next = 0

    @property
    def allocated(self) -> int:
        """Total number of indices reserved so far."""
        return self._next

    def sequential(self, width: int) -> List[int]:
        """Reserve `width` contiguous variable indices."""
        indices = list(range(self._next, self._next + width))
        self._next += width
        return indices

    def interleaved(self, group_count: int, width: int) -> List[List[int]]:
        """Reserve `group_count` groups of `width` interleaved indices.

        Returns one index list per group; group g's bit b sits at
        offset ``b * group_count + g`` in the reserved block.  Use this
        for bitvectors that are compared with each other.
        """
        if group_count <= 0 or width < 0:
            raise ZenSolverError("invalid interleaving shape")
        base = self._next
        self._next += group_count * width
        return [
            [base + b * group_count + g for b in range(width)]
            for g in range(group_count)
        ]


def union_find_interleave_groups(
    widths: Sequence[int], comparisons: Iterable[Tuple[int, int]]
) -> List[List[int]]:
    """Group bitvector ids that must be interleaved together.

    `widths[i]` is the bit width of value `i`; `comparisons` lists
    pairs of value ids that appear together in a comparison.  Values
    transitively linked by comparisons are merged into one group (the
    alias-analysis-style heuristic from the paper).  Returns groups of
    value ids; singleton groups mean sequential allocation is fine.
    """
    parent = list(range(len(widths)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for a, b in comparisons:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    groups: Dict[int, List[int]] = {}
    for i in range(len(widths)):
        groups.setdefault(find(i), []).append(i)
    return list(groups.values())


def plan_order(
    widths: Sequence[int], comparisons: Iterable[Tuple[int, int]]
) -> List[List[int]]:
    """Produce a full variable allocation for a set of bitvectors.

    Returns, for each value id, the list of BDD variable indices for
    its bits (LSB first).  Values in the same comparison group are
    interleaved; groups are laid out one after another.
    """
    alloc = VariableAllocator()
    result: List[List[int]] = [[] for _ in widths]
    for group in union_find_interleave_groups(widths, comparisons):
        if len(group) == 1:
            vid = group[0]
            result[vid] = alloc.sequential(widths[vid])
            continue
        width = max(widths[vid] for vid in group)
        blocks = alloc.interleaved(len(group), width)
        for vid, block in zip(group, blocks):
            result[vid] = block[: widths[vid]]
    return result
