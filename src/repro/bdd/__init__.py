"""Binary decision diagram substrate.

Provides the ROBDD manager used by the Zen BDD backend and the state
set transformer abstraction, plus variable-ordering planning helpers.
"""

from .manager import FALSE, TRUE, Bdd, BddStats
from .ordering import VariableAllocator, plan_order, union_find_interleave_groups
from .reorder import order_quality, rebuild, sift

__all__ = [
    "Bdd",
    "BddStats",
    "TRUE",
    "FALSE",
    "VariableAllocator",
    "plan_order",
    "union_find_interleave_groups",
    "rebuild",
    "sift",
    "order_quality",
]
