"""A reduced ordered binary decision diagram (ROBDD) manager.

This is the BDD backend of the paper: the high-performance decision
diagram library used both for bounded model checking and for the state
set transformer abstraction (pre/post image via existential
quantification, variable renaming between transformer variable sets).

Design notes
------------
* Nodes are integers; 0 is the FALSE terminal and 1 is TRUE.
* Each internal node stores a *level* (its position in the variable
  order), a low child (level-variable = False) and a high child.
* A unique table enforces canonicity; a computed cache memoizes the
  core recursive operations.
* Variables are created against an explicit order; helper constructors
  support the interleaved orders the paper's heuristics produce.

The manager deliberately exposes levels == variable indices: variable
``i`` sits at level ``i`` in the order.  Callers that need a specific
interleaving (e.g. transformer input/output pairing) allocate their
variables in the desired order, mirroring how Zen's ordering heuristic
chooses an allocation before building any BDDs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ZenSolverError

FALSE = 0
TRUE = 1

_TERMINAL_LEVEL = 1 << 30


class Bdd:
    """A BDD manager with a fixed (append-only) variable order.

    >>> m = Bdd()
    >>> x, y = m.new_var(), m.new_var()
    >>> f = m.and_(x, y)
    >>> m.evaluate(f, {0: True, 1: True})
    True
    """

    def __init__(self) -> None:
        # Node storage; indices 0/1 are terminals.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._num_vars = 0

    # ------------------------------------------------------------------
    # Variables and raw nodes
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables in the order."""
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Total allocated node count (including terminals)."""
        return len(self._level)

    def new_var(self) -> int:
        """Append a fresh variable to the order; returns the var node.

        The returned node is the BDD for the variable itself.  The
        variable's index (== level) is ``num_vars - 1`` afterwards.
        """
        level = self._num_vars
        self._num_vars += 1
        return self._mk(level, FALSE, TRUE)

    def new_vars(self, count: int) -> List[int]:
        """Append `count` fresh variables; returns their var nodes."""
        return [self.new_var() for _ in range(count)]

    def var(self, index: int) -> int:
        """The BDD node for an existing variable index."""
        if not 0 <= index < self._num_vars:
            raise ZenSolverError(f"unknown BDD variable {index}")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD node for the negation of a variable."""
        if not 0 <= index < self._num_vars:
            raise ZenSolverError(f"unknown BDD variable {index}")
        return self._mk(index, TRUE, FALSE)

    def level_of(self, node: int) -> int:
        """Level (variable index) labeling an internal node."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Low (False) child of an internal node."""
        return self._low[node]

    def high(self, node: int) -> int:
        """High (True) child of an internal node."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the FALSE/TRUE terminals."""
        return node < 2

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: (f AND g) OR (NOT f AND h).

        Iterative two-phase implementation with a dedicated cache; this
        is the hottest function in the library, so it avoids Python
        recursion and tuple churn.
        """
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._ite_cache
        unique = self._unique
        # Work stack: ("E", f, g, h) expands a triple; ("R", key, lv)
        # combines the two sub-results from the result stack.
        expand = [(f, g, h)]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        while expand:
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                # Combine: the high result was pushed last.
                high = results.pop()
                low = results.pop()
                lv = task  # type: ignore[assignment]
                if low == high:
                    node = low
                else:
                    ukey = (lv, low, high)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(levels)
                        levels.append(lv)
                        lows.append(low)
                        highs.append(high)
                        unique[ukey] = node
                cache[key] = node
                results.append(node)
                continue
            tf, tg, th = task
            # Terminal cases.
            if tf == TRUE:
                results.append(tg)
                continue
            if tf == FALSE:
                results.append(th)
                continue
            if tg == th:
                results.append(tg)
                continue
            if tg == TRUE and th == FALSE:
                results.append(tf)
                continue
            ckey = (tf, tg, th)
            cached = cache.get(ckey)
            if cached is not None:
                results.append(cached)
                continue
            lf, lg, lh = levels[tf], levels[tg], levels[th]
            lv = lf if lf < lg else lg
            if lh < lv:
                lv = lh
            f0, f1 = (lows[tf], highs[tf]) if lf == lv else (tf, tf)
            g0, g1 = (lows[tg], highs[tg]) if lg == lv else (tg, tg)
            h0, h1 = (lows[th], highs[th]) if lh == lv else (th, th)
            # Schedule: combine after both children; push high first so
            # low is computed first and sits deeper in the result stack.
            expand.append(lv)  # type: ignore[arg-type]
            phase.append(1)
            keys.append(ckey)
            expand.append((f1, g1, h1))
            phase.append(0)
            keys.append(None)
            expand.append((f0, g0, h0))
            phase.append(0)
            keys.append(None)
        return results[-1]

    def not_(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def iff(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Implication."""
        return self.ite(f, g, TRUE)

    def diff(self, f: int, g: int) -> int:
        """Set difference f AND NOT g."""
        return self.ite(g, FALSE, f)

    def and_many(self, nodes: Iterable[int]) -> int:
        """Conjunction of many nodes."""
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def or_many(self, nodes: Iterable[int]) -> int:
        """Disjunction of many nodes."""
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Quantification, substitution, restriction
    # ------------------------------------------------------------------

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over variable indices."""
        levels = frozenset(variables)
        if not levels:
            return f
        return self._quantify(f, levels, self.or_)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over variable indices."""
        levels = frozenset(variables)
        if not levels:
            return f
        return self._quantify(f, levels, self.and_)

    def _quantify(
        self, f: int, levels: frozenset, merge: Callable[[int, int], int]
    ) -> int:
        key = ("quant", f, levels, merge.__name__)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.is_terminal(f):
            return f
        level = self._level[f]
        if level > max(levels):
            # All quantified variables are above this node.
            return f
        low = self._quantify(self._low[f], levels, merge)
        high = self._quantify(self._high[f], levels, merge)
        if level in levels:
            result = merge(low, high)
        else:
            result = self._mk(level, low, high)
        self._cache[key] = result
        return result

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor: fix some variables to constants."""
        if not assignment:
            return f
        items = frozenset(assignment.items())
        return self._restrict(f, dict(assignment), items)

    def _restrict(self, f: int, assignment: Dict[int, bool], key_items) -> int:
        if self.is_terminal(f):
            return f
        key = ("restrict", f, key_items)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        if level in assignment:
            branch = self._high[f] if assignment[level] else self._low[f]
            result = self._restrict(branch, assignment, key_items)
        else:
            result = self._mk(
                level,
                self._restrict(self._low[f], assignment, key_items),
                self._restrict(self._high[f], assignment, key_items),
            )
        self._cache[key] = result
        return result

    def compose(self, f: int, var_index: int, g: int) -> int:
        """Substitute BDD `g` for variable `var_index` in `f`."""
        # f[x := g] = ite(g, f[x:=1], f[x:=0])
        f1 = self.restrict(f, {var_index: True})
        f0 = self.restrict(f, {var_index: False})
        return self.ite(g, f1, f0)

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables per `mapping` (old index -> new index).

        Requires the mapping to be strictly monotone on the support of
        `f` (preserving relative order), so the renamed graph remains
        ordered.  This matches how transformer image computation uses
        renaming: quantify one variable set away, then shift the other.
        Raises :class:`ZenSolverError` if order would be violated.
        """
        if not mapping:
            return f
        support = self.support(f)
        images = [mapping.get(v, v) for v in support]
        if any(b <= a for a, b in zip(images, images[1:])):
            raise ZenSolverError(
                "rename mapping does not preserve variable order; "
                "use compose for non-monotone substitutions"
            )
        for new_index in mapping.values():
            if not 0 <= new_index < self._num_vars:
                raise ZenSolverError(f"unknown BDD variable {new_index}")
        items = frozenset(mapping.items())
        return self._rename(f, mapping, items)

    def _rename(self, f: int, mapping: Dict[int, int], key_items) -> int:
        if self.is_terminal(f):
            return f
        key = ("rename", f, key_items)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        new_level = mapping.get(level, level)
        result = self._mk(
            new_level,
            self._rename(self._low[f], mapping, key_items),
            self._rename(self._high[f], mapping, key_items),
        )
        self._cache[key] = result
        return result

    def permute(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables by an arbitrary (possibly non-monotone) map.

        Unlike :meth:`rename`, the result is rebuilt with ``ite`` so
        any injective mapping is allowed; cost can be super-linear when
        the mapping reorders levels.
        """
        if not mapping:
            return f
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise ZenSolverError("permute mapping must be injective")
        for new_index in targets:
            if not 0 <= new_index < self._num_vars:
                raise ZenSolverError(f"unknown BDD variable {new_index}")
        items = frozenset(mapping.items())
        return self._permute(f, mapping, items)

    def _permute(self, f: int, mapping: Dict[int, int], key_items) -> int:
        if self.is_terminal(f):
            return f
        key = ("permute", f, key_items)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        new_level = mapping.get(level, level)
        low = self._permute(self._low[f], mapping, key_items)
        high = self._permute(self._high[f], mapping, key_items)
        result = self.ite(self.var(new_level), high, low)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total (or sufficient) assignment.

        Missing variables default to False.
        """
        node = f
        while not self.is_terminal(node):
            if assignment.get(self._level[node], False):
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    def support(self, f: int) -> List[int]:
        """Sorted variable indices that `f` depends on."""
        seen: set[int] = set()
        visited: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            seen.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(seen)

    def node_count(self, f: int) -> int:
        """Number of distinct internal nodes reachable from `f`."""
        visited: set[int] = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def sat_count(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over `num_vars` variables.

        Defaults to the manager's full variable count.
        """
        if num_vars is None:
            num_vars = self._num_vars
        memo: Dict[int, int] = {}

        def count(node: int) -> int:
            # Returns count over variables strictly below node's level.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level[node]
            low, high = self._low[node], self._high[node]
            low_gap = (self._levels_below(low)) - level - 1
            high_gap = (self._levels_below(high)) - level - 1
            result = (count(low) << low_gap) + (count(high) << high_gap)
            memo[node] = result
            return result

        top_gap = self._levels_below(f)
        return count(f) << top_gap if f != FALSE else 0

    def _levels_below(self, node: int) -> int:
        if self.is_terminal(node):
            return self._num_vars
        return self._level[node]

    def any_sat(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (partial: only decided levels)."""
        if f == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while not self.is_terminal(node):
            if self._low[node] != FALSE:
                assignment[self._level[node]] = False
                node = self._low[node]
            else:
                assignment[self._level[node]] = True
                node = self._high[node]
        return assignment

    def iter_sat(self, f: int) -> Iterator[Dict[int, bool]]:
        """Iterate over satisfying paths as partial assignments.

        Unmentioned variables are don't-cares on that path.
        """
        if f == FALSE:
            return
        stack: List[Tuple[int, Dict[int, bool]]] = [(f, {})]
        while stack:
            node, path = stack.pop()
            if node == TRUE:
                yield path
                continue
            if node == FALSE:
                continue
            level = self._level[node]
            high_path = dict(path)
            high_path[level] = True
            stack.append((self._high[node], high_path))
            low_path = dict(path)
            low_path[level] = False
            stack.append((self._low[node], low_path))

    def pick_assignment(
        self, f: int, variables: Sequence[int]
    ) -> Optional[Dict[int, bool]]:
        """A total assignment over `variables` satisfying `f`."""
        partial = self.any_sat(f)
        if partial is None:
            return None
        return {v: partial.get(v, False) for v in variables}

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def cube(self, literals: Dict[int, bool]) -> int:
        """Conjunction of variable literals (index -> polarity)."""
        result = TRUE
        for index in sorted(literals, reverse=True):
            node = self.var(index) if literals[index] else self.nvar(index)
            result = self.and_(node, result)
        return result

    def from_function(
        self, fn: Callable[[Dict[int, bool]], bool], variables: Sequence[int]
    ) -> int:
        """Build a BDD from a Python truth function (for tests)."""
        def build(i: int, assignment: Dict[int, bool]) -> int:
            if i == len(variables):
                return TRUE if fn(assignment) else FALSE
            assignment[variables[i]] = False
            low = build(i + 1, assignment)
            assignment[variables[i]] = True
            high = build(i + 1, assignment)
            del assignment[variables[i]]
            return self.ite(self.var(variables[i]), high, low)

        return build(0, {})

    def clear_cache(self) -> None:
        """Drop the computed caches (unique table is kept)."""
        self._cache.clear()
        self._ite_cache.clear()

    def to_dot(self, f: int, name: str = "bdd") -> str:
        """GraphViz DOT rendering of the graph rooted at `f`."""
        lines = [f"digraph {name} {{"]
        lines.append('  node0 [label="0", shape=box];')
        lines.append('  node1 [label="1", shape=box];')
        visited: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            lines.append(
                f'  node{node} [label="x{self._level[node]}", shape=circle];'
            )
            lines.append(
                f"  node{node} -> node{self._low[node]} [style=dashed];"
            )
            lines.append(f"  node{node} -> node{self._high[node]};")
            stack.append(self._low[node])
            stack.append(self._high[node])
        lines.append("}")
        return "\n".join(lines)
