"""A reduced ordered binary decision diagram (ROBDD) manager.

This is the BDD backend of the paper: the high-performance decision
diagram library used both for bounded model checking and for the state
set transformer abstraction (pre/post image via existential
quantification, variable renaming between transformer variable sets).

Design notes
------------
* Nodes are integers; 0 is the FALSE terminal and 1 is TRUE.
* Each internal node stores a *level* (its position in the variable
  order), a low child (level-variable = False) and a high child.
* A unique table enforces canonicity; per-operation computed caches
  memoize the core kernels.
* Variables are created against an explicit order; helper constructors
  support the interleaved orders the paper's heuristics produce.

Kernel architecture (the transformer hot path)
----------------------------------------------
All core operations are *iterative* two-phase kernels (an explicit
expand/combine stack instead of Python recursion), so deep BDDs from
wide packet types can never hit the interpreter's recursion limit:

* ``ite``          — the general 3-operand kernel (its own cache);
* ``and_/or_/xor`` — dedicated binary apply kernels with commutative
  cache-key normalization (``and_(a, b)`` and ``and_(b, a)`` share one
  cache entry) so binary ops no longer detour through the ``ite``
  cache;
* ``not_``         — a negation kernel whose cache is symmetric
  (negation is an involution);
* ``and_exists``   — the fused relational-product kernel: computes
  ``exists(and_(f, g), V)`` without ever materializing the full
  conjunction, the operation at the heart of transformer pre/post
  images and composition;
* ``exists/forall/restrict/rename/permute`` — iterative traversals
  with the quantified-level ``max()`` hoisted out of the per-node
  loop;
* ``and_many/or_many`` — balanced-tree reduction (a linear fold builds
  lopsided intermediates whose sizes accumulate).

An op-level statistics layer (:class:`BddStats`) counts cache
hits/misses per kernel, public-op calls, and peak node count; optional
wall-time per public op is gated behind a cheap flag check
(:meth:`Bdd.enable_timing`).

The manager deliberately exposes levels == variable indices: variable
``i`` sits at level ``i`` in the order.  Callers that need a specific
interleaving (e.g. transformer input/output pairing) allocate their
variables in the desired order, mirroring how Zen's ordering heuristic
chooses an allocation before building any BDDs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ZenSolverError
from ..telemetry.spans import TRACER

FALSE = 0
TRUE = 1

_TERMINAL_LEVEL = 1 << 30

# Apply-kernel opcodes.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
_OP_NAMES = ("and", "or", "xor")


class BddStats:
    """Op-level counters for a :class:`Bdd` manager.

    * ``calls``        — public-op invocation counts;
    * ``cache_hits`` / ``cache_misses`` — per-kernel computed-cache
      behaviour (a miss is one node expansion of that kernel);
    * ``peak_nodes``   — high-water mark of the unique table;
    * ``node_count``   — table size when :meth:`Bdd.stats` was called;
    * ``op_time``      — cumulative wall seconds per outermost public
      op, populated only while :meth:`Bdd.enable_timing` is on.
    """

    __slots__ = (
        "calls",
        "cache_hits",
        "cache_misses",
        "op_time",
        "peak_nodes",
        "node_count",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (peak restarts from the current table)."""
        self.calls: Dict[str, int] = {}
        self.cache_hits: Dict[str, int] = {}
        self.cache_misses: Dict[str, int] = {}
        self.op_time: Dict[str, float] = {}
        self.peak_nodes = 0
        self.node_count = 0

    def hit_rate(self, op: str) -> float:
        """Cache hit rate of one kernel (0.0 when it never ran)."""
        hits = self.cache_hits.get(op, 0)
        misses = self.cache_misses.get(op, 0)
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-serializable)."""
        ops = sorted(set(self.cache_hits) | set(self.cache_misses))
        return {
            "calls": dict(self.calls),
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "cache_hit_rate": {op: round(self.hit_rate(op), 4) for op in ops},
            "op_time": {op: round(t, 6) for op, t in self.op_time.items()},
            "peak_nodes": self.peak_nodes,
            "node_count": self.node_count,
        }

    def snapshot(self) -> dict:
        """Flat numeric snapshot (the shared counter protocol).

        Keys are ``calls.<op>`` / ``cache_hits.<op>`` /
        ``cache_misses.<op>`` / ``op_time_s.<op>`` plus ``peak_nodes``
        and ``node_count``; every value is a plain number, so
        :func:`repro.telemetry.delta` can diff two snapshots.
        """
        out: dict = {}
        for op, count in self.calls.items():
            out[f"calls.{op}"] = count
        for op, hits in self.cache_hits.items():
            out[f"cache_hits.{op}"] = hits
        for op, misses in self.cache_misses.items():
            out[f"cache_misses.{op}"] = misses
        for op, secs in self.op_time.items():
            out[f"op_time_s.{op}"] = secs
        out["peak_nodes"] = self.peak_nodes
        out["node_count"] = self.node_count
        return out

    def reset_counters(self) -> None:
        """Canonical reset spelling (alias of :meth:`reset`)."""
        self.reset()

    def summary(self) -> str:
        """A human-readable table of the counters."""
        lines = [
            f"nodes: {self.node_count} (peak {self.peak_nodes})",
            f"{'op':>12} {'calls':>9} {'hits':>10} {'misses':>10} "
            f"{'hit%':>6} {'time_ms':>9}",
        ]
        ops = sorted(
            set(self.calls)
            | set(self.cache_hits)
            | set(self.cache_misses)
            | set(self.op_time)
        )
        for op in ops:
            hits = self.cache_hits.get(op, 0)
            misses = self.cache_misses.get(op, 0)
            rate = 100.0 * self.hit_rate(op)
            ms = 1000.0 * self.op_time.get(op, 0.0)
            lines.append(
                f"{op:>12} {self.calls.get(op, 0):>9} {hits:>10} "
                f"{misses:>10} {rate:>6.1f} {ms:>9.2f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BddStats({self.as_dict()!r})"


class Bdd:
    """A BDD manager with a fixed (append-only) variable order.

    >>> m = Bdd()
    >>> x, y = m.new_var(), m.new_var()
    >>> f = m.and_(x, y)
    >>> m.evaluate(f, {0: True, 1: True})
    True
    """

    def __init__(self) -> None:
        # Node storage; indices 0/1 are terminals.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache: Dict[Tuple, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        # One cache per binary opcode (and/or/xor): the per-node keys
        # are plain (f, g) pairs, and the fused relational product can
        # consult just the and-cache.
        self._apply_caches: List[Dict[Tuple[int, int], int]] = [{}, {}, {}]
        # Two-level caches for the quantification kernels: the outer
        # key is the (interned) query — quantified level set — so the
        # per-node inner keys stay small and cheap to hash.
        self._quantify_cache: Dict[Tuple, Dict[int, int]] = {}
        self._and_exists_cache: Dict[frozenset, Dict[Tuple[int, int], int]] = {}
        self._neg_cache: Dict[int, int] = {}
        self._num_vars = 0
        self._stats = BddStats()
        self._timing = False
        self._timing_depth = 0
        # Trace-span bookkeeping: only the *outermost* public op opens
        # a span (a transformer image calls rename/and_exists/permute
        # internally; per-inner-op spans would explode the trace).
        self._span_depth = 0
        self._op_span = None
        # Cooperative resource governance (duck-typed BudgetMeter; the
        # manager never imports repro.core.budget).  Kernels tick every
        # 1024 work-stack iterations, bounding both node-cap overshoot
        # and deadline latency while costing the unmetered hot path one
        # add + compare per expansion.
        self._budget = None
        self._node_cap: Optional[int] = None

    # ------------------------------------------------------------------
    # Resource governance
    # ------------------------------------------------------------------

    @property
    def budget(self):
        """The installed budget meter, or None."""
        return self._budget

    def set_budget(self, budget) -> None:
        """Install (or clear, with None) a budget meter on the manager.

        Accepts a :class:`repro.core.budget.Budget` or a running
        meter.  ``max_bdd_nodes`` caps the manager's *cumulative*
        allocation count (the unique table is append-only, so that is
        the quantity that exhausts memory).  The install fails fast —
        before replacing any previous meter — when the manager is
        already over the node cap.
        """
        if budget is not None and not hasattr(budget, "tick"):
            budget = budget.start()
        if budget is not None:
            budget.tick(len(self._level))
        self._budget = budget
        # Cache the numeric node cap so _mk can trip it exactly at the
        # crossing allocation (the periodic ticks alone would let small
        # workloads finish entirely between checkpoints).
        self._node_cap = getattr(
            getattr(budget, "budget", None), "max_bdd_nodes", None
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> BddStats:
        """The live op-level statistics for this manager."""
        st = self._stats
        st.node_count = len(self._level)
        if st.node_count > st.peak_nodes:
            st.peak_nodes = st.node_count
        return st

    def reset_stats(self) -> None:
        """Zero all statistics counters."""
        self._stats.reset()

    def snapshot(self) -> dict:
        """Flat numeric counter snapshot (shared counter protocol)."""
        return self.stats().snapshot()

    def reset_counters(self) -> None:
        """Canonical reset spelling (alias of :meth:`reset_stats`)."""
        self.reset_stats()

    def enable_timing(self, enabled: bool = True) -> None:
        """Toggle wall-time accounting for public ops.

        Off by default: the hot path then pays only one flag check per
        public call.
        """
        self._timing = enabled
        self._timing_depth = 0

    def _begin(self, op: str) -> float:
        calls = self._stats.calls
        calls[op] = calls.get(op, 0) + 1
        if TRACER.enabled:
            self._span_depth += 1
            if self._span_depth == 1:
                self._op_span = TRACER.begin("bdd." + op)
        if self._timing:
            self._timing_depth += 1
            if self._timing_depth == 1:
                return perf_counter()
        return 0.0

    def _end(self, op: str, t0: float) -> None:
        if self._timing and self._timing_depth > 0:
            self._timing_depth -= 1
            if self._timing_depth == 0:
                times = self._stats.op_time
                times[op] = times.get(op, 0.0) + (perf_counter() - t0)
        nodes = len(self._level)
        if nodes > self._stats.peak_nodes:
            self._stats.peak_nodes = nodes
        # Span depth is tracked independently of TRACER.enabled so a
        # mid-op toggle cannot unbalance the stack.
        if self._span_depth > 0:
            self._span_depth -= 1
            if self._span_depth == 0 and self._op_span is not None:
                done, self._op_span = self._op_span, None
                done.attrs["nodes"] = nodes
                TRACER.finish(done)

    def _count_cache(self, op: str, hits: int, misses: int) -> None:
        st = self._stats
        if hits:
            st.cache_hits[op] = st.cache_hits.get(op, 0) + hits
        if misses:
            st.cache_misses[op] = st.cache_misses.get(op, 0) + misses

    # ------------------------------------------------------------------
    # Variables and raw nodes
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables in the order."""
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Total allocated node count (including terminals)."""
        return len(self._level)

    def new_var(self) -> int:
        """Append a fresh variable to the order; returns the var node.

        The returned node is the BDD for the variable itself.  The
        variable's index (== level) is ``num_vars - 1`` afterwards.
        """
        level = self._num_vars
        self._num_vars += 1
        return self._mk(level, FALSE, TRUE)

    def new_vars(self, count: int) -> List[int]:
        """Append `count` fresh variables; returns their var nodes."""
        return [self.new_var() for _ in range(count)]

    def var(self, index: int) -> int:
        """The BDD node for an existing variable index."""
        if not 0 <= index < self._num_vars:
            raise ZenSolverError(f"unknown BDD variable {index}")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The BDD node for the negation of a variable."""
        if not 0 <= index < self._num_vars:
            raise ZenSolverError(f"unknown BDD variable {index}")
        return self._mk(index, TRUE, FALSE)

    def level_of(self, node: int) -> int:
        """Level (variable index) labeling an internal node."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Low (False) child of an internal node."""
        return self._low[node]

    def high(self, node: int) -> int:
        """High (True) child of an internal node."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the FALSE/TRUE terminals."""
        return node < 2

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
            # Allocation-time checkpoint: workloads made of many small
            # kernels never reach the per-kernel tick interval, so the
            # node cap is enforced here — exactly at the crossing
            # allocation, plus a periodic deadline check.
            if self._budget is not None and (
                (self._node_cap is not None and node >= self._node_cap)
                or not (node & 255)
            ):
                self._budget.tick(node + 1)
        return node

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: (f AND g) OR (NOT f AND h).

        Iterative two-phase implementation with a dedicated cache; the
        general 3-operand kernel.  Binary boolean ops use the
        specialized apply kernels instead.
        """
        t0 = self._begin("ite")
        result = self._ite(f, g, h)
        self._end("ite", t0)
        return result

    def _ite(self, f: int, g: int, h: int) -> int:
        # Fast path mirroring the expansion-loop terminal cases, so
        # tiny top-level calls skip the work-stack setup.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if h == FALSE:
            return self._apply(_OP_AND, f, g)
        if g == TRUE:
            return self._apply(_OP_OR, f, h)
        if h == TRUE:
            return self._neg(self._apply(_OP_AND, f, self._neg(g)))
        if g == FALSE:
            return self._apply(_OP_AND, self._neg(f), h)
        cached = self._ite_cache.get((f, g, h))
        if cached is not None:
            self._count_cache("ite", 1, 0)
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._ite_cache
        unique = self._unique
        hits = 0
        misses = 0
        # Work stack: phase 0 expands a triple; phase 1 combines the
        # two sub-results from the result stack.
        expand = [(f, g, h)]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                # Combine: the high result was pushed last.
                high = results.pop()
                low = results.pop()
                lv = task  # type: ignore[assignment]
                if low == high:
                    node = low
                else:
                    ukey = (lv, low, high)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(levels)
                        levels.append(lv)
                        lows.append(low)
                        highs.append(high)
                        unique[ukey] = node
                cache[key] = node
                results.append(node)
                continue
            tf, tg, th = task
            # Terminal cases.
            if tf == TRUE:
                results.append(tg)
                continue
            if tf == FALSE:
                results.append(th)
                continue
            if tg == th:
                results.append(tg)
                continue
            if tg == TRUE and th == FALSE:
                results.append(tf)
                continue
            # Normalize terminal-branch triples to the binary kernels
            # (CUDD-style): ite work then shares the apply caches with
            # direct and_/or_ calls instead of duplicating it in the
            # 3-operand cache.
            if th == FALSE:
                results.append(self._apply(_OP_AND, tf, tg))
                continue
            if tg == TRUE:
                results.append(self._apply(_OP_OR, tf, th))
                continue
            if th == TRUE:
                results.append(
                    self._neg(self._apply(_OP_AND, tf, self._neg(tg)))
                )
                continue
            if tg == FALSE:
                results.append(self._apply(_OP_AND, self._neg(tf), th))
                continue
            ckey = (tf, tg, th)
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lf, lg, lh = levels[tf], levels[tg], levels[th]
            lv = lf if lf < lg else lg
            if lh < lv:
                lv = lh
            f0, f1 = (lows[tf], highs[tf]) if lf == lv else (tf, tf)
            g0, g1 = (lows[tg], highs[tg]) if lg == lv else (tg, tg)
            h0, h1 = (lows[th], highs[th]) if lh == lv else (th, th)
            # Schedule: combine after both children; push high first so
            # low is computed first and sits deeper in the result stack.
            expand.append(lv)  # type: ignore[arg-type]
            phase.append(1)
            keys.append(ckey)
            expand.append((f1, g1, h1))
            phase.append(0)
            keys.append(None)
            expand.append((f0, g0, h0))
            phase.append(0)
            keys.append(None)
        self._count_cache("ite", hits, misses)
        return results[-1]

    def not_(self, f: int) -> int:
        """Negation (dedicated kernel; the cache is symmetric)."""
        t0 = self._begin("not")
        result = self._neg(f)
        self._end("not", t0)
        return result

    def _neg(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cached = self._neg_cache.get(f)
        if cached is not None:
            self._count_cache("not", 1, 0)
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._neg_cache
        hits = 0
        misses = 0
        expand = [f]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv, src = key
                node = self._mk(lv, low, high)
                # Negation is an involution: cache both directions.
                cache[src] = node
                cache[node] = src
                results.append(node)
                continue
            if task == FALSE:
                results.append(TRUE)
                continue
            if task == TRUE:
                results.append(FALSE)
                continue
            cached = cache.get(task)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lv = levels[task]
            expand.append(0)
            phase.append(1)
            keys.append((lv, task))
            expand.append(highs[task])
            phase.append(0)
            keys.append(None)
            expand.append(lows[task])
            phase.append(0)
            keys.append(None)
        self._count_cache("not", hits, misses)
        return results[-1]

    def and_(self, f: int, g: int) -> int:
        """Conjunction (dedicated apply kernel)."""
        t0 = self._begin("and")
        result = self._apply(_OP_AND, f, g)
        self._end("and", t0)
        return result

    def or_(self, f: int, g: int) -> int:
        """Disjunction (dedicated apply kernel)."""
        t0 = self._begin("or")
        result = self._apply(_OP_OR, f, g)
        self._end("or", t0)
        return result

    def xor(self, f: int, g: int) -> int:
        """Exclusive or (dedicated apply kernel)."""
        t0 = self._begin("xor")
        result = self._apply(_OP_XOR, f, g)
        self._end("xor", t0)
        return result

    def _apply(self, opc: int, f: int, g: int) -> int:
        """Binary apply kernel for the commutative ops and/or/xor.

        Operands in a cache key are sorted (all three ops commute), so
        ``op(a, b)`` and ``op(b, a)`` share one entry.
        """
        # Fast path: resolve terminal/cached top-level calls without
        # paying the work-stack setup (the symbolic bitblaster makes
        # very many tiny calls).
        if opc == _OP_AND:
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE or f == g:
                return g
            if g == TRUE:
                return f
        elif opc == _OP_OR:
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE or f == g:
                return g
            if g == FALSE:
                return f
        else:
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == TRUE:
                return self._neg(g)
            if g == TRUE:
                return self._neg(f)
        cache = self._apply_caches[opc]
        cached = cache.get((f, g) if f < g else (g, f))
        if cached is not None:
            self._count_cache(_OP_NAMES[opc], 1, 0)
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        hits = 0
        misses = 0
        expand: List = [(f, g)]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv = task
                if low == high:
                    node = low
                else:
                    ukey = (lv, low, high)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(levels)
                        levels.append(lv)
                        lows.append(low)
                        highs.append(high)
                        unique[ukey] = node
                cache[key] = node
                results.append(node)
                continue
            tf, tg = task
            # Terminal cases per opcode.
            if opc == _OP_AND:
                if tf == FALSE or tg == FALSE:
                    results.append(FALSE)
                    continue
                if tf == TRUE or tf == tg:
                    results.append(tg)
                    continue
                if tg == TRUE:
                    results.append(tf)
                    continue
            elif opc == _OP_OR:
                if tf == TRUE or tg == TRUE:
                    results.append(TRUE)
                    continue
                if tf == FALSE or tf == tg:
                    results.append(tg)
                    continue
                if tg == FALSE:
                    results.append(tf)
                    continue
            else:  # XOR
                if tf == tg:
                    results.append(FALSE)
                    continue
                if tf == FALSE:
                    results.append(tg)
                    continue
                if tg == FALSE:
                    results.append(tf)
                    continue
                if tf == TRUE:
                    results.append(self._neg(tg))
                    continue
                if tg == TRUE:
                    results.append(self._neg(tf))
                    continue
            # Commutative cache-key normalization (the unswapped task
            # tuple is reused as the key to avoid an allocation).
            if tf > tg:
                tf, tg = tg, tf
                ckey = (tf, tg)
            else:
                ckey = task
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lf, lg = levels[tf], levels[tg]
            lv = lf if lf < lg else lg
            f0, f1 = (lows[tf], highs[tf]) if lf == lv else (tf, tf)
            g0, g1 = (lows[tg], highs[tg]) if lg == lv else (tg, tg)
            expand.append(lv)
            phase.append(1)
            keys.append(ckey)
            expand.append((f1, g1))
            phase.append(0)
            keys.append(None)
            expand.append((f0, g0))
            phase.append(0)
            keys.append(None)
        self._count_cache(_OP_NAMES[opc], hits, misses)
        return results[-1]

    def iff(self, f: int, g: int) -> int:
        """Equivalence."""
        return self._neg(self._apply(_OP_XOR, f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication."""
        return self.ite(f, g, TRUE)

    def diff(self, f: int, g: int) -> int:
        """Set difference f AND NOT g."""
        return self.ite(g, FALSE, f)

    def and_many(self, nodes: Iterable[int]) -> int:
        """Conjunction of many nodes (balanced-tree reduction).

        A linear fold conjoins every operand into one ever-growing
        accumulator; the balanced tree keeps intermediate results
        small and independent, which also makes their cache entries
        reusable across calls.
        """
        t0 = self._begin("and_many")
        result = self._reduce_many(_OP_AND, nodes, TRUE, FALSE)
        self._end("and_many", t0)
        return result

    def or_many(self, nodes: Iterable[int]) -> int:
        """Disjunction of many nodes (balanced-tree reduction)."""
        t0 = self._begin("or_many")
        result = self._reduce_many(_OP_OR, nodes, FALSE, TRUE)
        self._end("or_many", t0)
        return result

    def _reduce_many(
        self, opc: int, nodes: Iterable[int], neutral: int, absorbing: int
    ) -> int:
        pending = [n for n in nodes if n != neutral]
        if absorbing in pending:
            return absorbing
        if not pending:
            return neutral
        while len(pending) > 1:
            merged: List[int] = []
            for i in range(0, len(pending) - 1, 2):
                node = self._apply(opc, pending[i], pending[i + 1])
                if node == absorbing:
                    return absorbing
                merged.append(node)
            if len(pending) & 1:
                merged.append(pending[-1])
            pending = merged
        return pending[0]

    # ------------------------------------------------------------------
    # Quantification, substitution, restriction
    # ------------------------------------------------------------------

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over variable indices."""
        level_set = frozenset(variables)
        if not level_set:
            return f
        t0 = self._begin("exists")
        result = self._quantify(f, level_set, max(level_set), _OP_OR)
        self._end("exists", t0)
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over variable indices."""
        level_set = frozenset(variables)
        if not level_set:
            return f
        t0 = self._begin("forall")
        result = self._quantify(f, level_set, max(level_set), _OP_AND)
        self._end("forall", t0)
        return result

    def _quantify(
        self, f: int, level_set: frozenset, max_level: int, merge_opc: int
    ) -> int:
        """Iterative quantification kernel.

        ``max_level`` is hoisted once per query: any node below it
        cannot contain a quantified variable and is returned as-is.
        All results (including that early exit) are cached.
        """
        name = "exists" if merge_opc == _OP_OR else "forall"
        # Quantified levels merge toward this absorbing terminal: once
        # the low branch hits it, the high branch is never expanded.
        absorbing = TRUE if merge_opc == _OP_OR else FALSE
        neutral = FALSE if merge_opc == _OP_OR else TRUE
        levels = self._level
        lows = self._low
        highs = self._high
        subcache = self._quantify_cache.get((name, level_set))
        if subcache is None:
            subcache = self._quantify_cache[(name, level_set)] = {}
        cache = subcache
        hits = 0
        misses = 0
        # Phases: 0 = expand a node, 1 = combine two child results,
        # 2 = early-termination check between the children of a
        # quantified level.
        expand: List = [f]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv, ckey = key
                # Quantified levels are marked with a negative lv so
                # the combine avoids a second set-membership test.
                if lv < 0:
                    # Inline the common merge terminals; fall back to
                    # the apply kernel for real work.
                    if low == high or high == neutral:
                        node = low
                    elif low == neutral:
                        node = high
                    elif low == absorbing or high == absorbing:
                        node = absorbing
                    else:
                        node = self._apply(merge_opc, low, high)
                else:
                    node = self._mk(lv, low, high)
                cache[ckey] = node
                results.append(node)
                continue
            if ph == 2:
                if results[-1] == absorbing:
                    cache[key] = absorbing
                    continue  # result stays on the stack; skip high
                expand.append(0)
                phase.append(1)
                keys.append((-1, key))
                expand.append(task)  # the pending high child
                phase.append(0)
                keys.append(None)
                continue
            if task < 2:
                results.append(task)
                continue
            lv = levels[task]
            ckey = task
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            if lv > max_level:
                # All quantified variables are above this node.
                cache[ckey] = task
                results.append(task)
                continue
            misses += 1
            if lv in level_set:
                expand.append(highs[task])
                phase.append(2)
                keys.append(ckey)
            else:
                expand.append(0)
                phase.append(1)
                keys.append((lv, ckey))
                expand.append(highs[task])
                phase.append(0)
                keys.append(None)
            expand.append(lows[task])
            phase.append(0)
            keys.append(None)
        self._count_cache(name, hits, misses)
        return results[-1]

    def and_exists(self, f: int, g: int, variables: Iterable[int]) -> int:
        """Fused relational product: ``exists(and_(f, g), variables)``.

        The defining operation of transformer image computation
        ("conjoin the relation, then existentially quantify").  Fusing
        the two passes means the full conjunction — which can be
        exponentially larger than either operand or the result — is
        never materialized: quantified levels are collapsed with
        ``or`` *during* the conjunction traversal.
        """
        level_set = frozenset(variables)
        t0 = self._begin("and_exists")
        if not level_set:
            result = self._apply(_OP_AND, f, g)
        else:
            result = self._and_exists(f, g, level_set, max(level_set))
        self._end("and_exists", t0)
        return result

    def _and_exists(
        self, f: int, g: int, level_set: frozenset, max_level: int
    ) -> int:
        levels = self._level
        lows = self._low
        highs = self._high
        and_cache = self._apply_caches[_OP_AND]
        subcache = self._and_exists_cache.get(level_set)
        if subcache is None:
            subcache = self._and_exists_cache[level_set] = {}
        cache = subcache
        hits = 0
        misses = 0
        # Phases: 0 = expand a pair, 1 = combine two child results,
        # 2 = early-termination check at a quantified level (once the
        # low branch saturates to TRUE the high pair is never visited).
        expand: List = [(f, g)]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv, ckey = key
                # Quantified levels are marked with a negative lv so
                # the combine avoids a second set-membership test.
                if lv < 0:
                    # Inline the common merge terminals; fall back to
                    # the apply kernel for real work.
                    if low == high or high == FALSE:
                        node = low
                    elif low == FALSE:
                        node = high
                    elif low == TRUE or high == TRUE:
                        node = TRUE
                    else:
                        node = self._apply(_OP_OR, low, high)
                else:
                    node = self._mk(lv, low, high)
                cache[ckey] = node
                results.append(node)
                continue
            if ph == 2:
                if results[-1] == TRUE:
                    cache[key] = TRUE
                    continue  # result stays on the stack; skip high
                expand.append(0)
                phase.append(1)
                keys.append((-1, key))
                expand.append(task)  # the pending high pair
                phase.append(0)
                keys.append(None)
                continue
            tf, tg = task
            if tf == FALSE or tg == FALSE:
                results.append(FALSE)
                continue
            if tf == TRUE and tg == TRUE:
                results.append(TRUE)
                continue
            if tf == TRUE or tf == tg:
                results.append(
                    self._quantify(tg, level_set, max_level, _OP_OR)
                )
                continue
            if tg == TRUE:
                results.append(
                    self._quantify(tf, level_set, max_level, _OP_OR)
                )
                continue
            if tf > tg:
                tf, tg = tg, tf
                task = (tf, tg)
            lf, lg = levels[tf], levels[tg]
            lv = lf if lf < lg else lg
            if lv > max_level:
                # No quantified variable below: plain conjunction.
                results.append(self._apply(_OP_AND, tf, tg))
                continue
            ckey = task
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            # If this conjunction was already materialized by the apply
            # kernel, quantify the cached node instead: the per-node
            # quantify cache shares work across all pairs that reach
            # the same conjunction.  Skipped while the and-cache is
            # empty (cold managers) so cold relational products do not
            # pay a per-expansion probe that can never hit.
            conj = and_cache.get(ckey) if and_cache else None
            if conj is not None:
                hits += 1
                node = self._quantify(conj, level_set, max_level, _OP_OR)
                cache[ckey] = node
                results.append(node)
                continue
            misses += 1
            f0, f1 = (lows[tf], highs[tf]) if lf == lv else (tf, tf)
            g0, g1 = (lows[tg], highs[tg]) if lg == lv else (tg, tg)
            if lv in level_set:
                expand.append((f1, g1))
                phase.append(2)
                keys.append(ckey)
            else:
                expand.append(0)
                phase.append(1)
                keys.append((lv, ckey))
                expand.append((f1, g1))
                phase.append(0)
                keys.append(None)
            expand.append((f0, g0))
            phase.append(0)
            keys.append(None)
        self._count_cache("and_exists", hits, misses)
        return results[-1]

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor: fix some variables to constants."""
        if not assignment:
            return f
        t0 = self._begin("restrict")
        result = self._restrict(f, assignment, frozenset(assignment.items()))
        self._end("restrict", t0)
        return result

    def _restrict(self, f: int, assignment: Dict[int, bool], key_items) -> int:
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._cache
        hits = 0
        misses = 0
        expand: List = [f]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv, ckey = key
                node = self._mk(lv, low, high)
                cache[ckey] = node
                results.append(node)
                continue
            # Walk down assigned levels; the chain contributes nothing
            # to the result graph.
            node = task
            while node >= 2:
                decided = assignment.get(levels[node])
                if decided is None:
                    break
                node = highs[node] if decided else lows[node]
            if node < 2:
                results.append(node)
                continue
            ckey = ("restrict", node, key_items)
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            expand.append(0)
            phase.append(1)
            keys.append((levels[node], ckey))
            expand.append(highs[node])
            phase.append(0)
            keys.append(None)
            expand.append(lows[node])
            phase.append(0)
            keys.append(None)
        self._count_cache("restrict", hits, misses)
        return results[-1]

    def compose(self, f: int, var_index: int, g: int) -> int:
        """Substitute BDD `g` for variable `var_index` in `f`."""
        # f[x := g] = ite(g, f[x:=1], f[x:=0])
        f1 = self.restrict(f, {var_index: True})
        f0 = self.restrict(f, {var_index: False})
        return self.ite(g, f1, f0)

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables per `mapping` (old index -> new index).

        Requires the mapping to be strictly monotone on the support of
        `f` (preserving relative order), so the renamed graph remains
        ordered.  This matches how transformer image computation uses
        renaming: quantify one variable set away, then shift the other.
        Raises :class:`ZenSolverError` if order would be violated.
        """
        if not mapping:
            return f
        support = self.support(f)
        images = [mapping.get(v, v) for v in support]
        if any(b <= a for a, b in zip(images, images[1:])):
            raise ZenSolverError(
                "rename mapping does not preserve variable order; "
                "use compose for non-monotone substitutions"
            )
        for new_index in mapping.values():
            if not 0 <= new_index < self._num_vars:
                raise ZenSolverError(f"unknown BDD variable {new_index}")
        t0 = self._begin("rename")
        result = self._rename(f, mapping, frozenset(mapping.items()))
        self._end("rename", t0)
        return result

    def _rename(self, f: int, mapping: Dict[int, int], key_items) -> int:
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._cache
        hits = 0
        misses = 0
        expand: List = [f]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv, ckey = key
                node = self._mk(lv, low, high)
                cache[ckey] = node
                results.append(node)
                continue
            if task < 2:
                results.append(task)
                continue
            ckey = ("rename", task, key_items)
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            level = levels[task]
            new_level = mapping.get(level, level)
            expand.append(0)
            phase.append(1)
            keys.append((new_level, ckey))
            expand.append(highs[task])
            phase.append(0)
            keys.append(None)
            expand.append(lows[task])
            phase.append(0)
            keys.append(None)
        self._count_cache("rename", hits, misses)
        return results[-1]

    def permute(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables by an arbitrary (possibly non-monotone) map.

        Unlike :meth:`rename`, the result is rebuilt with ``ite`` so
        any injective mapping is allowed; cost can be super-linear when
        the mapping reorders levels.
        """
        if not mapping:
            return f
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise ZenSolverError("permute mapping must be injective")
        for new_index in targets:
            if not 0 <= new_index < self._num_vars:
                raise ZenSolverError(f"unknown BDD variable {new_index}")
        t0 = self._begin("permute")
        result = self._permute(f, mapping, frozenset(mapping.items()))
        self._end("permute", t0)
        return result

    def _permute(self, f: int, mapping: Dict[int, int], key_items) -> int:
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._cache
        hits = 0
        misses = 0
        expand: List = [f]
        phase = [0]
        keys: List = [None]
        results: List[int] = []
        meter = self._budget
        ticks = 0
        while expand:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                new_level, ckey = key
                node = self._ite(self.var(new_level), high, low)
                cache[ckey] = node
                results.append(node)
                continue
            if task < 2:
                results.append(task)
                continue
            ckey = ("permute", task, key_items)
            cached = cache.get(ckey)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            level = levels[task]
            new_level = mapping.get(level, level)
            expand.append(0)
            phase.append(1)
            keys.append((new_level, ckey))
            expand.append(highs[task])
            phase.append(0)
            keys.append(None)
            expand.append(lows[task])
            phase.append(0)
            keys.append(None)
        self._count_cache("permute", hits, misses)
        return results[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total (or sufficient) assignment.

        Missing variables default to False.
        """
        node = f
        while not self.is_terminal(node):
            if assignment.get(self._level[node], False):
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    def support(self, f: int) -> List[int]:
        """Sorted variable indices that `f` depends on."""
        seen: set[int] = set()
        visited: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            seen.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(seen)

    def node_count(self, f: int) -> int:
        """Number of distinct internal nodes reachable from `f`."""
        visited: set[int] = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    def sat_count(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over `num_vars` variables.

        Defaults to the manager's full variable count.  Iterative
        post-order worklist, so counting over deep BDDs (wide packet
        types) cannot hit the recursion limit.
        """
        if num_vars is None:
            num_vars = self._num_vars
        if f == FALSE:
            return 0
        levels = self._level
        lows = self._low
        highs = self._high
        # memo[node] = count over variables strictly below node's level.
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
        stack = [f]
        meter = self._budget
        ticks = 0
        while stack:
            ticks += 1
            if meter is not None and not (ticks & 1023):
                meter.tick(len(levels))
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            low, high = lows[node], highs[node]
            low_count = memo.get(low)
            high_count = memo.get(high)
            if low_count is None or high_count is None:
                if low_count is None:
                    stack.append(low)
                if high_count is None:
                    stack.append(high)
                continue
            level = levels[node]
            low_gap = self._levels_below(low) - level - 1
            high_gap = self._levels_below(high) - level - 1
            memo[node] = (low_count << low_gap) + (high_count << high_gap)
            stack.pop()
        return memo[f] << self._levels_below(f)

    def _levels_below(self, node: int) -> int:
        if self.is_terminal(node):
            return self._num_vars
        return self._level[node]

    def any_sat(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (partial: only decided levels)."""
        if f == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while not self.is_terminal(node):
            if self._low[node] != FALSE:
                assignment[self._level[node]] = False
                node = self._low[node]
            else:
                assignment[self._level[node]] = True
                node = self._high[node]
        return assignment

    def iter_sat(self, f: int) -> Iterator[Dict[int, bool]]:
        """Iterate over satisfying paths as partial assignments.

        Unmentioned variables are don't-cares on that path.
        """
        if f == FALSE:
            return
        stack: List[Tuple[int, Dict[int, bool]]] = [(f, {})]
        while stack:
            node, path = stack.pop()
            if node == TRUE:
                yield path
                continue
            if node == FALSE:
                continue
            level = self._level[node]
            high_path = dict(path)
            high_path[level] = True
            stack.append((self._high[node], high_path))
            low_path = dict(path)
            low_path[level] = False
            stack.append((self._low[node], low_path))

    def pick_assignment(
        self, f: int, variables: Sequence[int]
    ) -> Optional[Dict[int, bool]]:
        """A total assignment over `variables` satisfying `f`."""
        partial = self.any_sat(f)
        if partial is None:
            return None
        return {v: partial.get(v, False) for v in variables}

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def cube(self, literals: Dict[int, bool]) -> int:
        """Conjunction of variable literals (index -> polarity).

        Built bottom-up directly with ``_mk`` — a cube is a single
        path, so no apply traversals are needed.
        """
        result = TRUE
        for index in sorted(literals, reverse=True):
            if literals[index]:
                result = self._mk(index, FALSE, result)
            else:
                result = self._mk(index, result, FALSE)
        return result

    def from_function(
        self, fn: Callable[[Dict[int, bool]], bool], variables: Sequence[int]
    ) -> int:
        """Build a BDD from a Python truth function (for tests)."""
        def build(i: int, assignment: Dict[int, bool]) -> int:
            if i == len(variables):
                return TRUE if fn(assignment) else FALSE
            assignment[variables[i]] = False
            low = build(i + 1, assignment)
            assignment[variables[i]] = True
            high = build(i + 1, assignment)
            del assignment[variables[i]]
            return self.ite(self.var(variables[i]), high, low)

        return build(0, {})

    def clear_cache(self) -> None:
        """Drop the computed caches (unique table is kept)."""
        self._cache.clear()
        self._ite_cache.clear()
        for opcache in self._apply_caches:
            opcache.clear()
        self._quantify_cache.clear()
        self._and_exists_cache.clear()
        self._neg_cache.clear()

    def to_dot(self, f: int, name: str = "bdd") -> str:
        """GraphViz DOT rendering of the graph rooted at `f`."""
        lines = [f"digraph {name} {{"]
        lines.append('  node0 [label="0", shape=box];')
        lines.append('  node1 [label="1", shape=box];')
        visited: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in visited or self.is_terminal(node):
                continue
            visited.add(node)
            lines.append(
                f'  node{node} [label="x{self._level[node]}", shape=circle];'
            )
            lines.append(
                f"  node{node} -> node{self._low[node]} [style=dashed];"
            )
            lines.append(f"  node{node} -> node{self._high[node]};")
            stack.append(self._low[node])
            stack.append(self._high[node])
        lines.append("}")
        return "\n".join(lines)
