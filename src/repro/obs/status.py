"""Live engine status snapshots, cross-process status files, rendering.

:class:`EngineStatus` is a plain-data snapshot of everything an
operator wants at a glance: pool utilization, per-priority queue
depths, rolling latency quantiles, cache hit rate, breaker and
brownout and hedge state, SLO burn state, and counter totals.  The
engine produces one via ``QueryEngine.status()`` and (when configured
with ``status_file=``) writes it atomically on a cadence so
``python -m repro.obs status`` in *another process* can read it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "DEFAULT_STATUS_FILE",
    "EngineStatus",
    "read_status_file",
    "render_status",
    "write_status_file",
]

DEFAULT_STATUS_FILE = "engine-status.json"


@dataclass
class EngineStatus:
    """One self-contained snapshot of a running engine."""

    generated_unix: float
    pid: int
    pool_size: int
    pool_busy: int
    workers: List[int] = field(default_factory=list)
    mode: str = "normal"
    queue: Dict[str, Any] = field(default_factory=dict)
    latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    breakers: Dict[str, str] = field(default_factory=dict)
    hedge: Dict[str, Any] = field(default_factory=dict)
    slo: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    compose: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineStatus":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def write_status_file(path: str, status: EngineStatus) -> None:
    """Atomically replace ``path`` with the serialized snapshot."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fp:
        json.dump(status.as_dict(), fp, sort_keys=True, default=str)
        fp.write("\n")
    os.replace(tmp, path)


def read_status_file(path: str) -> EngineStatus:
    with open(path, "r", encoding="utf-8") as fp:
        return EngineStatus.from_dict(json.load(fp))


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_status(status: EngineStatus) -> str:
    """Human-readable terminal rendering of a snapshot."""
    now = time.time()
    age = max(0.0, now - status.generated_unix)
    lines = []
    lines.append(
        f"engine pid {status.pid} · mode={status.mode}"
        f" · snapshot {age:.1f}s old"
    )
    busy_frac = (
        status.pool_busy / status.pool_size if status.pool_size else 0.0
    )
    lines.append(
        f"  pool  [{_bar(busy_frac)}] {status.pool_busy}/{status.pool_size}"
        f" busy · workers {status.workers}"
    )
    queue = status.queue or {}
    util = float(queue.get("utilization", 0.0))
    lines.append(
        f"  queue [{_bar(util)}] depth {queue.get('depth', 0)}"
        f"/{queue.get('max_depth', '?')} (util {util:.2f})"
    )
    in_flight = queue.get("in_flight") or {}
    limits = queue.get("limits") or {}
    for priority in sorted(set(in_flight) | set(limits)):
        lines.append(
            f"    {priority:<12} in-flight {in_flight.get(priority, 0)}"
            f" / limit {limits.get(priority, '?')}"
        )
    if status.latency_ms:
        lines.append("  latency (rolling window):")
        for priority in sorted(status.latency_ms):
            row = status.latency_ms[priority]
            lines.append(
                f"    {priority:<12} p50 {row.get('p50_ms', 0):>8.2f}ms"
                f"  p95 {row.get('p95_ms', 0):>8.2f}ms"
                f"  p99 {row.get('p99_ms', 0):>8.2f}ms"
                f"  (n={int(row.get('count', 0))})"
            )
    cache = status.cache or {}
    if cache:
        lines.append(
            f"  cache hit-rate {float(cache.get('hit_rate', 0.0)):.3f}"
            f" (hits {cache.get('hits', 0)}, misses {cache.get('misses', 0)},"
            f" evictions {cache.get('evictions', 0)})"
        )
    if status.breakers:
        rendered = ", ".join(
            f"{name}={state}" for name, state in sorted(status.breakers.items())
        )
        lines.append(f"  breakers: {rendered}")
    hedge = status.hedge or {}
    if hedge:
        lines.append(
            f"  hedge: enabled={hedge.get('enabled')}"
            f" launched={hedge.get('launched', 0)}"
            f" won={hedge.get('won', 0)} lost={hedge.get('lost', 0)}"
            f" win_rate={float(hedge.get('win_rate') or 0.0):.2f}"
        )
    compose = status.compose or {}
    if compose:
        lines.append(
            f"  compose: queries {int(compose.get('queries', 0))}"
            f" · shards {int(compose.get('shards_dispatched', 0))}"
            f" · escalations {int(compose.get('escalations', 0))}"
            f" · monolith fallbacks"
            f" {int(compose.get('monolith_fallbacks', 0))}"
        )
    for slo in status.slo or []:
        flag = "BURNING" if slo.get("burning") else "ok"
        fast = slo.get("burn_fast")
        slow = slo.get("burn_slow")
        lines.append(
            f"  slo {slo.get('name'):<16} [{flag}]"
            f" burn fast={fast if fast is not None else '-'}"
            f" slow={slow if slow is not None else '-'}"
            f" alerts={slo.get('alerts', 0)}"
        )
    return "\n".join(lines)
