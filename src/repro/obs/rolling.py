"""Sliding-window primitives for operational observability.

The live-status and SLO layers need "what happened over the last N
seconds" views that the cumulative :mod:`repro.telemetry.metrics`
counters cannot answer.  Both primitives here slice time into a fixed
number of slots of equal width; observations land in the slot covering
``now`` and slots older than the window are pruned lazily on the next
touch.  Everything is O(slots) at worst and allocation-free on the hot
path, so the engine's dispatcher thread can afford one observation per
completed task.

All timestamps are caller-supplied (monotonic seconds by convention)
so tests can drive the windows with a fake clock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LOG_BOUNDS", "RollingCounter", "RollingHistogram"]

# Log-spaced latency bucket upper bounds, in seconds: 100us .. ~104s,
# doubling each step.  21 buckets cover every latency this service can
# produce while keeping quantile resolution within a factor of two.
LOG_BOUNDS: Tuple[float, ...] = tuple(1e-4 * 2.0**i for i in range(21))


class _Slots:
    """Shared slot bookkeeping: maps absolute time onto slot indices."""

    def __init__(self, window_s: float, slots: int) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.window_s = float(window_s)
        self.slots = int(slots)
        self.width = self.window_s / self.slots

    def index(self, now: float) -> int:
        return int(now / self.width)

    def live(self, now: float) -> range:
        """Absolute slot indices still inside the window at ``now``."""
        current = self.index(now)
        return range(current - self.slots + 1, current + 1)


class RollingCounter:
    """Count of events inside a sliding window."""

    __slots__ = ("_spec", "_counts", "_lock")

    def __init__(self, window_s: float = 60.0, slots: int = 12) -> None:
        self._spec = _Slots(window_s, slots)
        self._counts: Dict[int, float] = {}
        self._lock = threading.Lock()

    @property
    def window_s(self) -> float:
        return self._spec.window_s

    def add(self, now: float, amount: float = 1.0) -> None:
        idx = self._spec.index(now)
        with self._lock:
            self._counts[idx] = self._counts.get(idx, 0.0) + amount
            self._prune(idx)

    def total(self, now: float) -> float:
        live = self._spec.live(now)
        with self._lock:
            self._prune(live.stop - 1)
            return sum(
                count for idx, count in self._counts.items() if idx in live
            )

    def rate(self, now: float) -> float:
        """Events per second over the window."""
        return self.total(now) / self._spec.window_s

    def _prune(self, current: int) -> None:
        floor = current - self._spec.slots + 1
        if len(self._counts) > 2 * self._spec.slots:
            for idx in [i for i in self._counts if i < floor]:
                del self._counts[idx]


class RollingHistogram:
    """Log-bucketed value distribution inside a sliding window.

    Each live slot holds its own bucket array; quantiles merge the
    live slots and walk the cumulative counts, returning the upper
    edge of the bucket containing the requested rank (an upper bound
    accurate to one doubling).
    """

    __slots__ = ("_spec", "bounds", "_slots", "_lock")

    def __init__(
        self,
        window_s: float = 60.0,
        slots: int = 12,
        bounds: Sequence[float] = LOG_BOUNDS,
    ) -> None:
        self._spec = _Slots(window_s, slots)
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bounds must be sorted ascending")
        # abs slot index -> [per-bucket counts..., overflow]
        self._slots: Dict[int, List[int]] = {}
        self._lock = threading.Lock()

    @property
    def window_s(self) -> float:
        return self._spec.window_s

    def observe(self, now: float, value: float) -> None:
        idx = self._spec.index(now)
        bucket = self._bucket_for(value)
        with self._lock:
            counts = self._slots.get(idx)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
                self._slots[idx] = counts
                self._prune(idx)
            counts[bucket] += 1

    def _bucket_for(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _merged(self, now: float) -> List[int]:
        live = self._spec.live(now)
        merged = [0] * (len(self.bounds) + 1)
        with self._lock:
            self._prune(live.stop - 1)
            for idx, counts in self._slots.items():
                if idx in live:
                    for i, c in enumerate(counts):
                        merged[i] += c
        return merged

    def count(self, now: float) -> int:
        return sum(self._merged(now))

    def quantile(self, now: float, q: float) -> Optional[float]:
        """Upper-bound estimate of the ``q`` quantile, or None if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        merged = self._merged(now)
        total = sum(merged)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for i, c in enumerate(merged):
            cumulative += c
            if cumulative >= rank and c:
                if i < len(self.bounds):
                    return self.bounds[i]
                # Overflow bucket: report the largest finite bound.
                return self.bounds[-1] if self.bounds else float("inf")
        return self.bounds[-1] if self.bounds else float("inf")

    def summary(self, now: float) -> Dict[str, float]:
        """p50/p95/p99 (in milliseconds) plus sample count."""
        out: Dict[str, float] = {"count": float(self.count(now))}
        for label, q in (("p50_ms", 0.5), ("p95_ms", 0.95), ("p99_ms", 0.99)):
            value = self.quantile(now, q)
            out[label] = round(value * 1000.0, 3) if value is not None else 0.0
        return out

    def _prune(self, current: int) -> None:
        floor = current - self._spec.slots + 1
        if len(self._slots) > 2 * self._spec.slots:
            for idx in [i for i in self._slots if i < floor]:
                del self._slots[idx]
