"""repro.obs — operational observability for the query service.

Builds on :mod:`repro.telemetry` (raw spans/metrics) with the
*operational* layer: an always-on bounded flight recorder that dumps
self-contained JSON debug bundles on trigger, a live
:class:`EngineStatus` snapshot readable from another process, rolling
log-bucketed latency windows, and declarative SLO specs with
multi-window burn-rate alerting.

Quickstart::

    from repro.obs import FlightRecorder, SLOSpec

    engine = QueryEngine(
        pool_size=4,
        bundle_dir="debug-bundles",
        status_file="engine-status.json",
        slos=[SLOSpec("p99", "latency", objective=0.5)],
    )
    # ... elsewhere:  python -m repro.obs status engine-status.json
"""

from .recorder import (
    BUNDLE_KIND,
    BUNDLE_VERSION,
    RECORDER,
    FlightRecorder,
    load_bundle,
    render_bundle,
    write_bundle,
)
from .rolling import LOG_BOUNDS, RollingCounter, RollingHistogram
from .slo import DEFAULT_SLOS, SLOMonitor, SLOSpec
from .status import (
    DEFAULT_STATUS_FILE,
    EngineStatus,
    read_status_file,
    render_status,
    write_status_file,
)

__all__ = [
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
    "DEFAULT_SLOS",
    "DEFAULT_STATUS_FILE",
    "EngineStatus",
    "FlightRecorder",
    "LOG_BOUNDS",
    "RECORDER",
    "RollingCounter",
    "RollingHistogram",
    "SLOMonitor",
    "SLOSpec",
    "load_bundle",
    "read_status_file",
    "render_bundle",
    "render_status",
    "write_bundle",
    "write_status_file",
]
