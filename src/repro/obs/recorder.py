"""Bounded flight recorder with triggered debug-bundle capture.

The recorder keeps the last N spans, attempt records, and overload
events in fixed-size ring buffers (``collections.deque`` with
``maxlen``) so the steady-state cost of being always-on is one deque
append per record — no allocation growth, no I/O.  When something goes
wrong (worker crash-loop, breaker opening, backend disagreement,
brownout entry, SLO burn, fuzz finding) the owner calls
:meth:`FlightRecorder.trigger` and the recorder freezes everything it
knows into a self-contained JSON *debug bundle* — the operational
analogue of the fuzz farm's repro artifacts.

Bundles are plain JSON and can be inspected with
``python -m repro.obs show <bundle>``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
    "FlightRecorder",
    "RECORDER",
    "load_bundle",
    "render_bundle",
    "write_bundle",
]

BUNDLE_KIND = "repro-debug-bundle"
BUNDLE_VERSION = 1

_RING_NAMES = ("spans", "attempts", "events")


class FlightRecorder:
    """Ring buffers for recent telemetry plus bundle capture on trigger."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        cooldown_s: float = 5.0,
        max_bundles: int = 16,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.cooldown_s = float(cooldown_s)
        self.max_bundles = int(max_bundles)
        self._spans: deque = deque(maxlen=self.capacity)
        self._attempts: deque = deque(maxlen=self.capacity)
        self._events: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._counts = {"spans": 0, "attempts": 0, "events": 0}
        self._triggers = 0
        self._bundles_written = 0
        self._last_trigger: Dict[str, float] = {}
        self._bundle_paths: List[str] = []

    # -- recording (hot path) -------------------------------------------

    def record_span(self, span: Mapping[str, Any]) -> None:
        with self._lock:
            self._spans.append(dict(span))
            self._counts["spans"] += 1

    def record_attempt(self, record: Mapping[str, Any]) -> None:
        with self._lock:
            self._attempts.append(dict(record))
            self._counts["attempts"] += 1

    def record_event(self, kind: str, **data: Any) -> None:
        event = {"kind": kind, "at_unix": time.time()}
        event.update(data)
        with self._lock:
            self._events.append(event)
            self._counts["events"] += 1

    # -- inspection -----------------------------------------------------

    def rings(self) -> Dict[str, List[Dict[str, Any]]]:
        """Copies of the three rings, oldest first."""
        with self._lock:
            return {
                "spans": [dict(s) for s in self._spans],
                "attempts": [dict(a) for a in self._attempts],
                "events": [dict(e) for e in self._events],
            }

    def bundle_paths(self) -> List[str]:
        with self._lock:
            return list(self._bundle_paths)

    # Shared counter protocol (snapshot/delta/reset_counters).
    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            out = {name: self._counts[name] for name in _RING_NAMES}
            out["triggers"] = self._triggers
            out["bundles_written"] = self._bundles_written
            return out

    def delta(
        self, before: Mapping[str, int], after: Mapping[str, int]
    ) -> Dict[str, int]:
        return {
            key: after.get(key, 0) - before.get(key, 0)
            for key in set(before) | set(after)
        }

    def reset_counters(self) -> None:
        with self._lock:
            for name in _RING_NAMES:
                self._counts[name] = 0
            self._triggers = 0
            self._bundles_written = 0

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._attempts.clear()
            self._events.clear()
            self._last_trigger.clear()

    # -- bundle capture -------------------------------------------------

    def trigger(
        self,
        cause: str,
        detail: str = "",
        *,
        context: Optional[Mapping[str, Any]] = None,
        bundle_dir: Optional[str] = None,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Capture a debug bundle for ``cause``.

        Returns the bundle path, or None when no directory was given or
        the per-cause cooldown suppressed the capture (the trigger is
        still recorded as an event either way).
        """
        wall = time.time()
        mono = now if now is not None else time.monotonic()
        with self._lock:
            self._triggers += 1
            last = self._last_trigger.get(cause)
            suppressed = last is not None and (mono - last) < self.cooldown_s
            if not suppressed:
                self._last_trigger[cause] = mono
        self.record_event("trigger", cause=cause, detail=detail,
                          suppressed=suppressed)
        if suppressed or bundle_dir is None:
            return None
        bundle = self.build_bundle(
            cause, detail, context=context, captured_unix=wall
        )
        path = write_bundle(bundle_dir, bundle)
        with self._lock:
            self._bundles_written += 1
            self._bundle_paths.append(path)
            pruned = self._bundle_paths[: -self.max_bundles]
            del self._bundle_paths[: -self.max_bundles]
        for stale in pruned:
            try:
                os.unlink(stale)
            except OSError:
                pass
        return path

    def build_bundle(
        self,
        cause: str,
        detail: str = "",
        *,
        context: Optional[Mapping[str, Any]] = None,
        captured_unix: Optional[float] = None,
    ) -> Dict[str, Any]:
        from ..telemetry.metrics import METRICS

        return {
            "kind": BUNDLE_KIND,
            "version": BUNDLE_VERSION,
            "cause": cause,
            "detail": detail,
            "captured_unix": (
                captured_unix if captured_unix is not None else time.time()
            ),
            "pid": os.getpid(),
            "recent": self.rings(),
            "metrics": METRICS.snapshot(),
            "recorder": self.snapshot(),
            "context": dict(context) if context else {},
        }


# Default process-wide recorder; engines share it unless given their own.
RECORDER = FlightRecorder()


def write_bundle(directory: str, bundle: Mapping[str, Any]) -> str:
    os.makedirs(directory, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(bundle["captured_unix"]))
    cause = str(bundle.get("cause", "unknown")).replace("/", "_")
    base = f"bundle-{stamp}-{cause}-{os.getpid()}"
    path = os.path.join(directory, base + ".json")
    serial = 1
    while os.path.exists(path):
        path = os.path.join(directory, f"{base}-{serial}.json")
        serial += 1
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fp:
        json.dump(bundle, fp, indent=2, sort_keys=True, default=str)
        fp.write("\n")
    os.replace(tmp, path)
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fp:
        bundle = json.load(fp)
    if bundle.get("kind") != BUNDLE_KIND:
        raise ValueError(f"{path} is not a {BUNDLE_KIND}")
    return bundle


def render_bundle(bundle: Mapping[str, Any]) -> str:
    """Human-readable one-screen summary of a debug bundle."""
    lines = []
    captured = time.strftime(
        "%Y-%m-%d %H:%M:%SZ", time.gmtime(bundle.get("captured_unix", 0))
    )
    lines.append(
        f"debug bundle · cause={bundle.get('cause')} "
        f"detail={bundle.get('detail') or '-'}"
    )
    lines.append(f"  captured {captured} by pid {bundle.get('pid')}")
    recent = bundle.get("recent", {})
    lines.append(
        "  recent: "
        + ", ".join(
            f"{len(recent.get(name, []))} {name}" for name in _RING_NAMES
        )
    )
    events = recent.get("events", [])
    if events:
        lines.append("  last events:")
        for event in events[-8:]:
            extras = {
                k: v
                for k, v in event.items()
                if k not in ("kind", "at_unix")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
            lines.append(f"    - {event.get('kind')} {detail}".rstrip())
    attempts = recent.get("attempts", [])
    if attempts:
        bad = [
            a for a in attempts if a.get("outcome") not in ("ok", None)
        ]
        lines.append(
            f"  attempts: {len(attempts)} recent, {len(bad)} non-ok"
        )
        for a in bad[-5:]:
            lines.append(
                f"    - {a.get('outcome')} spec={a.get('spec') or a.get('builder') or '?'}"
                f" priority={a.get('priority', '?')}"
            )
    context = bundle.get("context", {})
    if context:
        lines.append("  context:")
        for key in sorted(context):
            value = context[key]
            if isinstance(value, dict):
                lines.append(f"    {key}: {json.dumps(value, sort_keys=True, default=str)[:200]}")
            else:
                lines.append(f"    {key}: {value}")
    metrics = bundle.get("metrics", {})
    lines.append(f"  metrics snapshot: {len(metrics)} series")
    return "\n".join(lines)
