"""Command-line entry points for operational observability.

``python -m repro.obs status [path]`` — render the live engine status
written by an engine configured with ``status_file=``.  The path
defaults to ``$REPRO_STATUS_FILE`` or ``engine-status.json``.

``python -m repro.obs show <bundle>`` — inspect a flight-recorder
debug bundle captured on a trigger (crash loop, breaker open, backend
disagreement, brownout, SLO burn).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .recorder import load_bundle, render_bundle
from .status import DEFAULT_STATUS_FILE, read_status_file, render_status


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="operational observability: live status + debug bundles",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    status = sub.add_parser(
        "status", help="render a live engine status file"
    )
    status.add_argument(
        "path",
        nargs="?",
        default=None,
        help="status file written by an engine with status_file="
        f" (default: $REPRO_STATUS_FILE or {DEFAULT_STATUS_FILE})",
    )
    status.add_argument("--json", action="store_true")

    show = sub.add_parser(
        "show", help="inspect a flight-recorder debug bundle"
    )
    show.add_argument("bundle", help="path to a debug-bundle JSON file")
    show.add_argument("--json", action="store_true")
    return parser


def _cmd_status(args: argparse.Namespace) -> int:
    path = args.path or os.environ.get(
        "REPRO_STATUS_FILE", DEFAULT_STATUS_FILE
    )
    try:
        status = read_status_file(path)
    except FileNotFoundError:
        print(
            f"no status file at {path} — start an engine with "
            "status_file= or pass the path explicitly",
            file=sys.stderr,
        )
        return 1
    except (ValueError, TypeError) as exc:
        print(f"unreadable status file {path}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_status(status))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        bundle = load_bundle(args.bundle)
    except FileNotFoundError:
        print(f"no bundle at {args.bundle}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(bundle, indent=2, sort_keys=True, default=str))
    else:
        print(render_bundle(bundle))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_show(args)


if __name__ == "__main__":
    sys.exit(main())
