"""Declarative SLO specs with multi-window burn-rate evaluation.

An :class:`SLOSpec` states an objective over a sliding window:

- ``latency``    — fraction of requests slower than ``objective``
  seconds must stay under ``budget_fraction``.
- ``error_rate`` — fraction of failed requests must stay under
  ``objective``.
- ``goodput``    — successful requests per second must stay at or
  above ``objective`` (a floor, evaluated only when there is traffic).

:class:`SLOMonitor` follows the multi-window burn-rate pattern: each
spec is tracked over a slow window (``window_s``) and a fast window
(``fast_window_s``); an alert fires only when *both* windows burn
faster than ``burn_threshold`` — the slow window filters blips, the
fast window confirms the problem is still happening.  Alerts are
edge-triggered structured events (``slo_burn`` / ``slo_recovered``)
suitable for flight-recorder capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .rolling import RollingCounter

__all__ = ["SLOSpec", "SLOMonitor", "DEFAULT_SLOS"]

_KINDS = ("latency", "error_rate", "goodput")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective."""

    name: str
    kind: str
    objective: float
    budget_fraction: float = 0.01
    window_s: float = 60.0
    fast_window_s: float = 5.0
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if not 0.0 < self.budget_fraction < 1.0:
            raise ValueError("budget_fraction must be in (0, 1)")
        if self.fast_window_s > self.window_s:
            raise ValueError("fast_window_s must be <= window_s")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


# A sensible default set for the query service; engines opt in via the
# ``slos=`` keyword.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(name="p99_latency", kind="latency", objective=5.0,
            budget_fraction=0.01),
    SLOSpec(name="error_rate", kind="error_rate", objective=0.05),
)


class _SpecState:
    __slots__ = ("spec", "fast", "slow", "burning", "alerts")

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self.fast = _WindowPair(spec.fast_window_s)
        self.slow = _WindowPair(spec.window_s)
        self.burning = False
        self.alerts = 0


class _WindowPair:
    """total / bad / good rolling counters over one window."""

    __slots__ = ("total", "bad", "good")

    def __init__(self, window_s: float) -> None:
        slots = max(4, min(20, int(window_s)))
        self.total = RollingCounter(window_s, slots)
        self.bad = RollingCounter(window_s, slots)
        self.good = RollingCounter(window_s, slots)


class SLOMonitor:
    """Evaluates a set of SLO specs against an observation stream."""

    def __init__(self, specs: Sequence[SLOSpec] = DEFAULT_SLOS) -> None:
        names = [s.name for s in specs]
        if len(names) != len(set(names)):
            raise ValueError("SLO names must be unique")
        self._states = [_SpecState(spec) for spec in specs]

    @property
    def specs(self) -> List[SLOSpec]:
        return [state.spec for state in self._states]

    def observe(self, ok: bool, latency_s: float, now: float) -> None:
        for state in self._states:
            spec = state.spec
            if spec.kind == "latency":
                bad = ok and latency_s > spec.objective
            elif spec.kind == "error_rate":
                bad = not ok
            else:  # goodput
                bad = not ok
            for windows in (state.fast, state.slow):
                windows.total.add(now)
                if bad:
                    windows.bad.add(now)
                if ok:
                    windows.good.add(now)

    def _burn(self, state: _SpecState, windows: _WindowPair,
              now: float) -> Optional[float]:
        """Burn rate for one window, or None when there is no signal."""
        spec = state.spec
        if spec.kind == "goodput":
            total = windows.total.total(now)
            if total == 0:
                return None
            rate = windows.good.rate(now)
            if rate >= spec.objective:
                return 0.0
            # How far below the floor, scaled so "half the floor" is a
            # burn of 2.0 (symmetric with the fraction-based kinds).
            return spec.objective / max(rate, 1e-9)
        total = windows.total.total(now)
        if total == 0:
            return None
        bad_fraction = windows.bad.total(now) / total
        budget = (
            spec.objective if spec.kind == "error_rate"
            else spec.budget_fraction
        )
        return bad_fraction / budget

    def evaluate(self, now: float) -> List[Dict[str, object]]:
        """Edge-triggered burn/recover events since the last call."""
        events: List[Dict[str, object]] = []
        for state in self._states:
            fast = self._burn(state, state.fast, now)
            slow = self._burn(state, state.slow, now)
            threshold = state.spec.burn_threshold
            burning = (
                fast is not None
                and slow is not None
                and fast >= threshold
                and slow >= threshold
            )
            if burning and not state.burning:
                state.burning = True
                state.alerts += 1
                events.append({
                    "kind": "slo_burn",
                    "slo": state.spec.name,
                    "slo_kind": state.spec.kind,
                    "objective": state.spec.objective,
                    "burn_fast": round(fast, 4),
                    "burn_slow": round(slow, 4),
                    "at": now,
                })
            elif state.burning and not burning:
                state.burning = False
                events.append({
                    "kind": "slo_recovered",
                    "slo": state.spec.name,
                    "slo_kind": state.spec.kind,
                    "burn_fast": round(fast, 4) if fast is not None else None,
                    "burn_slow": round(slow, 4) if slow is not None else None,
                    "at": now,
                })
        return events

    def state(self, now: float) -> List[Dict[str, object]]:
        """Current per-spec burn state for status rendering."""
        out = []
        for state in self._states:
            fast = self._burn(state, state.fast, now)
            slow = self._burn(state, state.slow, now)
            out.append({
                "name": state.spec.name,
                "kind": state.spec.kind,
                "objective": state.spec.objective,
                "burn_fast": round(fast, 4) if fast is not None else None,
                "burn_slow": round(slow, 4) if slow is not None else None,
                "burning": state.burning,
                "alerts": state.alerts,
            })
        return out

    # Shared counter protocol.
    def snapshot(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for state in self._states:
            out[f"slo.{state.spec.name}.burning"] = int(state.burning)
            out[f"slo.{state.spec.name}.alerts"] = state.alerts
        return out

    def reset_counters(self) -> None:
        for state in self._states:
            state.alerts = 0
