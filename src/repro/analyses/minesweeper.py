"""Minesweeper-style control plane verification: stable path constraints.

Minesweeper (SIGCOMM'17) encodes the *stable states* of distributed
routing as logical constraints: an assignment of a best route to every
router is stable iff each router's choice is the best of what its
neighbors would advertise to it under that same assignment.  Searching
for a stable state that violates a property then verifies the control
plane without simulating convergence.

Here the encoding is plain Zen: the network state is an object with
one ``Option[Route]`` field per router, ``stable`` is an ordinary Zen
boolean function, and ``find`` searches for stable states — the
constraint solving the paper lists as "stable path constraints"
backed by an SMT solver.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import ZenFunction
from ..errors import ZenTypeError
from ..lang import Zen, ZOption, constant, if_, none, register_object, some
from ..lang.listops import length
from ..network.routemap import Route, RouteMap, apply_route_map
from ..lang import cons as zen_cons
from ..lang import UShort


@dataclasses.dataclass(frozen=True)
class BgpEdge:
    """A BGP session: routes flow from `src` to `dst`.

    The export policy runs at `src`, then the sender's AS number is
    prepended, then the import policy runs at `dst`.
    """

    src: str
    dst: str
    export_policy: Optional[RouteMap] = None
    import_policy: Optional[RouteMap] = None


class BgpNetwork:
    """A small BGP network for stable-state analysis."""

    def __init__(self) -> None:
        self._nodes: Dict[str, int] = {}  # name -> AS number
        self._edges: List[BgpEdge] = []
        self._origins: Dict[str, Route] = {}

    def add_router(self, name: str, asn: int) -> None:
        """Add a router with its AS number."""
        if name in self._nodes:
            raise ZenTypeError(f"duplicate router {name!r}")
        self._nodes[name] = asn

    def add_session(
        self,
        src: str,
        dst: str,
        export_policy: Optional[RouteMap] = None,
        import_policy: Optional[RouteMap] = None,
    ) -> None:
        """Add a unidirectional advertisement edge src -> dst."""
        for name in (src, dst):
            if name not in self._nodes:
                raise ZenTypeError(f"unknown router {name!r}")
        self._edges.append(BgpEdge(src, dst, export_policy, import_policy))

    def originate(self, router: str, route: Route) -> None:
        """Make a router originate a (concrete) route."""
        if router not in self._nodes:
            raise ZenTypeError(f"unknown router {router!r}")
        self._origins[router] = route

    @property
    def routers(self) -> List[str]:
        return list(self._nodes)

    @property
    def edges(self) -> List[BgpEdge]:
        return list(self._edges)

    def asn(self, router: str) -> int:
        return self._nodes[router]

    # ------------------------------------------------------------------
    # The Zen encoding
    # ------------------------------------------------------------------

    def state_type(self) -> type:
        """A dataclass with one Option[Route] field per router."""
        if not self._nodes:
            raise ZenTypeError("network has no routers")
        fields = [(name, ZOption[Route]) for name in self._nodes]
        cls = dataclasses.make_dataclass(
            f"BgpState_{'_'.join(self._nodes)}", fields, frozen=True
        )
        return register_object(cls)

    def advertise(self, edge: BgpEdge, route_opt: Zen) -> Zen:
        """What `edge.dst` hears given `edge.src`'s chosen route."""
        def through_policies(route: Zen) -> Zen:
            out = (
                apply_route_map(edge.export_policy, route)
                if edge.export_policy is not None
                else some(route)
            )
            def import_side(r: Zen) -> Zen:
                prepended = r.with_field(
                    "as_path",
                    zen_cons(constant(self.asn(edge.src), UShort), r.as_path),
                )
                if edge.import_policy is not None:
                    return apply_route_map(edge.import_policy, prepended)
                return some(prepended)
            return if_(
                out.has_value(), import_side(out.value()), none(Route)
            )

        return if_(
            route_opt.has_value(),
            through_policies(route_opt.value()),
            none(Route),
        )

    def better(self, a: Zen, b: Zen) -> Zen:
        """BGP preference between two optional routes (a over b)."""
        a_lp, b_lp = a.value().local_pref, b.value().local_pref
        a_len, b_len = length(a.value().as_path), length(b.value().as_path)
        a_med, b_med = a.value().med, b.value().med
        a_wins = (
            (a_lp > b_lp)
            | ((a_lp == b_lp) & (a_len < b_len))
            | ((a_lp == b_lp) & (a_len == b_len) & (a_med <= b_med))
        )
        return if_(
            ~b.has_value(),
            a,
            if_(~a.has_value(), b, if_(a_wins, a, b)),
        )

    def best_choice(self, router: str, state: Zen) -> Zen:
        """The best route `router` can select under `state`."""
        candidates: List[Zen] = []
        if router in self._origins:
            candidates.append(
                some(constant(self._origins[router], Route))
            )
        for edge in self._edges:
            if edge.dst != router:
                continue
            candidates.append(self.advertise(edge, state.field(edge.src)))
        best = none(Route)
        for candidate in candidates:
            best = self.better(candidate, best)
        return best

    def stable(self, state: Zen) -> Zen:
        """Whether a state satisfies the stable path constraints."""
        result = constant(True, bool)
        for router in self._nodes:
            result = result & (
                state.field(router) == self.best_choice(router, state)
            )
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def find_stable_state(
        self,
        violating: Optional[Callable[[Zen], Zen]] = None,
        backend: str = "sat",
        max_list_length: int = 2,
    ):
        """Find a stable state, optionally violating a property.

        `violating` receives the state (Zen object with one field per
        router) and returns Zen<bool>; the search looks for a stable
        state where it holds.  Returns a concrete state object or
        None.
        """
        state_cls = self.state_type()

        def constraint(state: Zen) -> Zen:
            cond = self.stable(state)
            if violating is not None:
                cond = cond & violating(state)
            return cond

        fn = ZenFunction(constraint, [state_cls], name="stable")
        return fn.find(backend=backend, max_list_length=max_list_length)

    def verify_stable_property(
        self,
        holds: Callable[[Zen], Zen],
        backend: str = "sat",
        max_list_length: int = 2,
    ):
        """Check `holds` on every stable state; returns a violating
        stable state or None when the property is verified."""
        return self.find_stable_state(
            violating=lambda state: ~holds(state),
            backend=backend,
            max_list_length=max_list_length,
        )
