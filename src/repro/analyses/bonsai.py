"""Bonsai-style network compression via behavioral equivalence.

Bonsai (SIGCOMM'18) shrinks a network before verification by merging
devices with equivalent behavior.  Equivalence here is decided in two
stages, both through the public Zen API:

1. **Cheap invariants** from the BDD backend: the relation's
   model count and node count within its own variable block.  Equal
   functions always agree on these, so distinct invariants separate
   classes immediately.
2. **Exact confirmation** with the SAT backend: candidates that share
   invariants are checked pairwise by asking ``find`` for a packet on
   which the two functions differ — UNSAT means semantically equal
   (up to the bounded packet space).

The two-stage design avoids converting relations between transformer
variable layouts (a BDD reordering, which can be exponential when the
layouts differ — e.g. an encapsulating interface vs. a plain one).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core import TransformerContext, ZenFunction, default_context
from ..network.device import Device, Interface, fwd_in, fwd_out
from ..network.packet import Packet
from ..network.topology import Network


def _relation_invariant(transformer) -> Tuple[int, int]:
    """(model count, node count) of a relation in its own block."""
    manager = transformer.context.manager
    block = len(transformer.in_levels) + len(transformer.out_levels)
    count = manager.sat_count(transformer.relation) >> (
        manager.num_vars - block
    )
    return (count, manager.node_count(transformer.relation))


def interface_invariant(
    intf: Interface, context: Optional[TransformerContext] = None
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Cheap behavioral fingerprint of an interface (in, out)."""
    if context is None:
        context = default_context()
    in_fn = ZenFunction(
        lambda p: fwd_in(intf, p), [Packet], name=f"sig-in:{intf.name}"
    )
    out_fn = ZenFunction(
        lambda p: fwd_out(intf, p), [Packet], name=f"sig-out:{intf.name}"
    )
    return (
        _relation_invariant(in_fn.transformer(context)),
        _relation_invariant(out_fn.transformer(context)),
    )


def interfaces_equivalent(a: Interface, b: Interface) -> bool:
    """Exact semantic equivalence of two interfaces' processing."""
    in_diff = ZenFunction(
        lambda p: fwd_in(a, p) != fwd_in(b, p), [Packet], name="diff-in"
    )
    if in_diff.find(backend="sat") is not None:
        return False
    out_diff = ZenFunction(
        lambda p: fwd_out(a, p) != fwd_out(b, p), [Packet], name="diff-out"
    )
    return out_diff.find(backend="sat") is None


def _partition(items: List, invariant: Callable, equivalent: Callable):
    """Group items: bucket by invariant, confirm pairwise exactly."""
    buckets: Dict[object, List] = {}
    for item in items:
        buckets.setdefault(invariant(item), []).append(item)
    classes: List[List] = []
    for bucket in buckets.values():
        representatives: List[List] = []
        for item in bucket:
            for group in representatives:
                if equivalent(group[0], item):
                    group.append(item)
                    break
            else:
                representatives.append([item])
        classes.extend(representatives)
    return classes


def compress_interfaces(
    network: Network, context: Optional[TransformerContext] = None
) -> List[List[Interface]]:
    """Group all interfaces into behavioral equivalence classes."""
    if context is None:
        context = default_context()
    return _partition(
        network.interfaces(),
        lambda i: interface_invariant(i, context),
        interfaces_equivalent,
    )


def device_invariant(
    device: Device, context: Optional[TransformerContext] = None
) -> Tuple:
    """Order-independent fingerprint of a device's interfaces."""
    if context is None:
        context = default_context()
    return tuple(
        sorted(interface_invariant(i, context) for i in device.interfaces)
    )


def devices_equivalent(a: Device, b: Device) -> bool:
    """Exact equivalence: same interface multiset up to behavior."""
    if len(a.interfaces) != len(b.interfaces):
        return False
    remaining = list(b.interfaces)
    for intf in a.interfaces:
        for candidate in remaining:
            if interfaces_equivalent(intf, candidate):
                remaining.remove(candidate)
                break
        else:
            return False
    return True


def compress_devices(
    network: Network, context: Optional[TransformerContext] = None
) -> List[List[Device]]:
    """Group devices into behavioral equivalence classes."""
    if context is None:
        context = default_context()
    return _partition(
        list(network.devices.values()),
        lambda d: device_invariant(d, context),
        devices_equivalent,
    )


def compression_ratio(
    network: Network, context: Optional[TransformerContext] = None
) -> float:
    """Devices in the quotient network / devices in the original."""
    devices = list(network.devices.values())
    if not devices:
        return 1.0
    classes = compress_devices(network, context)
    return len(classes) / len(devices)


# Backwards-compatible aliases (the exact-signature API).
interface_signature = interface_invariant
device_signature = device_invariant
