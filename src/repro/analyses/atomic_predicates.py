"""Atomic predicates (Yang & Lam, ToN 2016), expressed over state sets.

Given a collection of predicates over some type (e.g. all ACL match
conditions in a network), the *atomic predicates* are the coarsest
partition of the value space such that every input predicate is a
disjoint union of atoms.  Real-time verifiers represent packet sets as
sets of atom ids, making set algebra cheap.

The computation is the classic refinement loop, running entirely on
Zen state sets — one of the Table-1 analyses other IVLs cannot
express because it manipulates sets of values directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from ..core import (
    StateSet,
    TransformerContext,
    ZenFunction,
    default_context,
    metered,
    start_meter,
)
from ..errors import ZenTypeError


def atomic_predicates(
    annotation: Any,
    predicates: Sequence[ZenFunction],
    context: Optional[TransformerContext] = None,
    budget=None,
) -> List[StateSet]:
    """Compute the atomic predicates of a family of boolean functions.

    Returns a list of pairwise-disjoint, non-empty state sets whose
    union is the universe, refined just enough that every input
    predicate is a union of them (the minimal such partition).

    `budget` bounds the whole refinement (predicate compilation *and*
    the set algebra, which is where adversarial families blow up);
    exhaustion raises :class:`~repro.errors.ZenBudgetExceeded`.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    atoms = [context.universe(annotation)]
    for predicate in predicates:
        pred_set = context.from_predicate(predicate, budget=meter)
        with metered(context.manager, meter):
            refined: List[StateSet] = []
            for atom in atoms:
                inside = atom.intersect(pred_set)
                outside = atom.difference(pred_set)
                if not inside.is_empty():
                    refined.append(inside)
                if not outside.is_empty():
                    refined.append(outside)
            atoms = refined
    return atoms


def predicate_as_atoms(
    predicate: ZenFunction,
    atoms: Sequence[StateSet],
    context: Optional[TransformerContext] = None,
    budget=None,
) -> Set[int]:
    """Express a predicate as the set of atom indices it covers.

    Raises if the predicate is not a union of the given atoms (i.e.
    the atoms were computed for a different predicate family).
    `budget` bounds the compilation and the coverage check.
    """
    if context is None:
        context = default_context()
    meter = start_meter(budget)
    pred_set = context.from_predicate(predicate, budget=meter)
    covered: Set[int] = set()
    residual = pred_set
    with metered(context.manager, meter):
        for index, atom in enumerate(atoms):
            inter = atom.intersect(pred_set)
            if inter.is_empty():
                continue
            if not atom.difference(pred_set).is_empty():
                raise ZenTypeError(
                    "predicate splits an atom; recompute atoms including it"
                )
            covered.add(index)
            residual = residual.difference(atom)
        if not residual.is_empty():
            raise ZenTypeError("predicate not covered by the given atoms")
    return covered


def atom_count(
    annotation: Any,
    predicates: Sequence[ZenFunction],
    context: Optional[TransformerContext] = None,
    budget=None,
) -> int:
    """Number of atomic predicates for a predicate family."""
    return len(atomic_predicates(annotation, predicates, context, budget))
