"""Shapeshifter-style abstract interpretation of the control plane.

Shapeshifter (POPL'20) verifies routing by *abstract interpretation*:
routes are abstracted into a small lattice and propagated to a
fixpoint, soundly over-/under-approximating which destinations each
router can learn.

The Zen twist (Table 1): the abstract transfer functions are written
as ordinary Zen models over a ternary lattice, so the same abstract
domain is executable (run the fixpoint concretely, as here), checkable
with ``find`` (e.g. "is there an edge labeling where the abstract
result claims unreachability?"), and composable with other models.

Lattice: 0 = NEVER (no route), 1 = MAYBE (route on some but possibly
not all concrete executions), 2 = ALWAYS (route guaranteed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core import ZenFunction
from ..errors import ZenTypeError
from ..lang import Byte, Zen, constant, if_

NEVER = 0
MAYBE = 1
ALWAYS = 2


def abstract_join(a: Zen, b: Zen) -> Zen:
    """Join of two abstract route values (pointwise max).

    Learning from several neighbors: the best case dominates.
    """
    return if_(a >= b, a, b)


def abstract_transfer(edge_label: int, value: Zen) -> Zen:
    """Propagate an abstract value across an edge.

    `edge_label` abstracts the edge's policy: NEVER blocks all routes,
    MAYBE may filter (degrades ALWAYS to MAYBE), ALWAYS passes
    everything through.
    """
    if edge_label == NEVER:
        return constant(NEVER, Byte)
    if edge_label == MAYBE:
        return if_(value == ALWAYS, constant(MAYBE, Byte), value)
    if edge_label == ALWAYS:
        return value
    raise ZenTypeError(f"unknown edge label {edge_label}")


class AbstractControlPlane:
    """A routing graph with abstract edge policies."""

    def __init__(self) -> None:
        self._nodes: List[str] = []
        self._edges: List[Tuple[str, str, int]] = []
        self._origin: Optional[str] = None

    def add_router(self, name: str) -> None:
        if name in self._nodes:
            raise ZenTypeError(f"duplicate router {name!r}")
        self._nodes.append(name)

    def add_edge(self, src: str, dst: str, label: int = ALWAYS) -> None:
        """Routes flow src -> dst through an abstract policy label."""
        for name in (src, dst):
            if name not in self._nodes:
                raise ZenTypeError(f"unknown router {name!r}")
        self._edges.append((src, dst, label))

    def originate(self, router: str) -> None:
        if router not in self._nodes:
            raise ZenTypeError(f"unknown router {router!r}")
        self._origin = router

    # ------------------------------------------------------------------

    def step_model(self) -> Dict[str, ZenFunction]:
        """One Zen model per router: its abstract update function.

        Each function maps the router's current inputs (joined
        neighbor values) to its next abstract value — these are the
        executable abstract transfer functions.
        """
        models: Dict[str, ZenFunction] = {}
        for node in self._nodes:
            def update(value: Zen, node=node) -> Zen:
                # Identity on the joined input; the per-edge transfer
                # happens in propagate().  Kept as a model so users
                # can `find` over it.
                return value

            models[node] = ZenFunction(update, [Byte], name=f"abs:{node}")
        return models

    def propagate(self, max_iterations: int = 64) -> Dict[str, int]:
        """Run the abstract fixpoint concretely (executing Zen models).

        Returns the abstract route value at every router.
        """
        if self._origin is None:
            raise ZenTypeError("no originating router configured")
        state: Dict[str, int] = {n: NEVER for n in self._nodes}
        state[self._origin] = ALWAYS
        join_fn = ZenFunction(
            lambda a, b: abstract_join(a, b), [Byte, Byte], name="join"
        )
        transfer_fns = {
            label: ZenFunction(
                lambda v, label=label: abstract_transfer(label, v),
                [Byte],
                name=f"transfer:{label}",
            )
            for label in (NEVER, MAYBE, ALWAYS)
        }
        for _ in range(max_iterations):
            changed = False
            for node in self._nodes:
                value = ALWAYS if node == self._origin else NEVER
                for src, dst, label in self._edges:
                    if dst != node:
                        continue
                    incoming = transfer_fns[label].evaluate(state[src])
                    value = join_fn.evaluate(value, incoming)
                if value != state[node]:
                    state[node] = value
                    changed = True
            if not changed:
                break
        return state

    def check_reachability(self, router: str) -> int:
        """The abstract reachability verdict for one router."""
        return self.propagate()[router]
