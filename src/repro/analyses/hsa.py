"""Header space analysis (Figure 8): packet-set reachability.

HSA pushes *sets* of packets through the network, exploring all paths,
using the state set transformer abstraction.  Each interface
contributes an inbound and an outbound transformer built from the same
``fwd_in`` / ``fwd_out`` models used for simulation and model checking
— the compositionality payoff of §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import (
    StateSet,
    TransformerContext,
    ZenFunction,
    default_context,
    start_meter,
)
from ..lang import ZOption
from ..network.device import Interface, fwd_in, fwd_out
from ..network.packet import Packet
from ..network.topology import Network


@dataclass(frozen=True)
class PathSet:
    """A set of packets, the path they took, and why they stopped.

    ``status`` is "stopped" when the set reached a device that
    forwards it nowhere (dropped by the FIB or an outbound ACL, or it
    left the network — the last path element tells which), and
    "dropped_in" when an inbound ACL consumed the whole set.
    """

    path: Tuple[str, ...]
    packets: StateSet
    status: str = "stopped"


class _TransformerCache:
    """Builds and caches in/out packet-set transformers per interface.

    One shared budget meter covers every transformer build and set
    push of an exploration, so the whole analysis — not each hop —
    lives under a single deadline/node cap.
    """

    def __init__(self, context: TransformerContext, meter=None):
        self.context = context
        self.meter = meter
        self._in: Dict[int, object] = {}
        self._out: Dict[int, object] = {}
        self._some: Optional[StateSet] = None
        self._value: Optional[object] = None

    def _option_machinery(self):
        if self._value is None:
            has_fn = ZenFunction(
                lambda o: o.has_value(), [ZOption[Packet]], name="has_value"
            )
            self._some = self.context.from_predicate(has_fn, budget=self.meter)
            value_fn = ZenFunction(
                lambda o: o.value(), [ZOption[Packet]], name="value"
            )
            self._value = value_fn.transformer(self.context, budget=self.meter)
        return self._some, self._value

    def _survivors(self, transformer) -> "callable":
        """Set[Packet] -> Set[Packet] through an Option-returning model."""
        some_set, value_t = self._option_machinery()

        def push(packets: StateSet) -> StateSet:
            options = transformer.transform_forward(packets, budget=self.meter)
            return value_t.transform_forward(
                options.intersect(some_set), budget=self.meter
            )

        return push

    def inbound(self, intf: Interface):
        key = id(intf)
        if key not in self._in:
            fn = ZenFunction(
                lambda p, i=intf: fwd_in(i, p), [Packet], name=f"in:{intf.name}"
            )
            self._in[key] = self._survivors(
                fn.transformer(self.context, budget=self.meter)
            )
        return self._in[key]

    def outbound(self, intf: Interface):
        key = id(intf)
        if key not in self._out:
            fn = ZenFunction(
                lambda p, i=intf: fwd_out(i, p),
                [Packet],
                name=f"out:{intf.name}",
            )
            self._out[key] = self._survivors(
                fn.transformer(self.context, budget=self.meter)
            )
        return self._out[key]


def hsa_explore(
    entry: Interface,
    packets: StateSet,
    context: Optional[TransformerContext] = None,
    max_depth: int = 16,
    budget=None,
) -> Iterator[PathSet]:
    """Explore all paths a packet set can take from an entry interface.

    Yields a :class:`PathSet` whenever a (non-empty) set of packets
    stops moving: it is dropped at the current device, or it leaves the
    network through an unlinked interface.  This is the algorithm of
    Figure 8, with transformers computing the per-hop packet sets.

    `budget` (a :class:`~repro.core.budget.Budget` or running meter)
    governs the *entire* exploration — every transformer build and
    per-hop set operation charges one shared meter — raising
    :class:`~repro.errors.ZenBudgetExceeded` on exhaustion.
    """
    if context is None:
        context = default_context()
    cache = _TransformerCache(context, meter=start_meter(budget))
    queue: List[Tuple[Tuple[str, ...], Interface, StateSet, int]] = [
        ((entry.name,), entry, packets, 0)
    ]
    while queue:
        path, intf, current, depth = queue.pop(0)
        in_set = cache.inbound(intf)(current)
        if in_set.is_empty():
            yield PathSet(path, current, status="dropped_in")
            continue
        forwarded = False
        for out_intf in intf.device.interfaces:
            out_set = cache.outbound(out_intf)(in_set)
            if out_set.is_empty():
                continue
            forwarded = True
            new_path = path + (out_intf.name,)
            if out_intf.neighbor is None or depth + 1 >= max_depth:
                yield PathSet(new_path, out_set)
            else:
                queue.append(
                    (
                        new_path + (out_intf.neighbor.name,),
                        out_intf.neighbor,
                        out_set,
                        depth + 1,
                    )
                )
        if not forwarded:
            yield PathSet(path, in_set)


def reachable_sets(
    network: Network,
    entry: Interface,
    context: Optional[TransformerContext] = None,
    max_depth: int = 16,
    packets: Optional[StateSet] = None,
    budget=None,
) -> List[PathSet]:
    """All terminal path sets from an entry interface.

    Defaults to the full packet universe.  For networks whose devices
    create cross-field correlations (e.g. tunnel encapsulation copying
    ports between headers), pass a constrained entry set — fully
    symbolic correlated fields are the classic worst case for BDD
    packet sets.  `budget` bounds the whole exploration.
    """
    if context is None:
        context = default_context()
    if packets is None:
        packets = context.universe(Packet)
    return list(
        hsa_explore(entry, packets, context, max_depth=max_depth, budget=budget)
    )


def reachable_between(
    network: Network,
    entry: Interface,
    exit_intf: Interface,
    context: Optional[TransformerContext] = None,
    max_depth: int = 16,
    budget=None,
) -> StateSet:
    """The set of packets that can travel from `entry` out of
    `exit_intf` along some path.  `budget` bounds the exploration."""
    if context is None:
        context = default_context()
    universe = context.universe(Packet)
    result = context.empty_set(Packet)
    for path_set in hsa_explore(entry, universe, context, max_depth, budget):
        if path_set.status == "stopped" and path_set.path[-1] == exit_intf.name:
            result = result.union(path_set.packets)
    return result