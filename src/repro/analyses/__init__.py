"""The Table-1 analyses, all built on top of the Zen API.

Each module implements one published network analysis using only the
public Zen primitives (evaluate / find / transformers), demonstrating
the generality claim of the paper:

* :mod:`hsa` — header space analysis (packet-set reachability),
* :mod:`atomic_predicates` — Yang-Lam atomic predicate computation,
* :mod:`anteater` — per-path SAT reachability,
* :mod:`minesweeper` — BGP stable path constraint solving,
* :mod:`bonsai` — network compression by behavioral equivalence,
* :mod:`shapeshifter` — abstract interpretation of the control plane.
"""

from .anteater import ReachabilityResult, enumerate_paths, find_reachable_packet, verify_isolation
from .atomic_predicates import atom_count, atomic_predicates, predicate_as_atoms
from .bonsai import (
    compress_devices,
    compress_interfaces,
    compression_ratio,
    device_signature,
    interface_signature,
)
from .hsa import PathSet, hsa_explore, reachable_between, reachable_sets
from .minesweeper import BgpEdge, BgpNetwork
from .shapeshifter import (
    ALWAYS,
    MAYBE,
    NEVER,
    AbstractControlPlane,
    abstract_join,
    abstract_transfer,
)

__all__ = [
    "PathSet",
    "hsa_explore",
    "reachable_sets",
    "reachable_between",
    "atomic_predicates",
    "predicate_as_atoms",
    "atom_count",
    "enumerate_paths",
    "find_reachable_packet",
    "verify_isolation",
    "ReachabilityResult",
    "BgpNetwork",
    "BgpEdge",
    "compress_interfaces",
    "compress_devices",
    "compression_ratio",
    "interface_signature",
    "device_signature",
    "AbstractControlPlane",
    "abstract_join",
    "abstract_transfer",
    "NEVER",
    "MAYBE",
    "ALWAYS",
]
