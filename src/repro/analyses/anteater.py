"""Anteater-style reachability: per-path SAT queries (§4).

Anteater (SIGCOMM'11) reduces data-plane reachability to boolean
satisfiability.  With Zen, the same analysis is: enumerate paths,
model path traversal with :func:`forward_along_path` (Figure 7), and
ask ``find`` for a packet delivered along the path — using SMT-style
reasoning, exactly as the paper sketches below Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core import ZenFunction, start_meter
from ..lang import Zen
from ..network.device import Device, Interface, forward_along_path
from ..network.packet import Packet
from ..network.topology import Network


def enumerate_paths(
    network: Network,
    source: Device,
    target: Device,
    max_hops: int = 8,
) -> Iterator[List[Interface]]:
    """Enumerate simple device paths as Figure-7 interface sequences.

    A path alternates (in-interface, out-interface) per device; the
    first device has no in-interface, so the sequence starts with any
    of the source's unlinked (edge) interfaces.
    """
    def walk(device: Device, visited: Tuple[str, ...], acc: List[Interface]):
        if device.name == target.name:
            # Terminate at any unlinked (edge) interface of the target.
            for out in device.interfaces:
                if out.neighbor is None:
                    yield acc + [out]
            return
        for out in device.interfaces:
            peer = out.neighbor
            if peer is None or peer.device.name in visited:
                continue
            yield from walk(
                peer.device,
                visited + (peer.device.name,),
                acc + [out, peer],
            )

    if not source.interfaces:
        return
    # Entry point: an unlinked (edge) interface on the source device.
    entries = [i for i in source.interfaces if i.neighbor is None]
    if not entries:
        entries = [source.interfaces[0]]
    for entry in entries:
        for path in walk(source, (source.name,), [entry]):
            if len(path) >= 2:
                yield path


@dataclass(frozen=True)
class ReachabilityResult:
    """A witness packet and the path it is delivered along."""

    packet: Packet
    path: Tuple[str, ...]


def find_reachable_packet(
    network: Network,
    source: Device,
    target: Device,
    backend: str = "sat",
    max_hops: int = 8,
    extra_property=None,
    budget=None,
) -> Optional[ReachabilityResult]:
    """Find a packet deliverable from `source` to `target` on any path.

    `extra_property` optionally constrains the input packet:
    ``lambda pkt: Zen<bool>``.  Iterates over all simple paths and
    issues one ``find`` per path (the Anteater strategy).

    `budget` (a :class:`~repro.core.budget.Budget` or running meter)
    is shared across *all* per-path solver calls, so the analysis as a
    whole — not each path — is bounded; exhaustion raises
    :class:`~repro.errors.ZenBudgetExceeded`.
    """
    meter = start_meter(budget)
    for path in enumerate_paths(network, source, target, max_hops):
        fn = ZenFunction(
            lambda p, path=path: forward_along_path(path, p),
            [Packet],
            name="path-reach",
        )

        def delivered(pkt: Zen, result: Zen) -> Zen:
            prop = result.has_value()
            if extra_property is not None:
                prop = prop & extra_property(pkt)
            return prop

        witness = fn.find(delivered, backend=backend, budget=meter)
        if witness is not None:
            return ReachabilityResult(
                packet=witness,
                path=tuple(intf.name for intf in path),
            )
    return None


def verify_isolation(
    network: Network,
    source: Device,
    target: Device,
    backend: str = "sat",
    max_hops: int = 8,
    budget=None,
) -> Optional[ReachabilityResult]:
    """Check that *no* packet reaches target from source.

    Returns None when isolated, otherwise a counterexample witness.
    `budget` bounds the whole check (shared across paths).
    """
    return find_reachable_packet(
        network,
        source,
        target,
        backend=backend,
        max_hops=max_hops,
        budget=budget,
    )