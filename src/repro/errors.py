"""Exception hierarchy for the repro (PyZen) library.

Every error raised by the public API derives from :class:`ZenError` so
that callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ZenError(Exception):
    """Base class for all errors raised by this library."""


class ZenTypeError(ZenError, TypeError):
    """An expression was built or used with incompatible Zen types."""


class ZenArityError(ZenError, TypeError):
    """A Zen function was declared or applied with the wrong arity."""


class ZenUnsupportedError(ZenError, NotImplementedError):
    """The requested operation is not supported by the chosen backend."""


class ZenEvaluationError(ZenError, RuntimeError):
    """Concrete or symbolic evaluation failed (e.g. malformed model)."""


class ZenSolverError(ZenError, RuntimeError):
    """A solver substrate (SAT or BDD) was used incorrectly."""


class ZenDepthError(ZenError, ValueError):
    """A bounded structure (list) exceeded its configured maximum size."""


class ZenBudgetExceeded(ZenError, TimeoutError):
    """A query exhausted its :class:`~repro.core.budget.Budget`.

    Carries the structured context a caller needs to degrade
    gracefully instead of guessing from a message string:

    * ``reason``  — which limit tripped (``"deadline"``,
      ``"conflicts"``, ``"bdd_nodes"`` or ``"models"``);
    * ``budget``  — the :class:`Budget` that was configured;
    * ``stats``   — partial statistics at the moment of exhaustion
      (elapsed seconds, conflicts seen, BDD nodes allocated, models
      produced);
    * ``degradations`` — fallback steps already attempted when raised
      by :func:`~repro.core.budget.solve_with_fallback`.
    """

    def __init__(self, message, reason="", budget=None, stats=None):
        super().__init__(message)
        self.reason = reason
        self.budget = budget
        self.stats = dict(stats or {})
        self.degradations: tuple = ()


class ZenUnsoundResultError(ZenError, RuntimeError):
    """A solver produced a model that fails concrete replay.

    Raised by counterexample self-validation: every model returned by
    ``find``/``verify`` is replayed through the concrete evaluator, so
    a latent encoding bug in a solver backend becomes a loud failure
    instead of a silently wrong packet.  ``model`` holds the rejected
    decoded inputs and ``backend`` names the engine that produced it.
    """

    def __init__(self, message, model=None, backend=""):
        super().__init__(message)
        self.model = model
        self.backend = backend
