"""Exception hierarchy for the repro (PyZen) library.

Every error raised by the public API derives from :class:`ZenError` so
that callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ZenError(Exception):
    """Base class for all errors raised by this library."""


class ZenTypeError(ZenError, TypeError):
    """An expression was built or used with incompatible Zen types."""


class ZenArityError(ZenError, TypeError):
    """A Zen function was declared or applied with the wrong arity."""


class ZenUnsupportedError(ZenError, NotImplementedError):
    """The requested operation is not supported by the chosen backend."""


class ZenEvaluationError(ZenError, RuntimeError):
    """Concrete or symbolic evaluation failed (e.g. malformed model)."""


class ZenSolverError(ZenError, RuntimeError):
    """A solver substrate (SAT or BDD) was used incorrectly."""


class ZenDepthError(ZenError, ValueError):
    """A bounded structure (list) exceeded its configured maximum size."""


class ZenBudgetExceeded(ZenError, TimeoutError):
    """A query exhausted its :class:`~repro.core.budget.Budget`.

    Carries the structured context a caller needs to degrade
    gracefully instead of guessing from a message string:

    * ``reason``  — which limit tripped (``"deadline"``,
      ``"conflicts"``, ``"bdd_nodes"`` or ``"models"``);
    * ``budget``  — the :class:`Budget` that was configured;
    * ``stats``   — partial statistics at the moment of exhaustion
      (elapsed seconds, conflicts seen, BDD nodes allocated, models
      produced);
    * ``degradations`` — fallback steps already attempted when raised
      by :func:`~repro.core.budget.solve_with_fallback`.
    """

    def __init__(self, message, reason="", budget=None, stats=None):
        super().__init__(message)
        self.reason = reason
        self.budget = budget
        self.stats = dict(stats or {})
        self.degradations: tuple = ()
        self.failures: tuple = ()


class ZenServiceError(ZenError, RuntimeError):
    """Base class for failures of the fault-isolated query service.

    Everything the :class:`~repro.service.QueryEngine` raises derives
    from this, so callers can fence off *execution-layer* trouble
    (crashed workers, timeouts, open breakers) from *model-layer*
    errors (type errors, unsound encodings) with one except clause.
    """


class ZenWorkerCrash(ZenServiceError):
    """A subprocess worker died mid-query (crash, abort, or OOM kill).

    ``pid`` is the dead worker and ``exitcode`` the raw process exit
    status (negative = killed by that signal number).
    """

    def __init__(self, message, pid=None, exitcode=None):
        super().__init__(message)
        self.pid = pid
        self.exitcode = exitcode


class ZenQueryTimeout(ZenServiceError, TimeoutError):
    """A query blew its *hard* (kill-based) wall-clock deadline.

    Unlike :class:`ZenBudgetExceeded` — which relies on the solver
    cooperating with checkpoint hooks — this deadline is enforced by
    the parent killing the worker process, so it fires even inside a
    non-checkpointed kernel or a wedged interpreter.
    """

    def __init__(self, message, timeout_s=None, pid=None, attempts=()):
        super().__init__(message)
        self.timeout_s = timeout_s
        self.pid = pid
        #: Per-attempt history when the engine raised this for an
        #: exhausted *client deadline* (``deadline_s``) rather than a
        #: single hard per-attempt timeout; empty otherwise.
        self.attempts = tuple(attempts)


class ZenQueueFull(ZenServiceError):
    """Admission control rejected a submission: the queue is full.

    Raised *synchronously* by ``QueryEngine.submit``/``run`` before any
    task is created — the fast-reject half of backpressure.  Callers
    that prefer blocking backpressure pass ``submit(..., wait=True)``.

    ``priority`` is the class that was refused, ``depth``/``limit``
    the admission depth and that class's admit limit at the moment of
    rejection (lower-priority classes saturate first by design, so an
    ``interactive`` ZenQueueFull implies the queue is truly full).
    """

    def __init__(self, message, priority="", depth=None, limit=None):
        super().__init__(message)
        self.priority = priority
        self.depth = depth
        self.limit = limit


class ZenOverloadShed(ZenServiceError):
    """An admitted query was dropped by utilization-triggered shedding.

    Under sustained overload the dispatcher drops queued ``batch``/
    ``fuzz`` work (never ``interactive``) to keep latency bounded for
    the traffic that matters; each dropped task fails with this error
    and a structured ``shed_overload`` attempt record instead of
    waiting out a deadline it could never meet.
    """

    def __init__(self, message, attempts=(), priority=""):
        super().__init__(message)
        self.attempts = tuple(attempts)
        self.priority = priority


class ZenCircuitOpen(ZenServiceError):
    """Every backend eligible for a query had an open circuit breaker.

    The query was shed without executing; retry after the breaker
    cooldown, or consult ``attempts`` for the per-backend shed record.
    """

    def __init__(self, message, attempts=()):
        super().__init__(message)
        self.attempts = tuple(attempts)


class ZenQueryFailed(ZenServiceError):
    """A query exhausted its whole retry/fallback ladder.

    ``attempts`` is the full per-attempt history
    (:class:`~repro.service.AttemptRecord`): which worker ran each
    attempt, how it failed, what backoff was applied, and the breaker
    state at the time — the observability record the engine keeps for
    every query.
    """

    def __init__(self, message, attempts=(), label=""):
        super().__init__(message)
        self.attempts = tuple(attempts)
        self.label = label


class ZenBackendDisagreement(ZenServiceError):
    """The differential oracle caught the backends contradicting.

    Both the SAT and BDD workers completed the same query but one
    reported a (concrete-replay-validated) witness while the other
    reported none — an encoding bug in at least one backend.  The
    exception is self-contained for offline triage (fuzz artifacts
    serialize it without re-running anything):

    * ``answers`` — backend name → the answer that side returned;
    * ``attempts`` — the combined per-attempt history of both sides
      (:class:`~repro.service.AttemptRecord` tuples, interleaved);
    * ``attempts_by_backend`` — backend name → only that side's
      attempt records;
    * ``profiles`` — backend name → that side's
      :class:`~repro.telemetry.QueryProfile` (None when the parent
      tracer was disabled for the query).
    """

    def __init__(
        self,
        message,
        answers=None,
        attempts=(),
        attempts_by_backend=None,
        profiles=None,
    ):
        super().__init__(message)
        self.answers = dict(answers or {})
        self.attempts = tuple(attempts)
        self.attempts_by_backend = {
            backend: tuple(records)
            for backend, records in dict(attempts_by_backend or {}).items()
        }
        self.profiles = dict(profiles or {})


class ZenComposeError(ZenServiceError):
    """A compositional query lost a shard it cannot recompose without.

    The compose driver fans per-shard summary tasks out through the
    query engine; when a shard's dispatch fails terminally (worker
    crash after retries, hard timeout, queue rejection) the
    recomposition is missing an interface image and *must not* fall
    back to guessing.  The failure is structural and carries
    ``shard_id`` plus the underlying per-shard errors so callers can
    re-dispatch or escalate to the monolithic query deliberately.
    """

    def __init__(self, message, shard_id="", causes=()):
        super().__init__(message)
        self.shard_id = shard_id
        self.causes = tuple(causes)


class ZenUnsoundResultError(ZenError, RuntimeError):
    """A solver produced a model that fails concrete replay.

    Raised by counterexample self-validation: every model returned by
    ``find``/``verify`` is replayed through the concrete evaluator, so
    a latent encoding bug in a solver backend becomes a loud failure
    instead of a silently wrong packet.  ``model`` holds the rejected
    decoded inputs and ``backend`` names the engine that produced it.
    """

    def __init__(self, message, model=None, backend=""):
        super().__init__(message)
        self.model = model
        self.backend = backend
