"""Exception hierarchy for the repro (PyZen) library.

Every error raised by the public API derives from :class:`ZenError` so
that callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ZenError(Exception):
    """Base class for all errors raised by this library."""


class ZenTypeError(ZenError, TypeError):
    """An expression was built or used with incompatible Zen types."""


class ZenArityError(ZenError, TypeError):
    """A Zen function was declared or applied with the wrong arity."""


class ZenUnsupportedError(ZenError, NotImplementedError):
    """The requested operation is not supported by the chosen backend."""


class ZenEvaluationError(ZenError, RuntimeError):
    """Concrete or symbolic evaluation failed (e.g. malformed model)."""


class ZenSolverError(ZenError, RuntimeError):
    """A solver substrate (SAT or BDD) was used incorrectly."""


class ZenDepthError(ZenError, ValueError):
    """A bounded structure (list) exceeded its configured maximum size."""
