"""Access control lists: the Zen model from Table 2 (~28 lines).

An ACL is a prioritized rule list; the model walks the rules through
host-language recursion exactly like the paper's ``Forward`` function
(first match wins, implicit deny at the end).  ``acl_match_line``
additionally reports *which* line matched — the line tracking used by
the Figure 10 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..lang import USHORT, Zen, constant, if_
from .ip import Prefix

PERMIT = True
DENY = False


@dataclass(frozen=True)
class AclRule:
    """One ACL line: match on the five-tuple, permit or deny."""

    action: bool
    src: Prefix = Prefix(0, 0)
    dst: Prefix = Prefix(0, 0)
    src_ports: Optional[Tuple[int, int]] = None
    dst_ports: Optional[Tuple[int, int]] = None
    protocol: Optional[int] = None


@dataclass(frozen=True)
class Acl:
    """A named, prioritized list of ACL rules."""

    name: str
    rules: Tuple[AclRule, ...]

    @classmethod
    def of(cls, name: str, rules: Sequence[AclRule]) -> "Acl":
        return cls(name=name, rules=tuple(rules))


# --- the Zen model ----------------------------------------------------


def rule_matches(rule: AclRule, h: Zen) -> Zen:
    """Whether a header matches one ACL rule (Zen<bool>)."""
    cond = (h.src_ip & rule.src.mask) == rule.src.address
    cond = cond & ((h.dst_ip & rule.dst.mask) == rule.dst.address)
    if rule.src_ports is not None:
        lo, hi = rule.src_ports
        cond = cond & (h.src_port >= lo) & (h.src_port <= hi)
    if rule.dst_ports is not None:
        lo, hi = rule.dst_ports
        cond = cond & (h.dst_port >= lo) & (h.dst_port <= hi)
    if rule.protocol is not None:
        cond = cond & (h.protocol == rule.protocol)
    return cond


def acl_allows(acl: Acl, h: Zen, i: int = 0) -> Zen:
    """Whether the ACL permits a header (first match wins)."""
    if i >= len(acl.rules):
        return constant(False, bool)  # implicit deny
    rule = acl.rules[i]
    return if_(
        rule_matches(rule, h),
        constant(rule.action, bool),
        acl_allows(acl, h, i + 1),
    )


def acl_match_line(acl: Acl, h: Zen, i: int = 0) -> Zen:
    """The 1-based line number that matches, 0 if none (line tracking)."""
    if i >= len(acl.rules):
        return constant(0, USHORT)
    return if_(
        rule_matches(acl.rules[i], h),
        constant(i + 1, USHORT),
        acl_match_line(acl, h, i + 1),
    )
