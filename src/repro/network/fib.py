"""Longest-prefix-match forwarding: the Zen model of Figure 4 (~18
lines in the paper).

A forwarding table holds rules in *descending prefix-length order*
(so the first match is the longest).  ``forward`` returns the output
port, with 0 as the null interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ZenTypeError
from ..lang import BYTE, Zen, constant, if_
from .ip import Prefix

NULL_PORT = 0


@dataclass(frozen=True)
class FwdRule:
    """One forwarding entry: prefix -> output port."""

    prefix: Prefix
    port: int


@dataclass(frozen=True)
class FwdTable:
    """A forwarding table sorted by descending prefix length."""

    rules: Tuple[FwdRule, ...]

    @classmethod
    def of(cls, rules: Sequence[FwdRule]) -> "FwdTable":
        ordered = tuple(
            sorted(rules, key=lambda r: r.prefix.length, reverse=True)
        )
        return cls(rules=ordered)

    def __post_init__(self) -> None:
        lengths = [r.prefix.length for r in self.rules]
        if lengths != sorted(lengths, reverse=True):
            raise ZenTypeError(
                "forwarding rules must be in descending prefix-length "
                "order; use FwdTable.of to sort them"
            )


# --- the Zen model (Figure 4) -----------------------------------------


def prefix_matches(rule: FwdRule, h: Zen) -> Zen:
    """Whether the rule's prefix matches the header's destination."""
    return (h.dst_ip & rule.prefix.mask) == rule.prefix.address


def forward(table: FwdTable, h: Zen, i: int = 0) -> Zen:
    """Longest-prefix-match forwarding; returns the port (Zen<byte>)."""
    if i >= len(table.rules):
        return constant(NULL_PORT, BYTE)  # null interface
    rule = table.rules[i]
    return if_(prefix_matches(rule, h), rule.port, forward(table, h, i + 1))
