"""IPv4 addresses and prefixes (concrete helpers for building models).

These are plain Python values used to *construct* network models
(ACL rules, forwarding tables); the models themselves operate on Zen
integer values.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..errors import ZenTypeError

MAX_IP = (1 << 32) - 1


def ip_to_int(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ZenTypeError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ZenTypeError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    if not 0 <= value <= MAX_IP:
        raise ZenTypeError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(length: int) -> int:
    """The 32-bit network mask for a prefix length."""
    if not 0 <= length <= 32:
        raise ZenTypeError(f"prefix length out of range: {length}")
    return (MAX_IP << (32 - length)) & MAX_IP if length else 0


@dataclasses.dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix in canonical (masked) form."""

    address: int
    length: int

    def __post_init__(self) -> None:
        mask = prefix_mask(self.length)
        object.__setattr__(self, "address", self.address & mask)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` (bare addresses mean /32)."""
        if "/" in text:
            addr, _, length = text.partition("/")
            return cls(ip_to_int(addr), int(length))
        return cls(ip_to_int(text), 32)

    @property
    def mask(self) -> int:
        """The network mask as a 32-bit integer."""
        return prefix_mask(self.length)

    def contains(self, ip: int) -> bool:
        """Concrete membership check."""
        return (ip & self.mask) == self.address

    def range(self) -> Tuple[int, int]:
        """The inclusive [low, high] address range of the prefix."""
        low = self.address
        high = self.address | (MAX_IP >> self.length if self.length else MAX_IP)
        return low, high

    def __str__(self) -> str:
        return f"{int_to_ip(self.address)}/{self.length}"
