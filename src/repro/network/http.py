"""Application-layer models: an HTTP firewall with URL matching.

The paper's introduction names "HTTP firewalls and URL-based
forwarding" as functionality no verification tool covers today; this
module shows the Zen language reaching layer 7.  Zen has no string
type, so URLs are bounded lists of bytes — exercising exactly the
composite-structure machinery of §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..lang import Byte, UShort, Zen, ZList, constant, if_, register_object, zen_list
from ..lang.listops import head_option


@register_object
@dataclass(frozen=True)
class HttpRequest:
    """A (heavily abstracted) HTTP request."""

    method: Byte          # 0 = GET, 1 = POST, 2 = PUT, 3 = DELETE
    path: ZList[Byte]     # URL path as bytes, bounded length
    host_hash: UShort     # hash of the Host header

GET, POST, PUT, DELETE = range(4)


def encode_path(text: str) -> list:
    """Encode an ASCII path into the byte-list representation."""
    return [ord(c) & 0xFF for c in text]


@dataclass(frozen=True)
class HttpRule:
    """One firewall rule: method/prefix/host matching with an action."""

    action: bool
    methods: Tuple[int, ...] = ()
    path_prefix: str = ""
    host_hash: int = -1  # -1 = any host


@dataclass(frozen=True)
class HttpFirewall:
    """An ordered rule list with implicit deny."""

    name: str
    rules: Tuple[HttpRule, ...]

    @classmethod
    def of(cls, name: str, rules: Sequence[HttpRule]) -> "HttpFirewall":
        return cls(name=name, rules=tuple(rules))


# --- the Zen model ----------------------------------------------------


def path_has_prefix(path: Zen, prefix: str) -> Zen:
    """Whether a byte-list path starts with an ASCII prefix."""
    if not prefix:
        return constant(True, bool)
    first = prefix[0]

    def check_head(rest: Zen) -> Zen:
        return rest.case(
            empty=lambda: constant(False, bool),
            cons=lambda hd, tl: if_(
                hd == (ord(first) & 0xFF),
                path_has_prefix_tail(tl, prefix[1:]),
                constant(False, bool),
            ),
        )

    return check_head(path)


def path_has_prefix_tail(path: Zen, prefix: str) -> Zen:
    """Continuation of :func:`path_has_prefix` past the first byte."""
    return path_has_prefix(path, prefix)


def http_rule_matches(rule: HttpRule, request: Zen) -> Zen:
    """Whether a request matches one firewall rule."""
    cond = constant(True, bool)
    if rule.methods:
        any_method = constant(False, bool)
        for method in rule.methods:
            any_method = any_method | (request.method == method)
        cond = cond & any_method
    if rule.path_prefix:
        cond = cond & path_has_prefix(request.path, rule.path_prefix)
    if rule.host_hash >= 0:
        cond = cond & (request.host_hash == rule.host_hash)
    return cond


def http_allows(firewall: HttpFirewall, request: Zen, i: int = 0) -> Zen:
    """Whether the firewall admits a request (first match wins)."""
    if i >= len(firewall.rules):
        return constant(False, bool)  # implicit deny
    rule = firewall.rules[i]
    return if_(
        http_rule_matches(rule, request),
        constant(rule.action, bool),
        http_allows(firewall, request, i + 1),
    )


def url_forward(
    routes: Sequence[Tuple[str, int]], request: Zen, default: int = 0
) -> Zen:
    """URL-based forwarding: map path prefixes to backend ids."""
    result = constant(default, Byte)
    for prefix, backend in reversed(list(routes)):
        result = if_(
            path_has_prefix(request.path, prefix),
            constant(backend, Byte),
            result,
        )
    return result
