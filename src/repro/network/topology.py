"""Network topology assembly and concrete simulation.

A :class:`Network` wires devices and links together, and
:func:`simulate` performs Batfish-style concrete packet simulation by
repeatedly executing the (Zen) device models on concrete values —
possible because Zen models are executable (§4 "Simulation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import ZenFunction
from ..errors import ZenTypeError
from .acl import Acl
from .device import Device, Interface, effective_header, fwd_in, fwd_out
from .fib import NULL_PORT, FwdRule, FwdTable, forward
from .gre import GreTunnel
from .ip import Prefix
from .packet import Packet


class Network:
    """A collection of devices connected by point-to-point links."""

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}

    @property
    def devices(self) -> Dict[str, Device]:
        """Devices by name."""
        return dict(self._devices)

    def add_device(
        self,
        name: str,
        fib_rules: Iterable[Tuple[str, int]] = (),
    ) -> Device:
        """Add a device with (prefix string, port) forwarding rules."""
        if name in self._devices:
            raise ZenTypeError(f"duplicate device {name!r}")
        table = FwdTable.of(
            [FwdRule(Prefix.parse(p), port) for p, port in fib_rules]
        )
        device = Device(name=name, fib=table)
        self._devices[name] = device
        return device

    def add_interface(
        self,
        device: Device,
        port: int,
        acl_in: Optional[Acl] = None,
        acl_out: Optional[Acl] = None,
        gre_start: Optional[GreTunnel] = None,
        gre_end: Optional[GreTunnel] = None,
    ) -> Interface:
        """Add an interface to a device."""
        intf = Interface(
            id=port,
            device=device,
            acl_in=acl_in,
            acl_out=acl_out,
            gre_start=gre_start,
            gre_end=gre_end,
        )
        device.interfaces.append(intf)
        return intf

    def link(self, a: Interface, b: Interface) -> None:
        """Connect two interfaces with a bidirectional link."""
        if a.neighbor is not None or b.neighbor is not None:
            raise ZenTypeError("interface already linked")
        a.neighbor = b
        b.neighbor = a

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        return self._devices[name]

    def interfaces(self) -> List[Interface]:
        """All interfaces across all devices."""
        return [
            intf
            for device in self._devices.values()
            for intf in device.interfaces
        ]


@dataclass(frozen=True)
class Hop:
    """One step of a simulated packet trace."""

    interface_in: str
    interface_out: Optional[str]
    packet: Packet


@dataclass(frozen=True)
class Trace:
    """The result of simulating a packet through the network."""

    hops: Tuple[Hop, ...]
    outcome: str  # "delivered", "dropped_in", "dropped_out", "no_route",
    # "exited", or "loop"
    final_packet: Optional[Packet]


class _ModelCache:
    """Caches the per-interface Zen models built during simulation."""

    def __init__(self) -> None:
        self._in: Dict[int, ZenFunction] = {}
        self._out: Dict[int, ZenFunction] = {}
        self._fib: Dict[int, ZenFunction] = {}

    def in_model(self, intf: Interface) -> ZenFunction:
        key = id(intf)
        if key not in self._in:
            self._in[key] = ZenFunction(
                lambda p, i=intf: fwd_in(i, p), [Packet], name="fwd_in"
            )
        return self._in[key]

    def out_model(self, intf: Interface) -> ZenFunction:
        key = id(intf)
        if key not in self._out:
            self._out[key] = ZenFunction(
                lambda p, i=intf: fwd_out(i, p), [Packet], name="fwd_out"
            )
        return self._out[key]

    def fib_model(self, device: Device) -> ZenFunction:
        key = id(device)
        if key not in self._fib:
            self._fib[key] = ZenFunction(
                lambda p, d=device: forward(d.fib, effective_header(p)),
                [Packet],
                name="fib",
            )
        return self._fib[key]


def simulate(
    network: Network,
    entry: Interface,
    packet: Packet,
    max_hops: int = 32,
    _cache: Optional[_ModelCache] = None,
) -> Trace:
    """Concretely simulate a packet entering at an interface.

    At each device the packet passes inbound processing at the entry
    interface, the device picks an output port via its FIB, outbound
    processing runs at that port, and the packet crosses the link.
    The trace ends when the packet is dropped (inbound ACL, no route,
    or outbound ACL), leaves the network via an unlinked interface,
    or exceeds `max_hops` (reported as a loop).
    """
    cache = _cache if _cache is not None else _ModelCache()
    hops: List[Hop] = []
    current = packet
    intf = entry
    for _ in range(max_hops):
        after_in = cache.in_model(intf).evaluate(current)
        if after_in is None:
            hops.append(Hop(intf.name, None, current))
            return Trace(tuple(hops), "dropped_in", None)
        current = after_in
        port = cache.fib_model(intf.device).evaluate(current)
        if port == NULL_PORT:
            hops.append(Hop(intf.name, None, current))
            return Trace(tuple(hops), "no_route", None)
        try:
            out_intf = intf.device.interface(port)
        except KeyError:
            hops.append(Hop(intf.name, None, current))
            return Trace(tuple(hops), "no_route", None)
        after_out = cache.out_model(out_intf).evaluate(current)
        if after_out is None:
            hops.append(Hop(intf.name, out_intf.name, current))
            return Trace(tuple(hops), "dropped_out", None)
        hops.append(Hop(intf.name, out_intf.name, after_out))
        current = after_out
        if out_intf.neighbor is None:
            return Trace(tuple(hops), "exited", current)
        intf = out_intf.neighbor
    return Trace(tuple(hops), "loop", current)
