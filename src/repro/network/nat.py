"""Network address translation: stateless NAT rules as a Zen model.

The paper's introduction lists NAT among the "other types of packet
transformations" verification must cover.  This model implements
prefix-based source/destination NAT with port rewriting — a packet
*transformer* rather than a filter, composing with ACL and forwarding
models through plain function calls (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..lang import UInt, UShort, Zen, constant, if_
from .ip import Prefix
from .packet import Header


@dataclass(frozen=True)
class NatRule:
    """Rewrite addresses/ports for packets matching a prefix pair.

    ``translate_src``/``translate_dst`` give the new network address;
    the host bits of the original address are preserved (standard
    prefix-to-prefix NAT).  Optional port rewrites are absolute.
    """

    match_src: Prefix = Prefix(0, 0)
    match_dst: Prefix = Prefix(0, 0)
    translate_src: Optional[Prefix] = None
    translate_dst: Optional[Prefix] = None
    set_src_port: Optional[int] = None
    set_dst_port: Optional[int] = None


@dataclass(frozen=True)
class NatTable:
    """An ordered NAT rule list; first match is applied, others skipped."""

    name: str
    rules: Tuple[NatRule, ...]

    @classmethod
    def of(cls, name: str, rules: Sequence[NatRule]) -> "NatTable":
        return cls(name=name, rules=tuple(rules))


# --- the Zen model ----------------------------------------------------


def nat_rule_matches(rule: NatRule, h: Zen) -> Zen:
    """Whether a header matches a NAT rule's prefixes."""
    cond = (h.src_ip & rule.match_src.mask) == rule.match_src.address
    return cond & ((h.dst_ip & rule.match_dst.mask) == rule.match_dst.address)


def translate_address(prefix: Prefix, address: Zen) -> Zen:
    """Replace the network bits of `address` with `prefix`'s."""
    host_mask = prefix.mask ^ 0xFFFFFFFF
    return (address & host_mask) | prefix.address


def apply_nat_rule(rule: NatRule, h: Zen) -> Zen:
    """The rewritten header produced by one NAT rule."""
    result = h
    if rule.translate_src is not None:
        result = result.with_field(
            "src_ip", translate_address(rule.translate_src, result.src_ip)
        )
    if rule.translate_dst is not None:
        result = result.with_field(
            "dst_ip", translate_address(rule.translate_dst, result.dst_ip)
        )
    if rule.set_src_port is not None:
        result = result.with_field(
            "src_port", constant(rule.set_src_port, UShort)
        )
    if rule.set_dst_port is not None:
        result = result.with_field(
            "dst_port", constant(rule.set_dst_port, UShort)
        )
    return result


def apply_nat(table: NatTable, h: Zen, i: int = 0) -> Zen:
    """Process a header through the NAT table (first match applies)."""
    if i >= len(table.rules):
        return h  # no translation
    rule = table.rules[i]
    return if_(
        nat_rule_matches(rule, h),
        apply_nat_rule(rule, h),
        apply_nat(table, h, i + 1),
    )
