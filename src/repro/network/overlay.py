"""The virtualized network of Figure 3: overlay endpoints Va/Vb over
an underlay U1-U2-U3 with GRE tunneling.

The builder can optionally inject the cross-layer bug the paper
motivates compositional verification with: an underlay ACL that drops
some overlay (GRE) traffic.  Verifying the overlay and underlay in
isolation misses this bug; the composed model finds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .acl import DENY, PERMIT, Acl, AclRule
from .device import Interface
from .gre import GreTunnel
from .ip import Prefix, ip_to_int
from .packet import PROTO_GRE
from .topology import Network

VA_IP = ip_to_int("192.168.1.1")
VB_IP = ip_to_int("192.168.1.2")
U1_IP = ip_to_int("10.0.0.1")
U3_IP = ip_to_int("10.0.0.3")


@dataclass
class VirtualNetwork:
    """The assembled Figure-3 scenario with named entry points."""

    network: Network
    va_uplink: Interface  # where Va's packets enter U1
    vb_uplink: Interface  # where Vb's packets exit U3 (and enter reversed)
    path_va_to_vb: List[Interface]  # in/out alternating, for Fig. 7


def build_virtual_network(
    buggy_underlay_acl: bool = False,
    underlay_blocked_port: Optional[int] = None,
) -> VirtualNetwork:
    """Build the overlay/underlay network of Figure 3.

    With ``buggy_underlay_acl`` the middle underlay device U2 carries
    an ACL that drops GRE packets whose (copied) destination port is
    below 1024 — a plausible "block well-known ports" rule that was
    never meant to apply to tunneled overlay traffic.
    """
    net = Network()
    tunnel = GreTunnel(src_ip=U1_IP, dst_ip=U3_IP)

    # Underlay devices forward the tunnel endpoint addresses.
    u1 = net.add_device(
        "u1", [("10.0.0.3/32", 2), ("10.0.0.1/32", 1), ("192.168.1.0/24", 2)]
    )
    u2 = net.add_device("u2", [("10.0.0.3/32", 2), ("10.0.0.1/32", 1)])
    u3 = net.add_device(
        "u3", [("10.0.0.1/32", 1), ("192.168.1.0/24", 2), ("10.0.0.3/32", 2)]
    )

    blocked = underlay_blocked_port if underlay_blocked_port is not None else 1023
    u2_acl = None
    if buggy_underlay_acl:
        u2_acl = Acl.of(
            "u2-block-low-ports",
            [
                AclRule(
                    DENY,
                    dst=Prefix.parse("10.0.0.3/32"),
                    dst_ports=(0, blocked),
                    protocol=PROTO_GRE,
                ),
                AclRule(PERMIT),
            ],
        )

    # U1: port 1 faces Va, port 2 faces U2.  Encap towards the tunnel.
    u1_p1 = net.add_interface(u1, 1)
    u1_p2 = net.add_interface(u1, 2, gre_start=tunnel)
    # U2: port 1 faces U1, port 2 faces U3; the (optionally buggy) ACL
    # sits inbound on the U1-facing interface.
    u2_p1 = net.add_interface(u2, 1, acl_in=u2_acl)
    u2_p2 = net.add_interface(u2, 2)
    # U3: port 1 faces U2 (decap), port 2 faces Vb.
    u3_p1 = net.add_interface(u3, 1, gre_end=tunnel)
    u3_p2 = net.add_interface(u3, 2)

    net.link(u1_p2, u2_p1)
    net.link(u2_p2, u3_p1)

    # Packet path Va -> Vb (Figure 7 convention: in/out alternating).
    path = [u1_p1, u1_p2, u2_p1, u2_p2, u3_p1, u3_p2]
    return VirtualNetwork(
        network=net,
        va_uplink=u1_p1,
        vb_uplink=u3_p2,
        path_va_to_vb=path,
    )