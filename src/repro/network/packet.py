"""Packet and header models (Figure 4 of the paper).

A :class:`Header` is a five-tuple; a :class:`Packet` carries an
overlay header plus an optional underlay header added by tunnel
encapsulation (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import Byte, UInt, UShort, ZOption, register_object

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47


@register_object
@dataclass(frozen=True)
class Header:
    """An IP header five-tuple."""

    dst_ip: UInt
    src_ip: UInt
    dst_port: UShort
    src_port: UShort
    protocol: Byte


@register_object
@dataclass(frozen=True)
class Packet:
    """A packet with an overlay header and optional underlay header."""

    overlay_header: Header
    underlay_header: ZOption[Header]


def make_header(
    dst_ip: int = 0,
    src_ip: int = 0,
    dst_port: int = 0,
    src_port: int = 0,
    protocol: int = PROTO_TCP,
) -> Header:
    """Convenience constructor with sensible defaults."""
    return Header(
        dst_ip=dst_ip,
        src_ip=src_ip,
        dst_port=dst_port,
        src_port=src_port,
        protocol=protocol,
    )


def make_packet(overlay: Header, underlay: Header | None = None) -> Packet:
    """Convenience constructor for concrete packets."""
    return Packet(overlay_header=overlay, underlay_header=underlay)
