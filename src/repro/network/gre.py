"""IP GRE tunnels: the Zen model of Figure 5 (~21 lines in the paper).

``encap`` pushes an underlay header carrying the tunnel endpoints;
``decap`` strips it.  Both are identity when no tunnel is configured,
mirroring the paper's null checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang import Zen, create, none, some
from .packet import PROTO_GRE, Header, Packet


@dataclass(frozen=True)
class GreTunnel:
    """A GRE tunnel between two underlay endpoints."""

    src_ip: int
    dst_ip: int


def encap(tunnel: Optional[GreTunnel], pkt: Zen) -> Zen:
    """Encapsulate: add an underlay header for the tunnel (Figure 5)."""
    if tunnel is None:
        return pkt
    overlay = pkt.overlay_header
    underlay = create(
        Header,
        dst_ip=tunnel.dst_ip,
        src_ip=tunnel.src_ip,
        dst_port=overlay.dst_port,
        src_port=overlay.src_port,
        protocol=PROTO_GRE,
    )
    return create(
        Packet, overlay_header=overlay, underlay_header=some(underlay)
    )


def decap(tunnel: Optional[GreTunnel], pkt: Zen) -> Zen:
    """Decapsulate: strip the underlay header (Figure 5)."""
    if tunnel is None:
        return pkt
    return create(
        Packet,
        overlay_header=pkt.overlay_header,
        underlay_header=none(Header),
    )
