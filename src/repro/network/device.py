"""Device-level composition: inbound/outbound packet processing.

This is Figure 6 of the paper: composing the ACL, forwarding and
tunneling models is just writing new functions that call the earlier
models.  ``fwd_in`` applies inbound policy (ACL + decapsulation);
``fwd_out`` applies outbound policy (forwarding decision + ACL +
encapsulation).  ``forward_along_path`` chains them along a path
(Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..lang import Zen, constant, if_, none, some
from .acl import Acl, acl_allows
from .fib import FwdTable, forward
from .gre import GreTunnel, decap, encap
from .packet import Header, Packet


@dataclass
class Device:
    """A forwarding device with a FIB and a set of interfaces."""

    name: str
    fib: FwdTable
    interfaces: List["Interface"] = field(default_factory=list)

    def interface(self, port: int) -> "Interface":
        """Look up an interface by port number."""
        for intf in self.interfaces:
            if intf.id == port:
                return intf
        raise KeyError(f"{self.name} has no interface {port}")


@dataclass
class Interface:
    """A device interface with inbound/outbound policy."""

    id: int
    device: Device
    acl_in: Optional[Acl] = None
    acl_out: Optional[Acl] = None
    gre_start: Optional[GreTunnel] = None
    gre_end: Optional[GreTunnel] = None
    neighbor: Optional["Interface"] = None

    @property
    def name(self) -> str:
        """A readable identifier, e.g. ``u1:2``."""
        return f"{self.device.name}:{self.id}"


# --- the Zen models (Figure 6) -----------------------------------------


def effective_header(pkt: Zen) -> Zen:
    """The header devices act on: the underlay one when present."""
    underlay = pkt.underlay_header
    return if_(underlay.has_value(), underlay.value(), pkt.overlay_header)


def fwd_in(intf: Interface, pkt: Zen) -> Zen:
    """Inbound processing: ACL check then decapsulation (Fig. 6)."""
    header = effective_header(pkt)
    allow = (
        acl_allows(intf.acl_in, header)
        if intf.acl_in is not None
        else constant(True, bool)
    )
    decapped = decap(intf.gre_end, pkt)
    return if_(allow, some(decapped), none(Packet))


def fwd_out(intf: Interface, pkt: Zen) -> Zen:
    """Outbound processing: forwarding + ACL + encapsulation (Fig. 6)."""
    header = effective_header(pkt)
    port = forward(intf.device.fib, header)
    allow = (
        acl_allows(intf.acl_out, header)
        if intf.acl_out is not None
        else constant(True, bool)
    )
    encapped = encap(intf.gre_start, pkt)
    pkt_out = if_(allow, some(encapped), none(Packet))
    return if_(port == intf.id, pkt_out, none(Packet))


def forward_along_path(path: Sequence[Interface], pkt: Zen) -> Zen:
    """Forward a packet along alternating in/out interfaces (Fig. 7).

    `path` lists the traversed interfaces in order: the packet enters
    at ``path[0]``, leaves at ``path[1]``, enters at ``path[2]``, ...
    Returns ``Zen<Option<Packet>>`` — None if dropped anywhere.
    """
    x = some(pkt)
    for i in range(0, len(path) - 1, 2):
        intf_in = path[i]
        intf_out = path[i + 1]
        x = if_(x.has_value(), fwd_in(intf_in, x.value()), x)
        x = if_(x.has_value(), fwd_out(intf_out, x.value()), x)
    return x
