"""Vendor-style BGP route maps: the Zen model from Table 2 (~75 lines).

A route map is a prioritized list of clauses.  Each clause matches on
prefix lists, community membership and AS-path length, and either
denies the route or permits it after applying actions (set local-pref
/ MED, add a community, prepend to the AS path).  The model processes
a symbolic :class:`Route` whose community and AS-path lists are
bounded symbolic lists — the data structures the paper found the SMT
backend to handle better than BDDs (Figure 10, right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..lang import (
    Byte,
    UInt,
    UShort,
    Zen,
    ZList,
    constant,
    cons,
    create,
    if_,
    none,
    register_object,
    some,
)
from ..lang.listops import contains
from .ip import Prefix


@register_object
@dataclass(frozen=True)
class Route:
    """A BGP route advertisement."""

    prefix: UInt
    prefix_len: Byte
    local_pref: UInt
    med: UInt
    as_path: ZList[UShort]
    communities: ZList[UInt]


@dataclass(frozen=True)
class PrefixRange:
    """A prefix-list entry: prefix plus allowed length bounds (ge/le)."""

    prefix: Prefix
    ge: int = 0
    le: int = 32

    def __post_init__(self) -> None:
        if not 0 <= self.ge <= self.le <= 32:
            raise ValueError("prefix range bounds must satisfy 0<=ge<=le<=32")


@dataclass(frozen=True)
class RouteMapClause:
    """One route-map stanza: match conditions plus actions."""

    action: bool  # True = permit, False = deny
    match_prefixes: Tuple[PrefixRange, ...] = ()
    match_community: Optional[int] = None
    match_as_path_contains: Optional[int] = None
    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    add_community: Optional[int] = None
    prepend_as: Optional[int] = None


@dataclass(frozen=True)
class RouteMap:
    """A named, ordered list of clauses (implicit deny at the end)."""

    name: str
    clauses: Tuple[RouteMapClause, ...]

    @classmethod
    def of(cls, name: str, clauses: Sequence[RouteMapClause]) -> "RouteMap":
        return cls(name=name, clauses=tuple(clauses))


# --- the Zen model ----------------------------------------------------


def prefix_range_matches(entry: PrefixRange, route: Zen) -> Zen:
    """Whether a route's prefix falls within a prefix-list entry."""
    cond = (route.prefix & entry.prefix.mask) == entry.prefix.address
    cond = cond & (route.prefix_len >= max(entry.ge, entry.prefix.length))
    cond = cond & (route.prefix_len <= entry.le)
    return cond


def clause_matches(clause: RouteMapClause, route: Zen) -> Zen:
    """Whether a route matches all of a clause's conditions."""
    cond = constant(True, bool)
    if clause.match_prefixes:
        any_prefix = constant(False, bool)
        for entry in clause.match_prefixes:
            any_prefix = any_prefix | prefix_range_matches(entry, route)
        cond = cond & any_prefix
    if clause.match_community is not None:
        cond = cond & contains(route.communities, clause.match_community)
    if clause.match_as_path_contains is not None:
        cond = cond & contains(route.as_path, clause.match_as_path_contains)
    return cond


def apply_actions(clause: RouteMapClause, route: Zen) -> Zen:
    """Apply a permitting clause's set actions to the route."""
    result = route
    if clause.set_local_pref is not None:
        result = result.with_field("local_pref", clause.set_local_pref)
    if clause.set_med is not None:
        result = result.with_field("med", clause.set_med)
    if clause.add_community is not None:
        result = result.with_field(
            "communities",
            cons(
                constant(clause.add_community, UInt),
                result.communities,
            ),
        )
    if clause.prepend_as is not None:
        result = result.with_field(
            "as_path",
            cons(constant(clause.prepend_as, UShort), result.as_path),
        )
    return result


def apply_route_map(route_map: RouteMap, route: Zen, i: int = 0) -> Zen:
    """Process a route through the map; None when denied."""
    if i >= len(route_map.clauses):
        return none(Route)  # implicit deny
    clause = route_map.clauses[i]
    outcome = (
        some(apply_actions(clause, route))
        if clause.action
        else none(Route)
    )
    return if_(
        clause_matches(clause, route),
        outcome,
        apply_route_map(route_map, route, i + 1),
    )


def route_map_match_line(route_map: RouteMap, route: Zen, i: int = 0) -> Zen:
    """The 1-based clause number that matches, 0 if none (tracking)."""
    if i >= len(route_map.clauses):
        return constant(0, UShort)
    return if_(
        clause_matches(route_map.clauses[i], route),
        constant(i + 1, UShort),
        route_map_match_line(route_map, route, i + 1),
    )
