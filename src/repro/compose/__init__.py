"""Compositional sharding: assume-guarantee network verification.

Decomposes an end-to-end reachability/invariant query over an
N-device topology into independent per-shard interface summaries that
fan out across the :class:`~repro.service.QueryEngine` worker pool,
then recomposes them by chaining images along the topology and
discharging the interface assumptions — escalating to exact
re-summaries, and finally to the joint monolithic fixpoint, only when
the cheap decomposition cannot certify the verdict.

Public surface:

* :func:`run_composed` / :class:`ComposedResult` — the driver;
* :func:`plan_shards` / :class:`Plan` — the topology partitioner;
* :func:`compute_shard_summary` — the picklable worker entry
  (``repro.compose.shard:compute_shard_summary``);
* :func:`recompose` — the parent-side chaining fixpoint;
* :func:`monolithic_verdict` — the joint-query oracle/fallback;
* :func:`simulate` — the concrete single-header reference simulator.
"""

from .cubes import (
    Cover,
    cover_node,
    cover_predicate,
    header_matches,
    node_cover,
    prefix_cube,
    validate_cover,
)
from .driver import (
    SHARD_BUILDER,
    ComposedResult,
    run_composed,
)
from .monolith import MonolithResult, NetState, monolithic_verdict
from .plan import Plan, plan_shards, point_key
from .recompose import (
    CANARY_DROP_ASSUMPTION,
    RecomposeOutcome,
    recompose,
)
from .shard import compute_shard_summary
from .topo import (
    device_models,
    has_nat,
    link_map,
    simulate,
    validate_query,
    validate_topology,
)

__all__ = [
    "CANARY_DROP_ASSUMPTION",
    "ComposedResult",
    "Cover",
    "MonolithResult",
    "NetState",
    "Plan",
    "RecomposeOutcome",
    "SHARD_BUILDER",
    "compute_shard_summary",
    "cover_node",
    "cover_predicate",
    "device_models",
    "has_nat",
    "header_matches",
    "link_map",
    "monolithic_verdict",
    "node_cover",
    "plan_shards",
    "point_key",
    "prefix_cube",
    "recompose",
    "run_composed",
    "simulate",
    "validate_cover",
    "validate_query",
    "validate_topology",
]
