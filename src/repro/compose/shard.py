"""Shard workers: per-shard interface image summaries.

:func:`compute_shard_summary` is the compose fan-out's worker entry
point.  It is addressed by the service layer as the ``module:attr``
builder of a ``kind="call"`` :class:`~repro.service.QuerySpec`, takes
one plain-JSON shard task (from :func:`~repro.compose.plan.plan_shards`)
and returns a plain-JSON summary — nothing symbolic crosses the
process boundary.

For each (entry point, exit point) pair the worker computes the
*image*: the set of headers that can leave the shard at the exit given
that headers in the shard's interface assumption arrive at the entry.
Internally this is a small worklist fixpoint over the shard's own
devices and links (shards may contain internal loops), built from two
cached per-device sets:

* ``IN[d, p]``  — headers admitted by ``acl_in`` at port ``p``;
* ``PRE[d, q]`` — headers whose *post-NAT* rewrite is forwarded to
  port ``q`` and admitted by ``acl_out`` there.

A hop's image of a set ``S`` entering ``p`` and leaving ``q`` is then
``S ∩ IN[p] ∩ PRE[q]``, pushed through the device's NAT rewrite when
it has one.  Prefix NAT replaces network bits and keeps host bits, so
its exact image is existential quantification of the replaced bits
followed by pinning them — orders of magnitude cheaper than building
the rewrite's full transition relation
(:func:`~repro.core.forward_image` does that for arbitrary step
functions; the monolithic fallback still uses that general path).
Devices without NAT never rewrite, so their images are plain
intersections and the summary is marked ``filters_only`` — the
recomposer exploits that for exactness.

Image covers that exceed ``max_cubes`` are reported as ``None``
(unknown), never truncated: a partial cover would under-approximate
and could certify a bogus "unreachable".
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from ..core import ZenFunction, start_meter
from ..core.transformers import StateSet, TransformerContext
from ..core.budget import Budget
from ..lang import Zen, constant
from ..network import Header, NatRule, Prefix, acl_allows, apply_nat, forward
from ..telemetry.metrics import METRICS
from ..telemetry.spans import span
from .cubes import _OFFSETS, Cover, cover_node, node_cover, validate_cover
from .plan import pair_key, point_key
from .topo import DeviceModel, Point, device_model


def _budget_from_dict(data: Optional[Dict[str, Any]]) -> Optional[Budget]:
    if not data:
        return None
    allowed = ("deadline_s", "max_conflicts", "max_bdd_nodes", "max_models")
    return Budget(**{k: data[k] for k in allowed if data.get(k) is not None})


class _ShardModel:
    """Per-device Zen sets for one shard, cached by (device, port)."""

    def __init__(
        self, context: TransformerContext, header_type, levels, meter
    ) -> None:
        self.context = context
        self.header_type = header_type
        self.levels = levels
        self.meter = meter
        self._in: Dict[Point, StateSet] = {}
        self._pre: Dict[Point, StateSet] = {}
        self.set_ops = 0

    def admitted(self, model: DeviceModel, port: int) -> StateSet:
        key = (model.name, port)
        if key not in self._in:
            acl = model.acl_in.get(port)
            if acl is None:
                pred = ZenFunction(
                    lambda h: constant(True, bool), [Header], name="allow-all"
                )
            else:
                pred = ZenFunction(
                    lambda h, acl=acl: acl_allows(acl, h),
                    [Header],
                    name=f"in:{model.name}:{port}",
                )
            self._in[key] = self.context.from_predicate(pred, budget=self.meter)
        return self._in[key]

    def pre_exit(self, model: DeviceModel, port: int) -> StateSet:
        """Headers whose post-NAT form is forwarded to `port` and
        admitted by its egress ACL."""
        key = (model.name, port)
        if key not in self._pre:

            def pred_fn(h: Zen, model: DeviceModel = model, q: int = port) -> Zen:
                rewritten = apply_nat(model.nat, h) if model.nat else h
                cond = forward(model.fib, rewritten) == q
                acl = model.acl_out.get(q)
                if acl is not None:
                    cond = cond & acl_allows(acl, rewritten)
                return cond

            pred = ZenFunction(
                pred_fn, [Header], name=f"pre:{model.name}:{port}"
            )
            self._pre[key] = self.context.from_predicate(
                pred, budget=self.meter
            )
        return self._pre[key]

    def _prefix_literals(self, field: str, prefix: Prefix) -> Dict[int, bool]:
        offset = _OFFSETS[field]
        return {
            self.levels[offset + slot]: bool(
                prefix.address & (1 << (31 - slot))
            )
            for slot in range(prefix.length)
        }

    def _set_field(
        self, node: int, field: str, literals: Dict[int, bool]
    ) -> int:
        """Forget the given bits of a field, then pin them to `literals`."""
        manager = self.context.manager
        freed = manager.exists(node, literals.keys())
        return manager.and_(freed, manager.cube(literals))

    def _rule_image(self, node: int, rule: NatRule) -> int:
        """Exact image of one NAT rule's rewrite on a matched set.

        A prefix rewrite replaces the network bits and keeps host
        bits, so the image is existential quantification of the
        replaced bits followed by pinning them — no transition
        relation needed.
        """
        result = node
        if rule.translate_src is not None:
            result = self._set_field(
                result,
                "src_ip",
                self._prefix_literals("src_ip", rule.translate_src),
            )
        if rule.translate_dst is not None:
            result = self._set_field(
                result,
                "dst_ip",
                self._prefix_literals("dst_ip", rule.translate_dst),
            )
        for value, field, width in (
            (rule.set_src_port, "src_port", 16),
            (rule.set_dst_port, "dst_port", 16),
        ):
            if value is None:
                continue
            offset = _OFFSETS[field]
            literals = {
                self.levels[offset + slot]: bool(
                    value & (1 << (width - 1 - slot))
                )
                for slot in range(width)
            }
            result = self._set_field(result, field, literals)
        return result

    def nat_image(self, model: DeviceModel, node: int) -> int:
        """Exact image of a set under the device's NAT table."""
        manager = self.context.manager
        remaining = node
        image = 0
        for rule in model.nat.rules:
            match = manager.cube(
                {
                    **self._prefix_literals("src_ip", rule.match_src),
                    **self._prefix_literals("dst_ip", rule.match_dst),
                }
            )
            hit = manager.and_(remaining, match)
            remaining = manager.diff(remaining, match)
            if hit != 0:
                image = manager.or_(image, self._rule_image(hit, rule))
            if remaining == 0:
                break
        return manager.or_(image, remaining)  # unmatched pass unchanged

    def hop_image(
        self, model: DeviceModel, in_port: int, out_port: int, arriving: StateSet
    ) -> StateSet:
        """Image of `arriving` across one device hop (may rewrite)."""
        if self.meter is not None:
            self.meter.check_deadline()
        self.set_ops += 1
        passing = arriving.intersect(self.admitted(model, in_port)).intersect(
            self.pre_exit(model, out_port)
        )
        if model.nat is None or passing.node == 0:
            return passing
        METRICS.counter("compose.nat_images").inc()
        return StateSet(
            self.context,
            self.header_type,
            self.nat_image(model, passing.node),
        )


def compute_shard_summary(task: Dict[str, Any]) -> Dict[str, Any]:
    """Compute one shard's interface image summary (worker entry).

    `task` is a shard dict from :func:`~repro.compose.plan.plan_shards`,
    optionally with per-entry exact assumptions under
    ``entry_assumptions`` (escalation re-dispatch).  Returns a plain
    dict; see the module docstring for semantics.
    """
    started = time.monotonic()
    shard_id = task["shard_id"]
    models = {
        name: device_model(name, spec)
        for name, spec in task["devices"].items()
    }
    entries: List[Point] = [(d, int(p)) for d, p in task.get("entries", [])]
    exits = {(d, int(p)) for d, p in task.get("exits", [])}
    assumption: Cover = validate_cover(task.get("assumption"), "assumption")
    entry_assumptions = task.get("entry_assumptions") or {}
    for key, cover in entry_assumptions.items():
        validate_cover(cover, f"entry_assumptions[{key}]")
    max_cubes = int(task.get("max_cubes", 4096))
    meter = start_meter(_budget_from_dict(task.get("budget")))

    internal: Dict[Point, Point] = {}
    for dev_a, port_a, dev_b, port_b in task.get("links", []):
        internal[(dev_a, int(port_a))] = (dev_b, int(port_b))
        internal[(dev_b, int(port_b))] = (dev_a, int(port_a))

    context = TransformerContext()
    header_type = context.universe(Header).zen_type
    levels = context.space(header_type).levels
    manager = context.manager
    model = _ShardModel(context, header_type, levels, meter)
    filters_only = all(m.nat is None for m in models.values())

    def out_ports(name: str) -> List[int]:
        ports = {
            rule.port for rule in models[name].fib.rules if rule.port != 0
        }
        return sorted(ports)

    images: Dict[str, Optional[Cover]] = {}
    exact = True
    rounds = 0

    with span(
        "compose.shard", shard=shard_id, devices=len(models)
    ) as live:
        for entry in entries:
            seed_cover = entry_assumptions.get(point_key(entry), assumption)
            seed = StateSet(
                context, header_type, cover_node(manager, levels, seed_cover)
            )
            arriving: Dict[Point, StateSet] = {entry: seed}
            reached_exits: Dict[Point, StateSet] = {}
            worklist: List[Point] = [entry]
            while worklist:
                if meter is not None:
                    meter.check_deadline()
                rounds += 1
                device, port = worklist.pop()
                current = arriving[(device, port)]
                if current.node == 0:
                    continue
                for q in out_ports(device):
                    image = model.hop_image(models[device], port, q, current)
                    if image.node == 0:
                        continue
                    if (device, q) in exits:
                        prior = reached_exits.get((device, q))
                        reached_exits[(device, q)] = (
                            image if prior is None else prior.union(image)
                        )
                    neighbour = internal.get((device, q))
                    if neighbour is not None:
                        prior = arriving.get(neighbour)
                        grown = (
                            image if prior is None else prior.union(image)
                        )
                        if prior is None or not grown.equals(prior):
                            arriving[neighbour] = grown
                            if neighbour not in worklist:
                                worklist.append(neighbour)
            for exit_point, reached in reached_exits.items():
                cover = node_cover(manager, levels, reached.node, max_cubes)
                if cover is None:
                    exact = False
                images[pair_key(entry, exit_point)] = cover
        live.set("entries", len(entries))
        live.set("images", len(images))
        live.set("exact", exact)

    summary: Dict[str, Any] = {
        "shard_id": shard_id,
        "filters_only": filters_only,
        "exact": exact,
        "assumption": assumption,
        "images": images,
        "stats": {
            "devices": len(models),
            "entries": len(entries),
            "exits": len(exits),
            "set_ops": model.set_ops,
            "fixpoint_pops": rounds,
            "elapsed_ms": (time.monotonic() - started) * 1000.0,
        },
    }
    if entry_assumptions:
        summary["entry_assumptions"] = dict(entry_assumptions)
        summary["assumption_exact"] = True
    return summary
