"""The monolithic joint query: one fixpoint over the whole network.

This is both the escalation fallback and the differential oracle for
the compositional path.  The network is modelled as a single Zen state
machine over :class:`NetState` — (device, port, alive, header) — whose
step function implements exactly the hop pipeline documented in
:mod:`repro.compose.topo`, and reachability is decided by the core
model checker's *backward* fixpoint from the delivered-set: a packet
can reach the sink iff the initial set meets the pre-image closure of
the target, and any element of that intersection is a concrete
*initial* witness header (forward reachability would only produce the
post-NAT header at delivery).

Delivery is an absorbing sentinel device index (one past the real
devices), which bounds monolithic topologies at
:data:`~repro.compose.topo.MAX_MONOLITH_DEVICES` devices.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core import ZenFunction, backward_reachable, start_meter
from ..core.budget import Budget, BudgetMeter
from ..core.transformers import TransformerContext
from ..lang import Byte, Zen, constant, create, if_, register_object
from ..network import Header, acl_allows, apply_nat, forward
from ..telemetry.spans import span
from .cubes import cover_predicate
from .topo import (
    MAX_MONOLITH_DEVICES,
    DeviceModel,
    device_models,
    link_map,
    validate_query,
    validate_topology,
)


@register_object
@dataclass(frozen=True)
class NetState:
    """A packet's position in the network product machine.

    Field order is load-bearing for the transformer's variable
    ordering: the header (which every hop *condition* reads) must sit
    above the device/port/alive control bits (which hop conditions
    *decide*), otherwise each control cofactor is dragged through a
    hundred header-identity levels and the transition relation blows
    up by three orders of magnitude.
    """

    hdr: Header
    device: Byte
    port: Byte
    alive: bool


@dataclass(frozen=True)
class MonolithResult:
    """Verdict of the joint backward fixpoint."""

    reachable: bool
    witness: Optional[Dict[str, int]]  # initial header at the source
    iterations: int
    converged: bool


def _device_hop(
    s: Zen,
    model: DeviceModel,
    links: Dict[Tuple[str, int], Tuple[str, int]],
    index_of: Dict[str, int],
    sink: Tuple[str, int],
) -> Zen:
    """Successor state for a live packet sitting at this device."""
    dead = s.with_field("alive", constant(False, bool))
    h = s.hdr
    admitted = constant(True, bool)
    for port, acl in sorted(model.acl_in.items()):
        admitted = if_(s.port == port, acl_allows(acl, h), admitted)
    h1 = apply_nat(model.nat, h) if model.nat else h
    q = forward(model.fib, h1)
    result = dead  # null port / port absent from the FIB: dropped
    out_ports = sorted(
        {rule.port for rule in model.fib.rules if rule.port != 0}
    )
    delivered_index = len(index_of)
    for out_port in out_ports:
        permitted = constant(True, bool)
        acl = model.acl_out.get(out_port)
        if acl is not None:
            permitted = acl_allows(acl, h1)
        neighbour = links.get((model.name, out_port))
        if neighbour is not None:
            landing = create(
                NetState,
                device=constant(index_of[neighbour[0]], Byte),
                port=constant(neighbour[1], Byte),
                alive=constant(True, bool),
                hdr=h1,
            )
        elif (model.name, out_port) == sink:
            landing = create(
                NetState,
                device=constant(delivered_index, Byte),
                port=constant(0, Byte),
                alive=constant(True, bool),
                hdr=h1,
            )
        else:
            landing = dead  # unlinked, non-sink port
        result = if_(q == out_port, if_(permitted, landing, dead), result)
    return if_(admitted, result, dead)


def _normalize_budget(budget: Any) -> Optional[BudgetMeter]:
    """Accept None, a plain dict of Budget fields, a Budget, or a
    running meter — compose callers thread budgets as plain JSON."""
    if isinstance(budget, dict):
        allowed = ("deadline_s", "max_conflicts", "max_bdd_nodes", "max_models")
        budget = Budget(
            **{k: budget[k] for k in allowed if budget.get(k) is not None}
        )
    return start_meter(budget)


def monolithic_verdict(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    budget=None,
    max_iterations: int = 10_000,
) -> MonolithResult:
    """Decide the query with one joint fixpoint over the product machine."""
    budget = _normalize_budget(budget)
    validate_topology(topo)
    validate_query(topo, query)
    models = device_models(topo)
    names = sorted(models)
    if len(names) >= MAX_MONOLITH_DEVICES:
        raise ValueError(
            f"monolithic model supports at most {MAX_MONOLITH_DEVICES} "
            f"devices, got {len(names)}"
        )
    index_of = {name: i for i, name in enumerate(names)}
    delivered_index = len(names)
    links = link_map(topo)
    sink = (query["sink"][0], int(query["sink"][1]))
    source = (query["source"][0], int(query["source"][1]))

    def step_fn(s: Zen) -> Zen:
        result = s  # dead and delivered states absorb
        for name in names:
            hop = _device_hop(s, models[name], links, index_of, sink)
            result = if_((s.device == index_of[name]) & s.alive, hop, result)
        return result

    def initial_fn(s: Zen) -> Zen:
        return (
            (s.device == index_of[source[0]])
            & (s.port == source[1])
            & s.alive
            & cover_predicate(s.hdr, query.get("headers"))
        )

    def target_fn(s: Zen) -> Zen:
        return (
            (s.device == delivered_index)
            & s.alive
            & cover_predicate(s.hdr, query.get("target"))
        )

    # Deep if_ chains over 100+ devices stress the recursive symbolic
    # evaluator; give it headroom rather than fail mid-query.
    depth_floor = 50_000 + 400 * len(names)
    if sys.getrecursionlimit() < depth_floor:
        sys.setrecursionlimit(depth_floor)

    with span("compose.monolith", devices=len(names)) as live:
        context = TransformerContext()
        step = ZenFunction(step_fn, [NetState], name="net-step")
        initial = context.from_predicate(
            ZenFunction(initial_fn, [NetState], name="net-initial"),
            budget=budget,
        )
        bad = context.from_predicate(
            ZenFunction(target_fn, [NetState], name="net-delivered"),
            budget=budget,
        )
        report = backward_reachable(
            step,
            bad,
            context=context,
            max_iterations=max_iterations,
            budget=budget,
        )
        hit = report.reachable.intersect(initial)
        state = hit.element()
        live.set("iterations", report.iterations)
        live.set("reachable", state is not None)

    witness = None
    if state is not None:
        hdr = state.hdr if dataclasses.is_dataclass(state) else state["hdr"]
        witness = {
            f.name: getattr(hdr, f.name)
            for f in dataclasses.fields(Header)
        } if dataclasses.is_dataclass(hdr) else dict(hdr)
    return MonolithResult(
        reachable=state is not None,
        witness=witness,
        iterations=report.iterations,
        converged=report.converged,
    )
