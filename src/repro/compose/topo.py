"""Topology payloads: validation, model building, concrete simulation.

A compose topology is plain JSON so it can cross process boundaries
inside a :class:`~repro.service.QuerySpec` payload::

    {"devices": {name: {"fib": [[[addr, len], port], ...],
                        "acl_in": {"<port>": [rule, ...]},
                        "acl_out": {"<port>": [rule, ...]},
                        "nat": [rule, ...]}},          # optional
     "links": [[dev_a, port_a, dev_b, port_b], ...],
     "groups": {group_name: [device, ...]}}            # optional

ACL and NAT rules use the same JSON shape as the fuzz farm's scenario
codecs (the converters here are deliberately standalone so compose
never imports from :mod:`repro.fuzz` — the fuzz oracle imports compose,
not the other way round).

Every implementation of the hop semantics — the per-shard Zen model,
the monolithic product machine, and the concrete simulator below —
agrees on one pipeline for a packet entering device ``d`` at port
``p`` with header ``h``:

1. ``acl_in[p]`` filters ``h`` (absent ACL admits everything);
2. the device's NAT table rewrites ``h`` to ``h'``;
3. ``q = lpm(fib, h'.dst_ip)``; the null port 0 drops;
4. ``acl_out[q]`` filters ``h'``;
5. the packet exits at ``q``: a linked port hands it to the neighbour,
   the query's sink point delivers it, any other port drops it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network import (
    Acl,
    AclRule,
    FwdRule,
    FwdTable,
    NatRule,
    NatTable,
    Prefix,
)
from .cubes import validate_cover

Point = Tuple[str, int]

MAX_MONOLITH_DEVICES = 254  # device index must fit a Byte with sentinel


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def validate_topology(topo: Any) -> Dict[str, Any]:
    """Shape-check a topology payload; returns it for chaining."""
    _require(isinstance(topo, dict), "topology must be a dict")
    devices = topo.get("devices")
    _require(isinstance(devices, dict) and devices, "topology needs devices")
    for name, spec in devices.items():
        _require(
            isinstance(name, str) and name and ":" not in name and "|" not in name,
            f"device name {name!r} must be non-empty without ':' or '|'",
        )
        _require(isinstance(spec, dict), f"device {name!r} must be a dict")
        fib = spec.get("fib", [])
        _require(isinstance(fib, list), f"device {name!r} fib must be a list")
        for entry in fib:
            _require(
                isinstance(entry, (list, tuple))
                and len(entry) == 2
                and isinstance(entry[1], int),
                f"device {name!r} fib entries must be [[addr, len], port]",
            )
        for side in ("acl_in", "acl_out"):
            acls = spec.get(side, {})
            _require(
                isinstance(acls, dict),
                f"device {name!r} {side} must map port -> rules",
            )
            for port, rules in acls.items():
                _require(
                    str(port).isdigit() and isinstance(rules, list),
                    f"device {name!r} {side}[{port!r}] malformed",
                )
        nat = spec.get("nat")
        _require(
            nat is None or isinstance(nat, list),
            f"device {name!r} nat must be a rule list",
        )
    links = topo.get("links", [])
    _require(isinstance(links, list), "links must be a list")
    seen_ends: Dict[Point, List[Any]] = {}
    for link in links:
        _require(
            isinstance(link, (list, tuple)) and len(link) == 4,
            "links must be [dev_a, port_a, dev_b, port_b]",
        )
        dev_a, port_a, dev_b, port_b = link
        for dev, port in ((dev_a, port_a), (dev_b, port_b)):
            _require(dev in devices, f"link references unknown device {dev!r}")
            _require(
                isinstance(port, int) and port > 0,
                f"link port {port!r} on {dev!r} must be a positive int",
            )
            _require(
                (dev, port) not in seen_ends,
                f"port {port} on {dev!r} appears in two links",
            )
            seen_ends[(dev, port)] = link
    groups = topo.get("groups", {})
    _require(isinstance(groups, dict), "groups must be a dict")
    for gname, members in groups.items():
        _require(
            isinstance(members, list)
            and all(m in devices for m in members),
            f"group {gname!r} lists unknown devices",
        )
    return topo


def validate_query(topo: Dict[str, Any], query: Any) -> Dict[str, Any]:
    """Shape-check a query payload against its topology."""
    _require(isinstance(query, dict), "query must be a dict")
    mode = query.get("mode", "reach")
    _require(mode in ("reach", "invariant"), f"unknown query mode {mode!r}")
    devices = topo["devices"]
    for key in ("source", "sink"):
        point = query.get(key)
        _require(
            isinstance(point, (list, tuple))
            and len(point) == 2
            and point[0] in devices
            and isinstance(point[1], int)
            and point[1] > 0,
            f"query {key} must be [known_device, positive_port]",
        )
    validate_cover(query.get("headers"), "query headers")
    validate_cover(query.get("target"), "query target")
    return query


# ----------------------------------------------------------------------
# JSON -> network models (standalone; keep fuzz out of the import graph)
# ----------------------------------------------------------------------


def _prefix(data: Sequence[int]) -> Prefix:
    return Prefix(int(data[0]), int(data[1]))


def _ports(data: Optional[Sequence[int]]) -> Optional[Tuple[int, int]]:
    return None if data is None else (int(data[0]), int(data[1]))


def acl_from_json(rules: Sequence[Dict[str, Any]], name: str) -> Acl:
    return Acl.of(
        name,
        [
            AclRule(
                action=bool(rule["action"]),
                src=_prefix(rule.get("src", [0, 0])),
                dst=_prefix(rule.get("dst", [0, 0])),
                src_ports=_ports(rule.get("src_ports")),
                dst_ports=_ports(rule.get("dst_ports")),
                protocol=rule.get("protocol"),
            )
            for rule in rules
        ],
    )


def nat_from_json(rules: Sequence[Dict[str, Any]], name: str) -> NatTable:
    return NatTable.of(
        name,
        [
            NatRule(
                match_src=_prefix(rule.get("match_src", [0, 0])),
                match_dst=_prefix(rule.get("match_dst", [0, 0])),
                translate_src=(
                    None
                    if rule.get("translate_src") is None
                    else _prefix(rule["translate_src"])
                ),
                translate_dst=(
                    None
                    if rule.get("translate_dst") is None
                    else _prefix(rule["translate_dst"])
                ),
                set_src_port=rule.get("set_src_port"),
                set_dst_port=rule.get("set_dst_port"),
            )
            for rule in rules
        ],
    )


def fib_from_json(entries: Sequence[Sequence[Any]]) -> FwdTable:
    return FwdTable.of(
        [FwdRule(prefix=_prefix(pfx), port=int(port)) for pfx, port in entries]
    )


@dataclass(frozen=True)
class DeviceModel:
    """A device's JSON spec lifted into the network model types."""

    name: str
    fib: FwdTable
    acl_in: Dict[int, Acl] = field(default_factory=dict)
    acl_out: Dict[int, Acl] = field(default_factory=dict)
    nat: Optional[NatTable] = None


def device_model(name: str, spec: Dict[str, Any]) -> DeviceModel:
    return DeviceModel(
        name=name,
        fib=fib_from_json(spec.get("fib", [])),
        acl_in={
            int(port): acl_from_json(rules, f"{name}:in:{port}")
            for port, rules in spec.get("acl_in", {}).items()
        },
        acl_out={
            int(port): acl_from_json(rules, f"{name}:out:{port}")
            for port, rules in spec.get("acl_out", {}).items()
        },
        nat=(
            None
            if not spec.get("nat")
            else nat_from_json(spec["nat"], f"{name}:nat")
        ),
    )


def device_models(topo: Dict[str, Any]) -> Dict[str, DeviceModel]:
    return {
        name: device_model(name, spec)
        for name, spec in topo["devices"].items()
    }


def link_map(topo: Dict[str, Any]) -> Dict[Point, Point]:
    """Bidirectional (device, port) -> (device, port) adjacency."""
    links: Dict[Point, Point] = {}
    for dev_a, port_a, dev_b, port_b in topo.get("links", []):
        links[(dev_a, int(port_a))] = (dev_b, int(port_b))
        links[(dev_b, int(port_b))] = (dev_a, int(port_a))
    return links


def has_nat(topo: Dict[str, Any]) -> bool:
    """Whether any device rewrites headers (affects compose exactness)."""
    return any(spec.get("nat") for spec in topo["devices"].values())


# ----------------------------------------------------------------------
# Concrete simulation (plain Python; the witness-replay ground truth)
# ----------------------------------------------------------------------


def _prefix_matches(pfx: Sequence[int], value: int, width: int = 32) -> bool:
    address, length = int(pfx[0]), int(pfx[1])
    mask = ((1 << length) - 1) << (width - length) if length else 0
    return (value & mask) == (address & mask)


def _acl_rule_matches(rule: Dict[str, Any], h: Dict[str, int]) -> bool:
    if not _prefix_matches(rule.get("src", [0, 0]), h["src_ip"]):
        return False
    if not _prefix_matches(rule.get("dst", [0, 0]), h["dst_ip"]):
        return False
    for key, fld in (("src_ports", "src_port"), ("dst_ports", "dst_port")):
        ports = rule.get(key)
        if ports is not None and not ports[0] <= h[fld] <= ports[1]:
            return False
    protocol = rule.get("protocol")
    if protocol is not None and h["protocol"] != protocol:
        return False
    return True


def acl_allows_concrete(
    rules: Optional[Sequence[Dict[str, Any]]], h: Dict[str, int]
) -> bool:
    if rules is None:
        return True  # no ACL on this port
    for rule in rules:
        if _acl_rule_matches(rule, h):
            return bool(rule["action"])
    return False  # implicit deny


def _translate(pfx: Sequence[int], value: int) -> int:
    address, length = int(pfx[0]), int(pfx[1])
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return (value & (mask ^ 0xFFFFFFFF)) | (address & mask)


def apply_nat_concrete(
    rules: Optional[Sequence[Dict[str, Any]]], h: Dict[str, int]
) -> Dict[str, int]:
    if not rules:
        return h
    for rule in rules:
        if _prefix_matches(
            rule.get("match_src", [0, 0]), h["src_ip"]
        ) and _prefix_matches(rule.get("match_dst", [0, 0]), h["dst_ip"]):
            out = dict(h)
            if rule.get("translate_src") is not None:
                out["src_ip"] = _translate(rule["translate_src"], h["src_ip"])
            if rule.get("translate_dst") is not None:
                out["dst_ip"] = _translate(rule["translate_dst"], h["dst_ip"])
            if rule.get("set_src_port") is not None:
                out["src_port"] = int(rule["set_src_port"])
            if rule.get("set_dst_port") is not None:
                out["dst_port"] = int(rule["set_dst_port"])
            return out
    return h


def lpm_concrete(fib: Sequence[Sequence[Any]], dst_ip: int) -> int:
    best_port, best_len = 0, -1
    for pfx, port in fib:
        if _prefix_matches(pfx, dst_ip) and int(pfx[1]) > best_len:
            best_port, best_len = int(port), int(pfx[1])
    return best_port


def simulate(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    header: Dict[str, int],
    max_hops: Optional[int] = None,
) -> Dict[str, Any]:
    """Trace one concrete header through the topology.

    Returns ``{"outcome", "delivered", "path", "header"}`` where
    outcome is one of ``delivered``, ``filtered_in``, ``filtered_out``,
    ``no_route``, ``exited``, or ``looped``; path lists the
    ``[device, in_port]`` hops taken and header is the final
    (possibly NAT-rewritten) five-tuple.
    """
    devices = topo["devices"]
    links = link_map(topo)
    sink = tuple(query["sink"])
    device, port = query["source"]
    h = dict(header)
    path: List[List[Any]] = []
    seen = set()
    limit = max_hops if max_hops is not None else 4 * len(devices) + 8

    def result(outcome: str) -> Dict[str, Any]:
        return {
            "outcome": outcome,
            "delivered": outcome == "delivered",
            "path": path,
            "header": h,
        }

    for _ in range(limit):
        state = (device, port, tuple(sorted(h.items())))
        if state in seen:
            return result("looped")
        seen.add(state)
        path.append([device, port])
        spec = devices[device]
        if not acl_allows_concrete(spec.get("acl_in", {}).get(str(port)), h):
            return result("filtered_in")
        h = apply_nat_concrete(spec.get("nat"), h)
        out_port = lpm_concrete(spec.get("fib", []), h["dst_ip"])
        if out_port == 0:
            return result("no_route")
        if not acl_allows_concrete(
            spec.get("acl_out", {}).get(str(out_port)), h
        ):
            return result("filtered_out")
        neighbour = links.get((device, out_port))
        if neighbour is not None:
            device, port = neighbour
            continue
        if (device, out_port) == sink:
            return result("delivered")
        return result("exited")
    return result("looped")
