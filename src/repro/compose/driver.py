"""The compose driver: plan, fan out, recompose, escalate.

:func:`run_composed` is the public entry point of the compositional
sharding subsystem.  It decomposes one end-to-end reachability or
invariant query into per-layer shard summaries
(:mod:`~repro.compose.plan`), evaluates them either in-process or
fanned out across the :class:`~repro.service.QueryEngine` worker pool
as independent ``kind="call"`` specs, then chains the summaries back
together (:mod:`~repro.compose.recompose`).

The escalation ladder, cheapest first:

1. recompose with the planner's interface assumptions;
2. if a shard's assumption failed to discharge, or a rewriting shard's
   over-approximation taints a "reachable" verdict, re-dispatch just
   those shards with *exact* per-entry assumptions taken from the
   converged arriving sets, and recompose again (bounded rounds);
3. fall back to the joint monolithic fixpoint
   (:mod:`~repro.compose.monolith`) when summaries overflowed, rounds
   ran out, or a compositional witness fails concrete replay.

A shard whose dispatch fails terminally raises
:class:`~repro.errors.ZenComposeError` — a missing interface image is
a structural failure, never silently skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ZenComposeError, ZenServiceError
from ..service.spec import QuerySpec
from ..telemetry.metrics import METRICS
from ..telemetry.spans import span
from .cubes import assignment_header, Cover
from .monolith import monolithic_verdict
from .plan import Plan, plan_shards, point_key
from .recompose import CANARY_DROP_ASSUMPTION, RecomposeOutcome, recompose
from .shard import compute_shard_summary
from .topo import has_nat, simulate

#: module:attr builder reference resolved inside service workers.
SHARD_BUILDER = "repro.compose.shard:compute_shard_summary"

DEFAULT_MAX_ESCALATIONS = 3


@dataclass
class ComposedResult:
    """The composed verdict plus its decomposition record."""

    mode: str
    reachable: bool
    witness: Optional[Dict[str, int]]
    shard_count: int
    escalations: int
    monolith_fallback: bool
    exact: bool
    recompose_ms: float
    total_ms: float
    dropped_devices: List[str] = field(default_factory=list)
    summaries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        """Invariant reading: no injected header is delivered on target."""
        return not self.reachable


def _dispatch(
    tasks: List[Dict[str, Any]],
    engine,
    timeout_s: Optional[float],
) -> List[Dict[str, Any]]:
    """Evaluate shard tasks in-process or across the worker pool."""
    if engine is None:
        return [compute_shard_summary(task) for task in tasks]
    futures = []
    for task in tasks:
        spec = QuerySpec(
            builder=SHARD_BUILDER,
            kind="call",
            builder_args=(task,),
            label=f"compose:{task['shard_id']}",
            timeout_s=timeout_s,
        )
        futures.append(engine.submit(spec, wait=True))
    results = engine.gather(futures)
    METRICS.counter("compose.shards_dispatched").inc(len(tasks))
    summaries = []
    for task, result in zip(tasks, results):
        if isinstance(result, ZenServiceError):
            METRICS.counter("compose.shard_failures").inc()
            raise ZenComposeError(
                f"shard {task['shard_id']!r} failed terminally: {result}",
                shard_id=task["shard_id"],
                causes=[result],
            )
        summaries.append(result.answer)
    return summaries


def _witness_from_hit(outcome: RecomposeOutcome) -> Optional[Dict[str, int]]:
    from ..network import Header

    manager = outcome.context.manager
    assignment = manager.any_sat(outcome.hit_node)
    if assignment is None:
        return None
    levels = outcome.context.space(
        outcome.context.universe(Header).zen_type
    ).levels
    return assignment_header(assignment, levels)


def _fallback(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    budget,
    reason: str,
):
    METRICS.counter("compose.monolith_fallbacks").inc()
    METRICS.counter(f"compose.fallback.{reason}").inc()
    return monolithic_verdict(topo, query, budget=budget)


def run_composed(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    engine=None,
    *,
    budget: Optional[Dict[str, Any]] = None,
    max_cubes: int = 4096,
    max_escalations: int = DEFAULT_MAX_ESCALATIONS,
    timeout_s: Optional[float] = None,
    bug: Optional[str] = None,
) -> ComposedResult:
    """Answer a topology query by assume-guarantee decomposition.

    `topo` and `query` are the plain-JSON payloads documented in
    :mod:`~repro.compose.topo`.  With an `engine`, shard summaries fan
    out across the worker pool; without one they run in-process.
    `budget` is a plain dict of :class:`~repro.core.Budget` fields
    threaded into every shard and the fallback.  `bug` injects a known
    recomposer bug (fuzz-farm canary) — never set it outside tests.
    """
    started = time.monotonic()
    canary = bug == CANARY_DROP_ASSUMPTION
    METRICS.counter("compose.queries").inc()
    with span("compose.query", mode=query.get("mode", "reach")) as live:
        plan = plan_shards(topo, query, max_cubes=max_cubes, budget=budget)
        live.set("shards", len(plan.shards))
        summaries = {
            s["shard_id"]: s
            for s in _dispatch(plan.shards, engine, timeout_s)
        }

        escalations = 0
        recompose_s = 0.0
        while True:
            recompose_started = time.monotonic()
            outcome = recompose(plan, summaries, bug=bug)
            recompose_s += time.monotonic() - recompose_started
            if canary or outcome.overflow or outcome.trusted:
                break
            if escalations >= max_escalations:
                break
            # Escalate: re-summarise the problem shards under exact
            # per-entry assumptions from the converged arriving sets.
            needs = set(outcome.assumption_failures)
            if outcome.hit_node != 0:
                needs |= outcome.tainted_shards
            if not needs:
                break
            escalations += 1
            METRICS.counter("compose.escalations").inc()
            retasks = []
            overflowed = False
            for sid in sorted(needs):
                task = dict(plan.shard(sid))
                exact_entries: Dict[str, Cover] = {}
                for device, port in task["entries"]:
                    key = point_key((device, int(port)))
                    cover = outcome.arriving_cover(key, max_cubes)
                    if cover is None:
                        overflowed = True
                        break
                    exact_entries[key] = cover
                if overflowed:
                    break
                task["entry_assumptions"] = exact_entries
                retasks.append(task)
            if overflowed:
                outcome.overflow = True
                break
            for summary in _dispatch(retasks, engine, timeout_s):
                summaries[summary["shard_id"]] = summary

        def finish(
            reachable: bool,
            witness: Optional[Dict[str, int]],
            monolith_fallback: bool,
            exact: bool,
        ) -> ComposedResult:
            live.set("reachable", reachable)
            live.set("escalations", escalations)
            live.set("monolith_fallback", monolith_fallback)
            return ComposedResult(
                mode=plan.mode,
                reachable=reachable,
                witness=witness,
                shard_count=len(plan.shards),
                escalations=escalations,
                monolith_fallback=monolith_fallback,
                exact=exact,
                recompose_ms=recompose_s * 1000.0,
                total_ms=(time.monotonic() - started) * 1000.0,
                dropped_devices=plan.dropped_devices,
                summaries=summaries,
            )

        if canary:
            # Buggy path under test: trust the fixpoint blindly.
            return finish(outcome.hit_node != 0, None, False, False)

        if outcome.overflow or not outcome.trusted:
            reason = "overflow" if outcome.overflow else "escalation_exhausted"
            mono = _fallback(topo, query, budget, reason)
            return finish(mono.reachable, mono.witness, True, True)

        if outcome.hit_node == 0:
            return finish(False, None, False, not outcome.tainted_shards)

        # Reachable and trusted.  For rewrite-free topologies the
        # delivered header *is* the injected header, so replay it
        # through the concrete simulator as a final cross-check.
        if not has_nat(topo):
            witness = _witness_from_hit(outcome)
            replay = simulate(topo, query, witness)
            if replay["delivered"]:
                return finish(True, witness, False, True)
            METRICS.counter("compose.replay_mismatches").inc()
            mono = _fallback(topo, query, budget, "replay_mismatch")
            return finish(mono.reachable, mono.witness, True, True)
        # Rewriting topology: the verdict is exact (escalation proved
        # it) but the delivered header is post-NAT; no initial-header
        # witness without the joint machine.
        return finish(True, None, False, True)
