"""Shard planning: partition a topology into assume-guarantee shards.

The planner layers the topology by BFS distance from the query source
and makes each layer one shard.  Every link whose endpoints fall in
different shards becomes a *boundary*: the exit point on one side and
the entry point on the other are where interface assumptions are
stated and discharged.  Devices unreachable from the source over links
can never carry the query's packets and are dropped from the plan
(recorded, not silent).

Assumption policy
-----------------
When no device in the topology rewrites headers, every header anywhere
in the network is one of the originally injected headers, so the
query's ``headers`` cover is a valid interface assumption for *every*
shard — workers then restrict their pass-set computation to it, which
keeps the per-shard BDDs small.  With NAT present the planner makes no
interface assumption (universe): the first recompose pass
over-approximates and the driver escalates only the shards whose
interfaces actually matter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .cubes import Cover
from .topo import Point, has_nat, validate_query, validate_topology

DEFAULT_MAX_CUBES = 4096


def point_key(point: Point) -> str:
    return f"{point[0]}:{point[1]}"


def pair_key(entry: Point, exit_: Point) -> str:
    return f"{point_key(entry)}|{point_key(exit_)}"


def parse_point(key: str) -> Point:
    device, _, port = key.rpartition(":")
    return (device, int(port))


@dataclass
class Plan:
    """A sharded decomposition of one topology query."""

    shards: List[Dict[str, Any]]
    boundary: Dict[str, str]  # exit point key -> entry point key
    shard_of: Dict[str, str]  # device -> shard id
    source: Point
    sink: Point
    mode: str
    headers: Cover
    target: Cover
    dropped_devices: List[str] = field(default_factory=list)

    def shard(self, shard_id: str) -> Dict[str, Any]:
        for task in self.shards:
            if task["shard_id"] == shard_id:
                return task
        raise KeyError(shard_id)


def _bfs_layers(
    devices: Dict[str, Any], links: List[Any], source_device: str
) -> List[List[str]]:
    adjacency: Dict[str, Set[str]] = {name: set() for name in devices}
    for dev_a, _pa, dev_b, _pb in links:
        adjacency[dev_a].add(dev_b)
        adjacency[dev_b].add(dev_a)
    depth = {source_device: 0}
    queue = deque([source_device])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(adjacency[current]):
            if neighbour not in depth:
                depth[neighbour] = depth[current] + 1
                queue.append(neighbour)
    layers: List[List[str]] = []
    for name in sorted(depth, key=lambda n: (depth[n], n)):
        while len(layers) <= depth[name]:
            layers.append([])
        layers[depth[name]].append(name)
    return layers


def plan_shards(
    topo: Dict[str, Any],
    query: Dict[str, Any],
    max_cubes: int = DEFAULT_MAX_CUBES,
    budget: Optional[Dict[str, Any]] = None,
) -> Plan:
    """Decompose `query` over `topo` into per-layer shard tasks."""
    validate_topology(topo)
    validate_query(topo, query)
    devices = topo["devices"]
    links = topo.get("links", [])
    source: Point = (query["source"][0], int(query["source"][1]))
    sink: Point = (query["sink"][0], int(query["sink"][1]))
    headers: Cover = query.get("headers")
    layers = _bfs_layers(devices, links, source[0])
    reached = {name for layer in layers for name in layer}
    dropped = sorted(set(devices) - reached)

    shard_of = {
        name: f"shard{i}" for i, layer in enumerate(layers) for name in layer
    }
    assumption = headers if not has_nat(topo) else None

    # Boundary links: exits on one side feed entries on the other.
    boundary: Dict[str, str] = {}
    entries: Dict[str, Set[Point]] = {sid: set() for sid in set(shard_of.values())}
    exits: Dict[str, Set[Point]] = {sid: set() for sid in set(shard_of.values())}
    internal: Dict[str, List[List[Any]]] = {
        sid: [] for sid in set(shard_of.values())
    }
    for dev_a, port_a, dev_b, port_b in links:
        if dev_a not in shard_of or dev_b not in shard_of:
            continue  # touches a dropped device
        sid_a, sid_b = shard_of[dev_a], shard_of[dev_b]
        if sid_a == sid_b:
            internal[sid_a].append([dev_a, port_a, dev_b, port_b])
            continue
        a, b = (dev_a, int(port_a)), (dev_b, int(port_b))
        boundary[point_key(a)] = point_key(b)
        boundary[point_key(b)] = point_key(a)
        exits[sid_a].add(a)
        entries[sid_b].add(b)
        exits[sid_b].add(b)
        entries[sid_a].add(a)

    entries[shard_of[source[0]]].add(source)
    # A linked sink port can never deliver (the link hands the packet
    # to the neighbour first), so it is not an exit.
    if sink[0] in shard_of and point_key(sink) not in boundary:
        linked = {
            (dev, int(port))
            for dev_a, port_a, dev_b, port_b in links
            for dev, port in ((dev_a, port_a), (dev_b, port_b))
        }
        if sink not in linked:
            exits[shard_of[sink[0]]].add(sink)

    shards: List[Dict[str, Any]] = []
    for i, layer in enumerate(layers):
        sid = f"shard{i}"
        shards.append(
            {
                "shard_id": sid,
                "devices": {name: devices[name] for name in layer},
                "links": internal[sid],
                "entries": sorted([d, p] for d, p in entries[sid]),
                "exits": sorted([d, p] for d, p in exits[sid]),
                "assumption": assumption,
                "max_cubes": max_cubes,
                "budget": budget,
            }
        )
    return Plan(
        shards=shards,
        boundary=boundary,
        shard_of=shard_of,
        source=source,
        sink=sink,
        mode=query.get("mode", "reach"),
        headers=headers,
        target=query.get("target"),
        dropped_devices=dropped,
    )
