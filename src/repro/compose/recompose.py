"""Recomposition: chain shard images and discharge assumptions.

The recomposer runs in the parent process over its *own* transformer
context.  It propagates header sets along the plan's boundary map —
``arriving[entry] → image → arriving[next entry]`` — to a fixpoint,
then intersects what reached the sink with the query target.

Assume-guarantee bookkeeping is judged against the *converged*
arriving sets (judging mid-fixpoint would never stabilise under
escalation, because intermediate worklist pops see partially-grown
sets):

* **Discharge** — every entry's final arriving set must be contained
  in the assumption its shard was summarised under; a violation means
  the images say nothing about the uncovered headers and the verdict
  cannot be trusted in *either* direction.  The driver escalates such
  shards with exact entry assumptions.
* **Exactness** — a ``filters_only`` shard never rewrites headers, so
  its true image of ``S`` is ``S ∩ image(assumption)`` and the chained
  set stays exact.  A rewriting shard's image is the image of its
  whole assumption: exact precisely when the converged arriving set
  *equals* that assumption (escalation re-dispatches converge towards
  this), otherwise an over-approximation — sound for "unreachable",
  *tainted* for "reachable".
* **Overflow** — an image reported as ``None`` (cube-cover overflow in
  the worker) makes the whole recomposition unknown; the driver falls
  back to the monolithic fixpoint.

The injectable canary bug ``compose-drop-assumption`` (see
``repro.fuzz``) lives here: it skips discharge and treats rewriting
shards as filters, which silently corrupts verdicts on NAT topologies
— exactly the class of unsoundness the differential fuzz farm exists
to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..core.transformers import TransformerContext
from ..network import Header
from ..telemetry.spans import span
from .cubes import Cover, cover_node, node_cover
from .plan import Plan, parse_point, point_key

#: Canary bug id: drop interface-assumption discharge in the recomposer.
CANARY_DROP_ASSUMPTION = "compose-drop-assumption"


@dataclass
class RecomposeOutcome:
    """What one recompose fixpoint established."""

    hit_node: int  # delivered ∩ target, in `context`
    context: TransformerContext
    tainted_shards: Set[str] = field(default_factory=set)
    assumption_failures: Set[str] = field(default_factory=set)
    overflow: bool = False
    iterations: int = 0
    arriving: Dict[str, int] = field(default_factory=dict)

    @property
    def trusted(self) -> bool:
        """Whether the verdict needs no escalation in either direction."""
        if self.overflow or self.assumption_failures:
            return False
        return self.hit_node == 0 or not self.tainted_shards

    def arriving_cover(self, entry_key: str, max_cubes: int = 4096) -> Cover:
        levels = self.context.space(
            self.context.universe(Header).zen_type
        ).levels
        return node_cover(
            self.context.manager,
            levels,
            self.arriving.get(entry_key, 0),
            max_cubes,
        )


def recompose(
    plan: Plan,
    summaries: Dict[str, Dict[str, Any]],
    context: Optional[TransformerContext] = None,
    bug: Optional[str] = None,
    max_iterations: int = 100_000,
) -> RecomposeOutcome:
    """Chain shard summaries along the plan's boundaries to a fixpoint."""
    if context is None:
        context = TransformerContext()
    header_type = context.universe(Header).zen_type
    levels = context.space(header_type).levels
    manager = context.manager
    canary = bug == CANARY_DROP_ASSUMPTION

    # Pre-render assumption and image nodes once per summary.
    assumption_nodes: Dict[str, Dict[str, int]] = {}
    image_nodes: Dict[str, Optional[int]] = {}
    overflow = False
    for sid, summary in summaries.items():
        per_entry: Dict[str, int] = {}
        base = summary.get("assumption")
        for key, cover in (summary.get("entry_assumptions") or {}).items():
            per_entry[key] = cover_node(manager, levels, cover)
        per_entry[""] = 1 if base is None else cover_node(manager, levels, base)
        assumption_nodes[sid] = per_entry
        for pair, cover in summary["images"].items():
            if cover is None:
                overflow = True
                image_nodes[pair] = None
            else:
                image_nodes[pair] = cover_node(manager, levels, cover)

    # Index images by their entry point for the worklist.
    images_of_entry: Dict[str, List[str]] = {}
    for pair in image_nodes:
        entry_key = pair.split("|", 1)[0]
        images_of_entry.setdefault(entry_key, []).append(pair)

    sink_key = point_key(plan.sink)
    outcome = RecomposeOutcome(0, context, overflow=overflow)
    arriving: Dict[str, int] = {
        point_key(plan.source): cover_node(manager, levels, plan.headers)
    }
    delivered = 0
    worklist = [point_key(plan.source)]

    def shard_at(entry_key: str) -> Optional[str]:
        sid = plan.shard_of.get(parse_point(entry_key)[0])
        return sid if sid in summaries else None

    with span("compose.recompose", shards=len(summaries)) as live:
        while worklist and outcome.iterations < max_iterations:
            outcome.iterations += 1
            entry_key = worklist.pop()
            current = arriving.get(entry_key, 0)
            sid = shard_at(entry_key)
            if current == 0 or sid is None:
                continue
            summary = summaries[sid]
            exact_summary = summary.get("filters_only") or canary
            for pair in images_of_entry.get(entry_key, ()):
                image = image_nodes[pair]
                if image is None:
                    continue  # overflow already flagged
                if exact_summary:
                    flowed = manager.and_(current, image)
                else:
                    flowed = image  # whole-assumption image; judged below
                if flowed == 0:
                    continue
                exit_key = pair.split("|", 1)[1]
                if exit_key == sink_key:
                    delivered = manager.or_(delivered, flowed)
                    continue
                next_entry = plan.boundary.get(exit_key)
                if next_entry is None:
                    continue  # exits the analysed region; drops
                grown = manager.or_(arriving.get(next_entry, 0), flowed)
                if grown != arriving.get(next_entry, 0):
                    arriving[next_entry] = grown
                    if next_entry not in worklist:
                        worklist.append(next_entry)

        # Judge discharge and exactness against the converged sets.
        if not canary:
            for entry_key, final in arriving.items():
                sid = shard_at(entry_key)
                if final == 0 or sid is None:
                    continue
                summary = summaries[sid]
                per_entry = assumption_nodes[sid]
                assumed = per_entry.get(entry_key, per_entry[""])
                if manager.diff(final, assumed) != 0:
                    outcome.assumption_failures.add(sid)
                if not summary.get("filters_only"):
                    exact_here = (
                        summary.get("assumption_exact")
                        and entry_key in per_entry
                        and final == assumed
                    )
                    if not exact_here:
                        outcome.tainted_shards.add(sid)

        target_node = cover_node(manager, levels, plan.target)
        outcome.hit_node = manager.and_(delivered, target_node)
        outcome.arriving = arriving
        live.set("iterations", outcome.iterations)
        live.set("tainted", len(outcome.tainted_shards))
        live.set("assumption_failures", len(outcome.assumption_failures))
        live.set("hit", outcome.hit_node != 0)
    return outcome
