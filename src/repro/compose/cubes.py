"""Portable header-set summaries: cube covers over the five-tuple.

A shard worker computes interface images as BDDs over *its own*
manager; the recomposer combines them in the parent process over a
different manager.  The picklable interchange format is a **cube
cover**: a list of ternary cubes, each a dict mapping header field
names to ``[value, mask]`` pairs (bits where ``mask`` is 1 must equal
``value``).  ``None`` denotes the universe and ``[]`` the empty set.

Pass sets produced by prefix-based forwarding, ACLs, and prefix NAT
are unions of such cubes, so covers stay small in practice;
:func:`node_cover` enumerates the BDD's 1-paths under an explicit
bound and reports overflow (``None``) instead of silently truncating —
a truncated cover would be an under-approximation and unsound for
unreachability verdicts.

The slot layout mirrors the canonical transformer block for
:class:`~repro.network.packet.Header`: fields in declaration order,
bits most-significant first — so a cover converts to/from any
context's header space without renaming.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..lang import Zen, constant

#: Header fields in canonical (declaration) order with bit widths.
FIELDS = (
    ("dst_ip", 32),
    ("src_ip", 32),
    ("dst_port", 16),
    ("src_port", 16),
    ("protocol", 8),
)

HEADER_BITS = sum(width for _, width in FIELDS)

_OFFSETS = {}
_cursor = 0
for _name, _width in FIELDS:
    _OFFSETS[_name] = _cursor
    _cursor += _width

Cube = Dict[str, List[int]]
Cover = Optional[List[Cube]]


def _field_width(field: str) -> int:
    for name, width in FIELDS:
        if name == field:
            return width
    raise ValueError(f"unknown header field {field!r}")


def validate_cover(cover: Any, where: str = "cover") -> Cover:
    """Shape-check a cover; returns it for chaining."""
    if cover is None:
        return None
    if not isinstance(cover, list):
        raise ValueError(f"{where} must be None or a list of cubes")
    for i, cube in enumerate(cover):
        if not isinstance(cube, dict):
            raise ValueError(f"{where}[{i}] must be a dict")
        for field, pair in cube.items():
            width = _field_width(field)
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(v, int) for v in pair)
            ):
                raise ValueError(f"{where}[{i}].{field} must be [value, mask]")
            limit = 1 << width
            if not (0 <= pair[0] < limit and 0 <= pair[1] < limit):
                raise ValueError(f"{where}[{i}].{field} out of range")
    return cover


def prefix_cube(field: str, address: int, length: int) -> Cube:
    """A single-field cube matching an address prefix."""
    width = _field_width(field)
    mask = ((1 << length) - 1) << (width - length) if length else 0
    return {field: [address & mask, mask]}


# ----------------------------------------------------------------------
# Cover <-> BDD (any manager, given the header block's levels)
# ----------------------------------------------------------------------


def _cube_literals(cube: Cube, levels: Sequence[int]) -> Dict[int, bool]:
    literals: Dict[int, bool] = {}
    for field, (value, mask) in cube.items():
        width = _field_width(field)
        offset = _OFFSETS[field]
        for slot in range(width):
            bit = width - 1 - slot  # slots run MSB-first
            if mask & (1 << bit):
                literals[levels[offset + slot]] = bool(value & (1 << bit))
    return literals


def cover_node(manager, levels: Sequence[int], cover: Cover) -> int:
    """Build the cover's BDD over a header block's variable levels."""
    if cover is None:
        return 1
    return manager.or_many(
        manager.cube(_cube_literals(cube, levels)) for cube in cover
    )


def node_cover(
    manager, levels: Sequence[int], node: int, max_cubes: int = 4096
) -> Cover:
    """Enumerate a header-set BDD as a cube cover.

    Walks the 1-paths of `node`; returns ``None`` on overflow (more
    than `max_cubes` paths) — the caller must then treat the summary
    as unknown rather than use a partial cover.
    """
    if node == 0:
        return []
    slot_of = {level: slot for slot, level in enumerate(levels)}
    cubes: List[Cube] = []
    stack: List[tuple] = [(node, ())]
    while stack:
        current, literals = stack.pop()
        if current == 0:
            continue
        if current == 1:
            if len(cubes) >= max_cubes:
                return None
            cube: Cube = {}
            for level, value in literals:
                slot = slot_of.get(level)
                if slot is None:
                    raise ValueError(
                        f"set depends on level {level} outside the header block"
                    )
                for field, width in FIELDS:
                    offset = _OFFSETS[field]
                    if offset <= slot < offset + width:
                        bit = width - 1 - (slot - offset)
                        pair = cube.setdefault(field, [0, 0])
                        pair[1] |= 1 << bit
                        if value:
                            pair[0] |= 1 << bit
                        break
            cubes.append(cube)
            continue
        level = manager.level_of(current)
        stack.append((manager.low(current), literals + ((level, False),)))
        stack.append((manager.high(current), literals + ((level, True),)))
    return cubes


def assignment_header(
    assignment: Dict[int, bool], levels: Sequence[int]
) -> Dict[str, int]:
    """Decode a satisfying assignment into a concrete header dict.

    Unconstrained bits default to 0.
    """
    header = {name: 0 for name, _ in FIELDS}
    slot_of = {level: slot for slot, level in enumerate(levels)}
    for level, value in assignment.items():
        slot = slot_of.get(level)
        if slot is None or not value:
            continue
        for field, width in FIELDS:
            offset = _OFFSETS[field]
            if offset <= slot < offset + width:
                header[field] |= 1 << (width - 1 - (slot - offset))
                break
    return header


# ----------------------------------------------------------------------
# Concrete / symbolic membership
# ----------------------------------------------------------------------


def header_matches(cover: Cover, header: Dict[str, int]) -> bool:
    """Plain-Python cover membership for a concrete header dict."""
    if cover is None:
        return True
    for cube in cover:
        if all(
            (header.get(field, 0) & mask) == (value & mask)
            for field, (value, mask) in cube.items()
        ):
            return True
    return False


def cover_predicate(h: Zen, cover: Cover) -> Zen:
    """The cover as a Zen boolean over a symbolic header."""
    if cover is None:
        return constant(True, bool)
    result = constant(False, bool)
    for cube in cover:
        cond = constant(True, bool)
        for field, (value, mask) in cube.items():
            cond = cond & ((getattr(h, field) & mask) == (value & mask))
        result = result | cond
    return result
