"""Bitvector circuits over an abstract Boolean backend.

The paper's SMT backend "encodes all primitive operations using the
theory of bitvectors before bitblasting"; this module is that encoding,
shared by the SAT and BDD backends.  Vectors are lists of bits, least
significant bit first.
"""

from __future__ import annotations

from typing import List, Sequence

from .interface import Bit, BoolBackend, const_bit


def const_vector(backend: BoolBackend, value: int, width: int) -> List[Bit]:
    """Encode a (possibly negative) Python int as constant bits."""
    masked = value & ((1 << width) - 1)
    return [
        const_bit(backend, bool((masked >> i) & 1)) for i in range(width)
    ]


def to_int(bits: Sequence[bool], signed: bool) -> int:
    """Decode a list of Booleans (LSB first) into a Python int."""
    value = sum(1 << i for i, b in enumerate(bits) if b)
    if signed and bits and bits[-1]:
        value -= 1 << len(bits)
    return value


def bitwise_and(backend: BoolBackend, a, b) -> List[Bit]:
    """Pointwise AND."""
    return [backend.and_(x, y) for x, y in zip(a, b)]


def bitwise_or(backend: BoolBackend, a, b) -> List[Bit]:
    """Pointwise OR."""
    return [backend.or_(x, y) for x, y in zip(a, b)]


def bitwise_xor(backend: BoolBackend, a, b) -> List[Bit]:
    """Pointwise XOR."""
    return [backend.xor(x, y) for x, y in zip(a, b)]


def bitwise_not(backend: BoolBackend, a) -> List[Bit]:
    """Pointwise complement."""
    return [backend.not_(x) for x in a]


def add(backend: BoolBackend, a, b) -> List[Bit]:
    """Ripple-carry addition, wrapping at the vector width."""
    out: List[Bit] = []
    carry = backend.false()
    for x, y in zip(a, b):
        xor_xy = backend.xor(x, y)
        out.append(backend.xor(xor_xy, carry))
        carry = backend.or_(
            backend.and_(x, y), backend.and_(xor_xy, carry)
        )
    return out


def negate(backend: BoolBackend, a) -> List[Bit]:
    """Two's-complement negation."""
    return add(
        backend,
        bitwise_not(backend, a),
        const_vector(backend, 1, len(a)),
    )


def sub(backend: BoolBackend, a, b) -> List[Bit]:
    """Subtraction via a + (-b)."""
    out: List[Bit] = []
    borrow = backend.false()
    for x, y in zip(a, b):
        xor_xy = backend.xor(x, y)
        out.append(backend.xor(xor_xy, borrow))
        borrow = backend.or_(
            backend.and_(backend.not_(x), y),
            backend.and_(backend.not_(xor_xy), borrow),
        )
    return out


def mul(backend: BoolBackend, a, b) -> List[Bit]:
    """Shift-and-add multiplication, truncated to the vector width."""
    width = len(a)
    acc = const_vector(backend, 0, width)
    for i, bit in enumerate(b):
        # Partial product: a << i, gated by b's bit i.
        partial = [backend.false()] * i + [
            backend.and_(bit, a[j]) for j in range(width - i)
        ]
        acc = add(backend, acc, partial)
    return acc


def equal(backend: BoolBackend, a, b) -> Bit:
    """Vector equality."""
    result = backend.true()
    for x, y in zip(a, b):
        result = backend.and_(result, backend.iff(x, y))
    return result


def unsigned_less(backend: BoolBackend, a, b) -> Bit:
    """Unsigned a < b (ripple from the most significant bit)."""
    result = backend.false()
    for x, y in zip(a, b):  # LSB to MSB; later bits dominate
        lt = backend.and_(backend.not_(x), y)
        eq = backend.iff(x, y)
        result = backend.or_(lt, backend.and_(eq, result))
    return result


def less(backend: BoolBackend, a, b, signed: bool) -> Bit:
    """Signed or unsigned a < b.

    Signed comparison flips the sign bits and compares unsigned.
    """
    if not signed:
        return unsigned_less(backend, a, b)
    a2 = list(a[:-1]) + [backend.not_(a[-1])]
    b2 = list(b[:-1]) + [backend.not_(b[-1])]
    return unsigned_less(backend, a2, b2)


def less_equal(backend: BoolBackend, a, b, signed: bool) -> Bit:
    """a <= b."""
    return backend.not_(less(backend, b, a, signed))


def shift_left_const(backend: BoolBackend, a, amount: int) -> List[Bit]:
    """Left shift by a known amount (zeros shifted in)."""
    width = len(a)
    amount = min(max(amount, 0), width)
    return [backend.false()] * amount + list(a[: width - amount])


def shift_right_const(
    backend: BoolBackend, a, amount: int, arithmetic: bool
) -> List[Bit]:
    """Right shift by a known amount (sign- or zero-extended)."""
    width = len(a)
    amount = min(max(amount, 0), width)
    fill = a[-1] if (arithmetic and width) else backend.false()
    return list(a[amount:]) + [fill] * amount


def shift_left(backend: BoolBackend, a, amount) -> List[Bit]:
    """Barrel left shift by a symbolic amount vector."""
    return _barrel(backend, a, amount, shift_left_const, backend.false())


def shift_right(
    backend: BoolBackend, a, amount, arithmetic: bool
) -> List[Bit]:
    """Barrel right shift by a symbolic amount vector."""
    def stage(bk, bits, amt):
        return shift_right_const(bk, bits, amt, arithmetic)

    fill = a[-1] if (arithmetic and a) else backend.false()
    return _barrel(backend, a, amount, stage, fill)


def _barrel(backend: BoolBackend, a, amount, stage_fn, overflow_fill):
    width = len(a)
    if width == 0:
        return []
    stages = max(1, (width - 1).bit_length())
    result = list(a)
    for i in range(stages):
        shifted = stage_fn(backend, result, 1 << i)
        if i < len(amount):
            result = [
                backend.ite(amount[i], s, r)
                for s, r in zip(shifted, result)
            ]
    # Any set amount bit at position >= stages (or beyond the vector)
    # shifts everything out.
    overflow = backend.false()
    for i in range(stages, len(amount)):
        overflow = backend.or_(overflow, amount[i])
    return [backend.ite(overflow, overflow_fill, r) for r in result]
