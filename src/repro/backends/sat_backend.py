"""The SAT ("SMT") backend: bits are AIG literals, solving is CDCL.

This mirrors the paper's Z3 bitvector backend: symbolic evaluation
produces a circuit, which is bitblasted (Tseitin) to CNF and handed to
the CDCL solver.
"""

from __future__ import annotations

from typing import List, Optional

from ..aig import FALSE_LIT, TRUE_LIT, Aig, CnfMapping, encode
from ..telemetry.spans import TRACER, span
from .interface import Bit


class SatModel:
    """A satisfying assignment for an AIG-based query.

    The model stores concrete values for the primary inputs (inputs
    outside the encoded cone default to False) and evaluates any other
    literal by circuit simulation, so decoding works for arbitrary
    derived bits, not just those the CNF encoding happened to cover.
    """

    def __init__(self, aig: Aig, input_values: dict):
        self._aig = aig
        self._sim = aig.simulate(input_values)

    def value(self, bit: Bit) -> bool:
        """Value of any AIG literal under the model."""
        return self._sim[bit]


class SatBackend:
    """Boolean backend over an and-inverter graph + CDCL solver."""

    #: Stable backend identifier used by the fallback ladder, the
    #: query service's circuit breakers, and attempt records.
    name = "sat"

    def __init__(self) -> None:
        self._aig = Aig()
        self._budget = None
        # True when the last solve_all hit its limit with models left,
        # False when it enumerated exhaustively, None before any run.
        self.last_enumeration_truncated = None
        self._stats = {
            "solves": 0,
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "learned": 0,
        }

    def set_budget(self, budget) -> None:
        """Install (or clear) a budget meter for subsequent solves.

        The meter is handed to the CDCL solver of every solve on this
        backend; circuit (AIG) construction itself is uninstrumented —
        it is linear in the model, the search is what can diverge.
        """
        if budget is not None and not hasattr(budget, "on_conflict"):
            budget = budget.start()
        self._budget = budget

    @property
    def budget(self):
        """The installed budget meter, or None."""
        return self._budget

    @property
    def aig(self) -> Aig:
        """The underlying circuit (exposed for statistics and export)."""
        return self._aig

    @property
    def statistics(self) -> dict:
        """CDCL counters accumulated across all solves on this backend.

        Mirrors :attr:`repro.sat.Solver.statistics` (conflicts,
        decisions, propagations, learned clauses) plus the number of
        solver invocations.
        """
        return dict(self._stats)

    def reset_statistics(self) -> None:
        """Zero the accumulated solver counters."""
        for key in self._stats:
            self._stats[key] = 0

    def snapshot(self) -> dict:
        """Flat numeric counter snapshot (shared counter protocol)."""
        return dict(self._stats)

    def reset_counters(self) -> None:
        """Canonical reset spelling (alias of :meth:`reset_statistics`)."""
        self.reset_statistics()

    def _accumulate(self, solver) -> None:
        stats = solver.statistics
        self._stats["solves"] += 1
        for key in ("conflicts", "decisions", "propagations", "learned"):
            self._stats[key] += stats[key]

    def true(self) -> Bit:
        return TRUE_LIT

    def false(self) -> Bit:
        return FALSE_LIT

    def fresh(self, name: str) -> Bit:
        return self._aig.new_input()

    def and_(self, a: Bit, b: Bit) -> Bit:
        return self._aig.and_(a, b)

    def or_(self, a: Bit, b: Bit) -> Bit:
        return self._aig.or_(a, b)

    def not_(self, a: Bit) -> Bit:
        return self._aig.not_(a)

    def xor(self, a: Bit, b: Bit) -> Bit:
        return self._aig.xor(a, b)

    def iff(self, a: Bit, b: Bit) -> Bit:
        return self._aig.iff(a, b)

    def ite(self, c: Bit, t: Bit, e: Bit) -> Bit:
        return self._aig.ite(c, t, e)

    def is_true(self, a: Bit) -> bool:
        return a == TRUE_LIT

    def is_false(self, a: Bit) -> bool:
        return a == FALSE_LIT

    def solve(self, constraint: Bit) -> Optional[SatModel]:
        """Bitblast the constraint and search for a model."""
        if constraint == FALSE_LIT:
            return None
        if TRACER.enabled:
            with span("sat.bitblast") as sp:
                mapping, _ = encode(self._aig, [constraint])
                sp.set("clauses", mapping.solver.num_clauses)
                sp.set("vars", mapping.solver.num_vars)
        else:
            mapping, _ = encode(self._aig, [constraint])
        try:
            satisfiable = mapping.solver.solve(budget=self._budget)
        finally:
            self._accumulate(mapping.solver)
        if not satisfiable:
            return None
        if self._budget is not None:
            self._budget.on_model()
        input_values = {
            lit: mapping.model_value(lit) for lit in self._aig.inputs
        }
        return SatModel(self._aig, input_values)

    def solve_all(self, constraint: Bit, over: List[Bit], limit: int):
        """Enumerate models projected onto the given input bits.

        Yields :class:`SatModel`-compatible snapshots; used by test
        input generation.  `limit` bounds the number of models; when
        it cuts enumeration off, one extra (blocked) solve decides
        whether models were left behind and
        :attr:`last_enumeration_truncated` records the exact answer.
        """
        self.last_enumeration_truncated = None
        if constraint == FALSE_LIT:
            self.last_enumeration_truncated = False
            return
        with span("sat.bitblast"):
            mapping, _ = encode(self._aig, [constraint])
        solver = mapping.solver
        produced = 0
        try:
            while produced < limit:
                if not solver.solve(budget=self._budget):
                    self.last_enumeration_truncated = False
                    return
                if self._budget is not None:
                    self._budget.on_model()
                snapshot = {bit: mapping.model_value(bit) for bit in over}
                yield _FixedModel(snapshot)
                produced += 1
                blocking = []
                for bit in over:
                    lit = mapping.solver_literal(bit)
                    if lit is None:
                        continue
                    blocking.append(-lit if snapshot[bit] else lit)
                if not blocking or not solver.add_clause(blocking):
                    self.last_enumeration_truncated = False
                    return
            self.last_enumeration_truncated = solver.solve(budget=self._budget)
        finally:
            self._accumulate(solver)


class _FixedModel:
    """An immutable snapshot of input-bit values."""

    def __init__(self, values: dict):
        self._values = values

    def value(self, bit: Bit) -> bool:
        return self._values.get(bit, False)
