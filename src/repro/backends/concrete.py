"""Concrete evaluation of Zen expressions (simulation, §4).

Because Zen models are executable, passing concrete values for the
arguments turns any model into a simulator (the Batfish-style
analysis).  The evaluator is iterative (explicit work stack) so deep
``if`` chains — e.g. an ACL with thousands of rules — do not overflow
the Python call stack.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ZenEvaluationError
from ..lang import expr as ex
from ..lang import types as ty

_EXPAND = 0
_REDUCE = 1
_FORWARD = 2


class ConcreteEvaluator:
    """Evaluates expression trees over concrete Python values.

    One evaluator instance is one evaluation session: list-case
    branches are invoked with values lifted under this session token,
    and results are memoized per node for sharing.
    """

    def __init__(self, env: Optional[Dict[str, Any]] = None):
        self._env = dict(env or {})
        self._memo: Dict[ex.Expr, Any] = {}

    def evaluate(self, expr: ex.Expr) -> Any:
        """Evaluate an expression to a concrete Python value."""
        memo = self._memo
        # Work stack of (phase, node, extra).  EXPAND visits children,
        # REDUCE computes a node from its memoized children, FORWARD
        # copies another node's value (if/case branch indirection).
        stack: List[Tuple[int, ex.Expr, Any]] = [(_EXPAND, expr, None)]
        while stack:
            phase, node, extra = stack.pop()
            if phase == _FORWARD:
                memo[node] = memo[extra]
                continue
            if node in memo:
                continue
            if phase == _EXPAND:
                self._expand(node, stack)
            elif isinstance(node, ex.If):
                self._branch_if(node, stack)
            elif isinstance(node, ex.ListCase):
                self._branch_case(node, stack)
            else:
                memo[node] = self._reduce(node)
        return memo[expr]

    # ------------------------------------------------------------------

    def _expand(self, node: ex.Expr, stack: list) -> None:
        memo = self._memo
        if isinstance(node, ex.Constant):
            memo[node] = node.value
            return
        if isinstance(node, ex.Var):
            if node.name not in self._env:
                raise ZenEvaluationError(
                    f"unbound variable {node.name!r} in concrete evaluation"
                )
            memo[node] = ty.check_value(node.type, self._env[node.name])
            return
        if isinstance(node, ex.Lifted):
            if node.session is not self:
                raise ZenEvaluationError(
                    "lifted value used outside its evaluation session"
                )
            memo[node] = node.payload
            return
        if isinstance(node, ex.If):
            # Lazy: evaluate the condition, then only the taken branch.
            stack.append((_REDUCE, node, None))
            stack.append((_EXPAND, node.cond, None))
            return
        if isinstance(node, ex.ListCase):
            # Evaluate the scrutinee first; branch at reduce time.
            stack.append((_REDUCE, node, None))
            stack.append((_EXPAND, node.lst, None))
            return
        stack.append((_REDUCE, node, None))
        for child in node.children:
            stack.append((_EXPAND, child, None))

    def _branch_if(self, node: ex.If, stack: list) -> None:
        taken = node.then if self._memo[node.cond] else node.orelse
        if taken in self._memo:
            self._memo[node] = self._memo[taken]
            return
        stack.append((_FORWARD, node, taken))
        stack.append((_EXPAND, taken, None))

    def _branch_case(self, node: ex.ListCase, stack: list) -> None:
        value = self._memo[node.lst]
        elem_type = node.lst.type.element  # type: ignore[attr-defined]
        if value:
            head = ex.Lifted(value[0], elem_type, self)
            tail = ex.Lifted(list(value[1:]), node.lst.type, self)
            branch = node.cons(head, tail)
        else:
            branch = node.empty()
        if branch.type != node.type:
            raise ZenEvaluationError(
                f"case branches disagree: {branch.type} vs {node.type}"
            )
        if branch in self._memo:
            self._memo[node] = self._memo[branch]
            return
        stack.append((_FORWARD, node, branch))
        stack.append((_EXPAND, branch, None))

    def _reduce(self, node: ex.Expr) -> Any:
        memo = self._memo
        if isinstance(node, ex.Binary):
            return _binary(node.op, memo[node.left], memo[node.right], node)
        if isinstance(node, ex.Unary):
            return _unary(node.op, memo[node.operand], node)
        if isinstance(node, ex.Create):
            cls = node.type.cls  # type: ignore[attr-defined]
            return cls(
                **{name: memo[child] for name, child in node.fields.items()}
            )
        if isinstance(node, ex.GetField):
            return getattr(memo[node.obj], node.field)
        if isinstance(node, ex.WithField):
            return dataclasses.replace(
                memo[node.obj], **{node.field: memo[node.value]}
            )
        if isinstance(node, ex.MakeTuple):
            return tuple(memo[item] for item in node.items)
        if isinstance(node, ex.TupleGet):
            return memo[node.tup][node.index]
        if isinstance(node, ex.ListEmpty):
            return []
        if isinstance(node, ex.ListCons):
            return [memo[node.head]] + list(memo[node.tail])
        if isinstance(node, ex.OptionNone):
            return None
        if isinstance(node, ex.OptionSome):
            return memo[node.value]
        if isinstance(node, ex.OptionHasValue):
            return memo[node.opt] is not None
        if isinstance(node, ex.OptionValue):
            value = memo[node.opt]
            if value is None:
                return ty.default_value(node.type)
            return value
        if isinstance(node, ex.Adapt):
            return _adapt(memo[node.operand], node.operand.type, node.type)
        raise ZenEvaluationError(f"cannot evaluate node {node!r}")


def _binary(op: str, left: Any, right: Any, node: ex.Binary) -> Any:
    if op == "and":
        return left and right
    if op == "or":
        return left or right
    if op == "eq":
        return left == right
    if op == "ne":
        return left != right
    if op in ("lt", "le", "gt", "ge"):
        table = {
            "lt": left < right,
            "le": left <= right,
            "gt": left > right,
            "ge": left >= right,
        }
        return table[op]
    int_type = node.type
    assert isinstance(int_type, ty.IntType)
    if op == "add":
        return int_type.wrap(left + right)
    if op == "sub":
        return int_type.wrap(left - right)
    if op == "mul":
        return int_type.wrap(left * right)
    if op == "band":
        return int_type.wrap(
            _unsigned(left, int_type) & _unsigned(right, int_type)
        )
    if op == "bor":
        return int_type.wrap(
            _unsigned(left, int_type) | _unsigned(right, int_type)
        )
    if op == "bxor":
        return int_type.wrap(
            _unsigned(left, int_type) ^ _unsigned(right, int_type)
        )
    if op == "shl":
        amount = _unsigned(right, int_type)
        if amount >= int_type.width:
            return 0
        return int_type.wrap(_unsigned(left, int_type) << amount)
    if op == "shr":
        amount = _unsigned(right, int_type)
        if int_type.signed:
            if amount >= int_type.width:
                return -1 if left < 0 else 0
            return int_type.wrap(left >> amount)
        if amount >= int_type.width:
            return 0
        return int_type.wrap(_unsigned(left, int_type) >> amount)
    raise ZenEvaluationError(f"unknown binary op {op}")


def _unsigned(value: int, int_type: ty.IntType) -> int:
    return value & ((1 << int_type.width) - 1)


def _unary(op: str, operand: Any, node: ex.Unary) -> Any:
    if op == "not":
        return not operand
    int_type = node.type
    assert isinstance(int_type, ty.IntType)
    if op == "bnot":
        return int_type.wrap(~_unsigned(operand, int_type))
    if op == "neg":
        return int_type.wrap(-operand)
    raise ZenEvaluationError(f"unknown unary op {op}")


def _adapt(value: Any, source: ty.ZenType, target: ty.ZenType) -> Any:
    if isinstance(source, ty.MapType):
        # Map -> list of pairs, most recently set first.
        pairs = [(k, v) for k, v in value.items()]
        pairs.reverse()
        return pairs
    if isinstance(target, ty.MapType):
        # List of pairs -> map; the head of the list wins.
        result: Dict[Any, Any] = {}
        for key, val in reversed(value):
            result[key] = val
        return result
    raise ZenEvaluationError(f"no adaptation from {source} to {target}")
