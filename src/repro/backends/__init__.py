"""Evaluation backends: concrete interpreter, symbolic bitblaster,
and the SAT/BDD Boolean engines they plug into."""

from .bdd_backend import BddBackend, BddModel
from .concrete import ConcreteEvaluator
from .interface import Bit, BoolBackend, Model, bit_value, const_bit
from .sat_backend import SatBackend, SatModel
from .symbolic import SymbolicEvaluator
from .values import (
    SymBool,
    SymInt,
    SymList,
    SymMap,
    SymObject,
    SymOption,
    SymTuple,
    SymValue,
    decode,
    default,
    equal,
    fresh,
    from_constant,
    input_bits,
    merge,
)

__all__ = [
    "ConcreteEvaluator",
    "SymbolicEvaluator",
    "SatBackend",
    "SatModel",
    "BddBackend",
    "BddModel",
    "BoolBackend",
    "Model",
    "Bit",
    "bit_value",
    "const_bit",
    "SymValue",
    "SymBool",
    "SymInt",
    "SymTuple",
    "SymObject",
    "SymOption",
    "SymList",
    "SymMap",
    "decode",
    "default",
    "equal",
    "fresh",
    "from_constant",
    "input_bits",
    "merge",
]
