"""The Boolean backend interface shared by the SAT and BDD engines.

Symbolic evaluation (the bitblaster) is written once against this
interface; plugging in a different engine gives a new Zen backend —
exactly the separation of concerns Figure 2 of the paper argues for.

A *bit* is an opaque handle (an AIG literal for the SAT backend, a
BDD node for the BDD backend).  Constant bits must be recognizable so
the evaluator can prune dead branches when models mix concrete and
symbolic data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence

Bit = Any


class Model(Protocol):
    """A satisfying assignment, queryable per input bit."""

    def value(self, bit: Bit) -> bool:
        """The Boolean value assigned to an *input* bit."""
        ...


class BoolBackend(Protocol):
    """Operations a solver engine must provide to the bitblaster."""

    def true(self) -> Bit:
        ...

    def false(self) -> Bit:
        ...

    def fresh(self, name: str) -> Bit:
        """Allocate a fresh input bit."""
        ...

    def and_(self, a: Bit, b: Bit) -> Bit:
        ...

    def or_(self, a: Bit, b: Bit) -> Bit:
        ...

    def not_(self, a: Bit) -> Bit:
        ...

    def xor(self, a: Bit, b: Bit) -> Bit:
        ...

    def iff(self, a: Bit, b: Bit) -> Bit:
        ...

    def ite(self, c: Bit, t: Bit, e: Bit) -> Bit:
        ...

    def is_true(self, a: Bit) -> bool:
        """Whether the bit is the constant TRUE."""
        ...

    def is_false(self, a: Bit) -> bool:
        """Whether the bit is the constant FALSE."""
        ...

    def solve(self, constraint: Bit) -> Optional[Model]:
        """Find a model of `constraint`, or None if unsatisfiable."""
        ...


def const_bit(backend: BoolBackend, value: bool) -> Bit:
    """The constant bit for a Python bool."""
    return backend.true() if value else backend.false()


def bit_value(backend: BoolBackend, bit: Bit) -> Optional[bool]:
    """Constant value of a bit, or None if it is symbolic."""
    if backend.is_true(bit):
        return True
    if backend.is_false(bit):
        return False
    return None
