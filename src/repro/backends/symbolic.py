"""Symbolic evaluation of Zen expressions over a Boolean backend.

This is the compiler at the heart of both solver backends: it walks an
expression tree and produces a :class:`~repro.backends.values.SymValue`
whose leaves are backend bits (AIG literals for the SAT engine, BDD
nodes for the BDD engine).

Control flow is handled with type-driven merging: an ``if`` with a
symbolic condition evaluates both branches and merges them (§6), while
constant conditions — common when models mix concrete tables with
symbolic packets — short-circuit to the live branch only.

The evaluator is iterative (explicit work stack) so deep ``if`` chains
from large ACLs do not overflow the Python call stack.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ZenEvaluationError
from ..lang import expr as ex
from ..lang import types as ty
from . import bitvector as bv
from . import values as sv
from .interface import BoolBackend, bit_value

_EXPAND = 0
_REDUCE = 1
_FORWARD = 2
_MERGE_IF = 3
_MERGE_CASE = 4


class SymbolicEvaluator:
    """One symbolic evaluation session over a Boolean backend."""

    def __init__(
        self,
        backend: BoolBackend,
        env: Optional[Dict[str, sv.SymValue]] = None,
        max_list_length: int = 4,
    ):
        self._backend = backend
        self._env = dict(env or {})
        self._memo: Dict[ex.Expr, sv.SymValue] = {}
        self._max_list_length = max_list_length

    def bind(self, name: str, value: sv.SymValue) -> None:
        """Bind a variable name to a symbolic value."""
        self._env[name] = value

    def fresh_input(self, name: str, zen_type: ty.ZenType) -> sv.SymValue:
        """Allocate and bind a fresh symbolic input."""
        value = sv.fresh(self._backend, zen_type, name, self._max_list_length)
        self._env[name] = value
        return value

    def evaluate(self, expr: ex.Expr) -> sv.SymValue:
        """Evaluate an expression to a symbolic value."""
        memo = self._memo
        backend = self._backend
        stack: List[Tuple[int, ex.Expr, Any]] = [(_EXPAND, expr, None)]
        while stack:
            phase, node, extra = stack.pop()
            if phase == _FORWARD:
                memo[node] = memo[extra]
                continue
            if phase == _MERGE_IF:
                cond_bit, then_node, else_node = extra
                memo[node] = sv.merge(
                    backend, cond_bit, memo[then_node], memo[else_node]
                )
                continue
            if phase == _MERGE_CASE:
                guard, cons_node, empty_node = extra
                memo[node] = sv.merge(
                    backend, guard, memo[cons_node], memo[empty_node]
                )
                continue
            if node in memo:
                continue
            if phase == _EXPAND:
                self._expand(node, stack)
            elif isinstance(node, ex.If):
                self._branch_if(node, stack)
            elif isinstance(node, ex.ListCase):
                self._branch_case(node, stack)
            else:
                memo[node] = self._reduce(node)
        return memo[expr]

    # ------------------------------------------------------------------

    def _expand(self, node: ex.Expr, stack: list) -> None:
        memo = self._memo
        if isinstance(node, ex.Constant):
            memo[node] = sv.from_constant(self._backend, node.type, node.value)
            return
        if isinstance(node, ex.Var):
            if node.name not in self._env:
                raise ZenEvaluationError(
                    f"unbound variable {node.name!r} in symbolic evaluation"
                )
            memo[node] = self._env[node.name]
            return
        if isinstance(node, ex.Lifted):
            if node.session is not self:
                raise ZenEvaluationError(
                    "lifted value used outside its evaluation session"
                )
            memo[node] = node.payload
            return
        if isinstance(node, (ex.If, ex.ListCase)):
            scrutinee = node.cond if isinstance(node, ex.If) else node.lst
            stack.append((_REDUCE, node, None))
            stack.append((_EXPAND, scrutinee, None))
            return
        stack.append((_REDUCE, node, None))
        for child in node.children:
            stack.append((_EXPAND, child, None))

    def _branch_if(self, node: ex.If, stack: list) -> None:
        cond = self._memo[node.cond]
        assert isinstance(cond, sv.SymBool)
        known = bit_value(self._backend, cond.bit)
        if known is not None:
            taken = node.then if known else node.orelse
            self._forward(node, taken, stack)
            return
        stack.append((_MERGE_IF, node, (cond.bit, node.then, node.orelse)))
        stack.append((_EXPAND, node.then, None))
        stack.append((_EXPAND, node.orelse, None))

    def _branch_case(self, node: ex.ListCase, stack: list) -> None:
        lst = self._memo[node.lst]
        assert isinstance(lst, sv.SymList)
        if not lst.cells:
            self._forward(node, node.empty(), stack)
            return
        guard, head_val = lst.cells[0]
        known = bit_value(self._backend, guard)
        list_type = node.lst.type
        elem_type = list_type.element  # type: ignore[attr-defined]
        if known is False:
            self._forward(node, node.empty(), stack)
            return
        tail_val = sv.SymList(list_type, lst.cells[1:])  # type: ignore[arg-type]
        head = ex.Lifted(head_val, elem_type, self)
        tail = ex.Lifted(tail_val, list_type, self)
        cons_branch = node.cons(head, tail)
        if cons_branch.type != node.type:
            raise ZenEvaluationError(
                f"case branches disagree: {cons_branch.type} vs {node.type}"
            )
        if known is True:
            self._forward(node, cons_branch, stack)
            return
        empty_branch = node.empty()
        stack.append((_MERGE_CASE, node, (guard, cons_branch, empty_branch)))
        stack.append((_EXPAND, cons_branch, None))
        stack.append((_EXPAND, empty_branch, None))

    def _forward(self, node: ex.Expr, target: ex.Expr, stack: list) -> None:
        if target in self._memo:
            self._memo[node] = self._memo[target]
            return
        stack.append((_FORWARD, node, target))
        stack.append((_EXPAND, target, None))

    # ------------------------------------------------------------------

    def _reduce(self, node: ex.Expr) -> sv.SymValue:
        memo = self._memo
        backend = self._backend
        if isinstance(node, ex.Binary):
            return self._binary(node)
        if isinstance(node, ex.Unary):
            return self._unary(node)
        if isinstance(node, ex.Create):
            return sv.SymObject(
                node.type,  # type: ignore[arg-type]
                {name: memo[child] for name, child in node.fields.items()},
            )
        if isinstance(node, ex.GetField):
            obj = memo[node.obj]
            assert isinstance(obj, sv.SymObject)
            return obj.fields[node.field]
        if isinstance(node, ex.WithField):
            obj = memo[node.obj]
            assert isinstance(obj, sv.SymObject)
            fields = dict(obj.fields)
            fields[node.field] = memo[node.value]
            return sv.SymObject(obj.type, fields)  # type: ignore[arg-type]
        if isinstance(node, ex.MakeTuple):
            return sv.SymTuple(
                node.type,  # type: ignore[arg-type]
                [memo[item] for item in node.items],
            )
        if isinstance(node, ex.TupleGet):
            tup = memo[node.tup]
            assert isinstance(tup, sv.SymTuple)
            return tup.items[node.index]
        if isinstance(node, ex.ListEmpty):
            return sv.SymList(node.type, [])  # type: ignore[arg-type]
        if isinstance(node, ex.ListCons):
            tail = memo[node.tail]
            assert isinstance(tail, sv.SymList)
            head = memo[node.head]
            # The new cell is always present; old cells keep guards.
            cells = [(backend.true(), head)] + list(tail.cells)
            return sv.SymList(tail.type, cells)  # type: ignore[arg-type]
        if isinstance(node, ex.OptionNone):
            return sv.SymOption(
                node.type,  # type: ignore[arg-type]
                backend.false(),
                sv.default(backend, node.type.element),  # type: ignore[attr-defined]
            )
        if isinstance(node, ex.OptionSome):
            return sv.SymOption(
                node.type,  # type: ignore[arg-type]
                backend.true(),
                memo[node.value],
            )
        if isinstance(node, ex.OptionHasValue):
            opt = memo[node.opt]
            assert isinstance(opt, sv.SymOption)
            return sv.SymBool(opt.has)
        if isinstance(node, ex.OptionValue):
            opt = memo[node.opt]
            assert isinstance(opt, sv.SymOption)
            # Guard with the flag so None decodes as the default value.
            return sv.merge(
                backend,
                opt.has,
                opt.val,
                sv.default(backend, opt.val.type),
            )
        if isinstance(node, ex.Adapt):
            operand = memo[node.operand]
            if isinstance(node.type, ty.MapType):
                assert isinstance(operand, sv.SymList)
                return sv.SymMap(node.type, operand)
            assert isinstance(operand, sv.SymMap)
            return operand.backing
        raise ZenEvaluationError(f"cannot evaluate node {node!r}")

    def _binary(self, node: ex.Binary) -> sv.SymValue:
        backend = self._backend
        left = self._memo[node.left]
        right = self._memo[node.right]
        op = node.op
        if op in ("and", "or"):
            assert isinstance(left, sv.SymBool) and isinstance(right, sv.SymBool)
            fn = backend.and_ if op == "and" else backend.or_
            return sv.SymBool(fn(left.bit, right.bit))
        if op == "eq":
            return sv.SymBool(sv.equal(backend, left, right))
        if op == "ne":
            return sv.SymBool(backend.not_(sv.equal(backend, left, right)))
        assert isinstance(left, sv.SymInt) and isinstance(right, sv.SymInt)
        int_type = left.type
        assert isinstance(int_type, ty.IntType)
        signed = int_type.signed
        if op == "lt":
            return sv.SymBool(bv.less(backend, left.bits, right.bits, signed))
        if op == "gt":
            return sv.SymBool(bv.less(backend, right.bits, left.bits, signed))
        if op == "le":
            return sv.SymBool(
                bv.less_equal(backend, left.bits, right.bits, signed)
            )
        if op == "ge":
            return sv.SymBool(
                bv.less_equal(backend, right.bits, left.bits, signed)
            )
        if op == "add":
            return sv.SymInt(int_type, bv.add(backend, left.bits, right.bits))
        if op == "sub":
            return sv.SymInt(int_type, bv.sub(backend, left.bits, right.bits))
        if op == "mul":
            return sv.SymInt(int_type, bv.mul(backend, left.bits, right.bits))
        if op == "band":
            return sv.SymInt(
                int_type, bv.bitwise_and(backend, left.bits, right.bits)
            )
        if op == "bor":
            return sv.SymInt(
                int_type, bv.bitwise_or(backend, left.bits, right.bits)
            )
        if op == "bxor":
            return sv.SymInt(
                int_type, bv.bitwise_xor(backend, left.bits, right.bits)
            )
        if op in ("shl", "shr"):
            amount = self._constant_amount(right)
            arith = signed
            if amount is not None:
                if op == "shl":
                    bits = bv.shift_left_const(backend, left.bits, amount)
                else:
                    bits = bv.shift_right_const(
                        backend, left.bits, amount, arith
                    )
            elif op == "shl":
                bits = bv.shift_left(backend, left.bits, right.bits)
            else:
                bits = bv.shift_right(backend, left.bits, right.bits, arith)
            return sv.SymInt(int_type, bits)
        raise ZenEvaluationError(f"unknown binary op {op}")

    def _constant_amount(self, value: sv.SymInt) -> Optional[int]:
        """Decode a shift amount if all bits are constant (unsigned)."""
        bits = []
        for bit in value.bits:
            known = bit_value(self._backend, bit)
            if known is None:
                return None
            bits.append(known)
        return bv.to_int(bits, signed=False)

    def _unary(self, node: ex.Unary) -> sv.SymValue:
        backend = self._backend
        operand = self._memo[node.operand]
        if node.op == "not":
            assert isinstance(operand, sv.SymBool)
            return sv.SymBool(backend.not_(operand.bit))
        assert isinstance(operand, sv.SymInt)
        int_type = operand.type
        assert isinstance(int_type, ty.IntType)
        if node.op == "bnot":
            return sv.SymInt(int_type, bv.bitwise_not(backend, operand.bits))
        if node.op == "neg":
            return sv.SymInt(int_type, bv.negate(backend, operand.bits))
        raise ZenEvaluationError(f"unknown unary op {node.op}")
