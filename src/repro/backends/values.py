"""Symbolic values: the bit-level shadow of every Zen type.

A symbolic value mirrors the structure of its Zen type with backend
bits at the leaves.  Lists use the bounded representation from the
paper (§6 "Composite data structures"): a vector of cells, each with a
presence guard, guards monotone by construction (cell i present implies
cell i-1 present).  Options are a flag plus a payload, exactly the
class-with-flag-and-value representation §5 describes.

This module also implements the type-driven *merge* operation
(Rosette-style, §6): ``ite`` over two structured values pushes the
condition down to the bit leaves, padding list representations to a
common shape.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ZenEvaluationError, ZenTypeError
from ..lang import types as ty
from . import bitvector as bv
from .interface import Bit, BoolBackend, Model, const_bit


class SymValue:
    """Base class of symbolic values."""

    __slots__ = ("type",)

    def __init__(self, zen_type: ty.ZenType):
        self.type = zen_type


class SymBool(SymValue):
    """A symbolic Boolean: one bit."""

    __slots__ = ("bit",)

    def __init__(self, bit: Bit):
        super().__init__(ty.BOOL)
        self.bit = bit


class SymInt(SymValue):
    """A symbolic fixed-width integer: a bit vector, LSB first."""

    __slots__ = ("bits",)

    def __init__(self, zen_type: ty.IntType, bits: Sequence[Bit]):
        if len(bits) != zen_type.width:
            raise ZenEvaluationError(
                f"bit width mismatch for {zen_type}: {len(bits)}"
            )
        super().__init__(zen_type)
        self.bits = list(bits)


class SymTuple(SymValue):
    """A symbolic tuple."""

    __slots__ = ("items",)

    def __init__(self, zen_type: ty.TupleType, items: Sequence[SymValue]):
        super().__init__(zen_type)
        self.items = list(items)


class SymObject(SymValue):
    """A symbolic record."""

    __slots__ = ("fields",)

    def __init__(self, zen_type: ty.ObjectType, fields: Dict[str, SymValue]):
        super().__init__(zen_type)
        self.fields = dict(fields)


class SymOption(SymValue):
    """A symbolic option: flag bit + payload value."""

    __slots__ = ("has", "val")

    def __init__(self, zen_type: ty.OptionType, has: Bit, val: SymValue):
        super().__init__(zen_type)
        self.has = has
        self.val = val


class SymList(SymValue):
    """A bounded symbolic list: (guard, element) cells.

    Invariant: guards are monotone (a present cell never follows an
    absent one) for every feasible assignment.  All constructors in
    this module preserve the invariant.
    """

    __slots__ = ("cells",)

    def __init__(
        self, zen_type: ty.ListType, cells: Sequence[Tuple[Bit, SymValue]]
    ):
        super().__init__(zen_type)
        self.cells = list(cells)


class SymMap(SymValue):
    """A symbolic map: a list of key/value pairs, most recent first."""

    __slots__ = ("backing",)

    def __init__(self, zen_type: ty.MapType, backing: SymList):
        super().__init__(zen_type)
        self.backing = backing


# ----------------------------------------------------------------------
# Construction from constants and fresh inputs
# ----------------------------------------------------------------------


def from_constant(
    backend: BoolBackend, zen_type: ty.ZenType, value: Any
) -> SymValue:
    """Encode a concrete Python value as a symbolic value."""
    if isinstance(zen_type, ty.BoolType):
        return SymBool(const_bit(backend, bool(value)))
    if isinstance(zen_type, ty.IntType):
        return SymInt(
            zen_type, bv.const_vector(backend, value, zen_type.width)
        )
    if isinstance(zen_type, ty.TupleType):
        return SymTuple(
            zen_type,
            [
                from_constant(backend, t, v)
                for t, v in zip(zen_type.elements, value)
            ],
        )
    if isinstance(zen_type, ty.ObjectType):
        return SymObject(
            zen_type,
            {
                name: from_constant(backend, t, getattr(value, name))
                for name, t in zen_type.fields.items()
            },
        )
    if isinstance(zen_type, ty.OptionType):
        if value is None:
            return SymOption(
                zen_type,
                backend.false(),
                default(backend, zen_type.element),
            )
        return SymOption(
            zen_type,
            backend.true(),
            from_constant(backend, zen_type.element, value),
        )
    if isinstance(zen_type, ty.ListType):
        cells = [
            (backend.true(), from_constant(backend, zen_type.element, item))
            for item in value
        ]
        return SymList(zen_type, cells)
    if isinstance(zen_type, ty.MapType):
        pairs = list(value.items())
        pairs.reverse()  # most recent insertion first
        backing = from_constant(
            backend, zen_type.adapted(), [tuple(p) for p in pairs]
        )
        return SymMap(zen_type, backing)  # type: ignore[arg-type]
    raise ZenTypeError(f"cannot encode constants of type {zen_type}")


def default(backend: BoolBackend, zen_type: ty.ZenType) -> SymValue:
    """The all-zeros symbolic value of a type."""
    return from_constant(backend, zen_type, ty.default_value(zen_type))


def fresh(
    backend: BoolBackend,
    zen_type: ty.ZenType,
    name: str,
    max_list_length: int,
) -> SymValue:
    """Allocate a fresh symbolic input of the given type.

    Lists get `max_list_length` cells whose guards are products of
    fresh bits, making them monotone by construction.
    """
    if isinstance(zen_type, ty.BoolType):
        return SymBool(backend.fresh(name))
    if isinstance(zen_type, ty.IntType):
        # Allocate most-significant bit first: IP prefixes and numeric
        # ranges then constrain a *leading* block of decision levels,
        # which keeps BDD encodings trie-like and compact.  The bits
        # list itself stays LSB-first.
        bits = [
            backend.fresh(f"{name}.{i}")
            for i in reversed(range(zen_type.width))
        ]
        bits.reverse()
        return SymInt(zen_type, bits)
    if isinstance(zen_type, ty.TupleType):
        return SymTuple(
            zen_type,
            [
                fresh(backend, t, f"{name}.{i}", max_list_length)
                for i, t in enumerate(zen_type.elements)
            ],
        )
    if isinstance(zen_type, ty.ObjectType):
        return SymObject(
            zen_type,
            {
                fname: fresh(backend, t, f"{name}.{fname}", max_list_length)
                for fname, t in zen_type.fields.items()
            },
        )
    if isinstance(zen_type, ty.OptionType):
        has = backend.fresh(f"{name}.has")
        val = fresh(backend, zen_type.element, f"{name}.val", max_list_length)
        return SymOption(zen_type, has, val)
    if isinstance(zen_type, ty.ListType):
        cells: List[Tuple[Bit, SymValue]] = []
        guard = backend.true()
        for i in range(max_list_length):
            guard = backend.and_(guard, backend.fresh(f"{name}.len>{i}"))
            element = fresh(
                backend, zen_type.element, f"{name}[{i}]", max_list_length
            )
            cells.append((guard, element))
        return SymList(zen_type, cells)
    if isinstance(zen_type, ty.MapType):
        backing = fresh(
            backend, zen_type.adapted(), f"{name}.entries", max_list_length
        )
        return SymMap(zen_type, backing)  # type: ignore[arg-type]
    raise ZenTypeError(f"cannot create symbolic inputs of type {zen_type}")


# ----------------------------------------------------------------------
# Type-driven merging (ite over structured values)
# ----------------------------------------------------------------------


def merge(
    backend: BoolBackend, cond: Bit, then: SymValue, orelse: SymValue
) -> SymValue:
    """``ite(cond, then, orelse)`` pushed down to the bit leaves."""
    if backend.is_true(cond):
        return then
    if backend.is_false(cond):
        return orelse
    if then.type != orelse.type:
        raise ZenEvaluationError(
            f"merge type mismatch: {then.type} vs {orelse.type}"
        )
    if isinstance(then, SymBool):
        return SymBool(backend.ite(cond, then.bit, orelse.bit))
    if isinstance(then, SymInt):
        return SymInt(
            then.type,  # type: ignore[arg-type]
            [
                backend.ite(cond, a, b)
                for a, b in zip(then.bits, orelse.bits)
            ],
        )
    if isinstance(then, SymTuple):
        return SymTuple(
            then.type,  # type: ignore[arg-type]
            [
                merge(backend, cond, a, b)
                for a, b in zip(then.items, orelse.items)
            ],
        )
    if isinstance(then, SymObject):
        return SymObject(
            then.type,  # type: ignore[arg-type]
            {
                name: merge(backend, cond, then.fields[name], orelse.fields[name])
                for name in then.fields
            },
        )
    if isinstance(then, SymOption):
        return SymOption(
            then.type,  # type: ignore[arg-type]
            backend.ite(cond, then.has, orelse.has),
            merge(backend, cond, then.val, orelse.val),
        )
    if isinstance(then, SymList):
        a_cells, b_cells = _pad_cells(backend, then, orelse)
        cells = [
            (
                backend.ite(cond, ga, gb),
                merge(backend, cond, va, vb),
            )
            for (ga, va), (gb, vb) in zip(a_cells, b_cells)
        ]
        return SymList(then.type, cells)  # type: ignore[arg-type]
    if isinstance(then, SymMap):
        merged = merge(backend, cond, then.backing, orelse.backing)
        return SymMap(then.type, merged)  # type: ignore[arg-type]
    raise ZenEvaluationError(f"cannot merge values of type {then.type}")


def _pad_cells(backend: BoolBackend, a: SymList, b: SymList):
    """Extend both cell vectors to a common length with absent cells."""
    element = a.type.element  # type: ignore[attr-defined]
    size = max(len(a.cells), len(b.cells))
    pad = lambda cells: list(cells) + [
        (backend.false(), default(backend, element))
        for _ in range(size - len(cells))
    ]
    return pad(a.cells), pad(b.cells)


# ----------------------------------------------------------------------
# Structural equality
# ----------------------------------------------------------------------


def equal(backend: BoolBackend, a: SymValue, b: SymValue) -> Bit:
    """Structural equality of two symbolic values (one bit)."""
    if a.type != b.type:
        raise ZenEvaluationError(f"cannot compare {a.type} with {b.type}")
    if isinstance(a, SymBool):
        return backend.iff(a.bit, b.bit)
    if isinstance(a, SymInt):
        return bv.equal(backend, a.bits, b.bits)
    if isinstance(a, SymTuple):
        bits = [
            equal(backend, x, y) for x, y in zip(a.items, b.items)
        ]
        return _and_many(backend, bits)
    if isinstance(a, SymObject):
        bits = [
            equal(backend, a.fields[name], b.fields[name])
            for name in a.fields
        ]
        return _and_many(backend, bits)
    if isinstance(a, SymOption):
        same_flag = backend.iff(a.has, b.has)
        payload = backend.or_(
            backend.not_(a.has), equal(backend, a.val, b.val)
        )
        return backend.and_(same_flag, payload)
    if isinstance(a, SymList):
        a_cells, b_cells = _pad_cells(backend, a, b)
        result = backend.true()
        for (ga, va), (gb, vb) in zip(a_cells, b_cells):
            same_guard = backend.iff(ga, gb)
            same_val = backend.or_(
                backend.not_(ga), equal(backend, va, vb)
            )
            result = backend.and_(
                result, backend.and_(same_guard, same_val)
            )
        return result
    if isinstance(a, SymMap):
        # Maps compare by representation (entry lists), which matches
        # how the adapted encoding behaves in the paper's implementation.
        return equal(backend, a.backing, b.backing)
    raise ZenEvaluationError(f"cannot compare values of type {a.type}")


def _and_many(backend: BoolBackend, bits: Sequence[Bit]) -> Bit:
    result = backend.true()
    for bit in bits:
        result = backend.and_(result, bit)
    return result


# ----------------------------------------------------------------------
# Decoding models back to Python values
# ----------------------------------------------------------------------


def decode(model: Model, value: SymValue) -> Any:
    """Read a symbolic value back as a concrete Python value."""
    if isinstance(value, SymBool):
        return model.value(value.bit)
    if isinstance(value, SymInt):
        bits = [model.value(b) for b in value.bits]
        return bv.to_int(bits, value.type.signed)  # type: ignore[attr-defined]
    if isinstance(value, SymTuple):
        return tuple(decode(model, item) for item in value.items)
    if isinstance(value, SymObject):
        cls = value.type.cls  # type: ignore[attr-defined]
        return cls(
            **{name: decode(model, v) for name, v in value.fields.items()}
        )
    if isinstance(value, SymOption):
        if not model.value(value.has):
            return None
        return decode(model, value.val)
    if isinstance(value, SymList):
        items = []
        for guard, element in value.cells:
            if not model.value(guard):
                break
            items.append(decode(model, element))
        return items
    if isinstance(value, SymMap):
        entries = decode(model, value.backing)
        result: Dict[Any, Any] = {}
        for key, val in reversed(entries):  # head of list wins
            result[key] = val
        return result
    raise ZenEvaluationError(f"cannot decode values of type {value.type}")


def input_bits(value: SymValue) -> List[Bit]:
    """All bits of a symbolic value, in a deterministic order."""
    out: List[Bit] = []
    _collect_bits(value, out)
    return out


def walk_allocation_bits(value: SymValue) -> List[Bit]:
    """Bits of a value in :func:`fresh`'s allocation-call order.

    For any two values of the same type (and list shape), position k
    of this walk corresponds to the same structural slot — in
    particular, to the k-th ``fresh`` call made when building an input
    of that type.  Used by the transformer ordering analysis to pair
    output bits with the input variables they depend on.
    """
    out: List[Bit] = []
    _walk_alloc(value, out)
    return out


def _walk_alloc(value: SymValue, out: List[Bit]) -> None:
    if isinstance(value, SymBool):
        out.append(value.bit)
    elif isinstance(value, SymInt):
        # fresh allocates integers most-significant bit first.
        out.extend(reversed(value.bits))
    elif isinstance(value, SymTuple):
        for item in value.items:
            _walk_alloc(item, out)
    elif isinstance(value, SymObject):
        for name in value.fields:  # declaration order, like fresh
            _walk_alloc(value.fields[name], out)
    elif isinstance(value, SymOption):
        out.append(value.has)
        _walk_alloc(value.val, out)
    elif isinstance(value, SymList):
        for guard, element in value.cells:
            out.append(guard)
            _walk_alloc(element, out)
    elif isinstance(value, SymMap):
        _walk_alloc(value.backing, out)
    else:
        raise ZenEvaluationError(f"unknown symbolic value {value!r}")


def _collect_bits(value: SymValue, out: List[Bit]) -> None:
    if isinstance(value, SymBool):
        out.append(value.bit)
    elif isinstance(value, SymInt):
        out.extend(value.bits)
    elif isinstance(value, SymTuple):
        for item in value.items:
            _collect_bits(item, out)
    elif isinstance(value, SymObject):
        for name in sorted(value.fields):
            _collect_bits(value.fields[name], out)
    elif isinstance(value, SymOption):
        out.append(value.has)
        _collect_bits(value.val, out)
    elif isinstance(value, SymList):
        for guard, element in value.cells:
            out.append(guard)
            _collect_bits(element, out)
    elif isinstance(value, SymMap):
        _collect_bits(value.backing, out)
    else:
        raise ZenEvaluationError(f"unknown symbolic value {value!r}")
