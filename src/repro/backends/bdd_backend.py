"""The BDD backend: bits are BDD nodes; solving is a sat-path walk.

Fresh inputs append variables to the manager's order, so callers that
care about interleaving (the transformer machinery, §6) pre-allocate
inputs in their preferred order simply by the sequence of ``fresh``
calls.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bdd import FALSE, TRUE, Bdd
from ..telemetry.spans import span
from .interface import Bit


class BddModel:
    """A satisfying assignment over BDD variables."""

    def __init__(self, manager: Bdd, assignment: Dict[int, bool]):
        self._manager = manager
        self._assignment = assignment

    def value(self, bit: Bit) -> bool:
        """Value of a bit under the model.

        Works for plain variable nodes and for composite nodes (e.g.
        the derived presence guards of symbolic lists) by evaluating
        the node under the assignment; unassigned variables read as
        False, consistent with how partial sat-paths are totalized.
        """
        return self._manager.evaluate(bit, self._assignment)


class BddBackend:
    """Boolean backend over the ROBDD manager."""

    #: Stable backend identifier used by the fallback ladder, the
    #: query service's circuit breakers, and attempt records.
    name = "bdd"

    def __init__(self, manager: Optional[Bdd] = None) -> None:
        self._manager = manager if manager is not None else Bdd()
        self._var_names: Dict[int, str] = {}

    @property
    def manager(self) -> Bdd:
        """The underlying BDD manager."""
        return self._manager

    def set_budget(self, budget) -> None:
        """Install (or clear) a budget meter on the manager.

        BDD queries spend their time *building* the constraint (the
        solve itself is a linear sat-path walk), so the meter lives on
        the manager where every kernel checkpoints against it.
        """
        self._manager.set_budget(budget)

    @property
    def budget(self):
        """The installed budget meter, or None."""
        return self._manager.budget

    def true(self) -> Bit:
        return TRUE

    def false(self) -> Bit:
        return FALSE

    def fresh(self, name: str) -> Bit:
        node = self._manager.new_var()
        self._var_names[self._manager.num_vars - 1] = name
        return node

    def and_(self, a: Bit, b: Bit) -> Bit:
        return self._manager.and_(a, b)

    def or_(self, a: Bit, b: Bit) -> Bit:
        return self._manager.or_(a, b)

    def not_(self, a: Bit) -> Bit:
        return self._manager.not_(a)

    def xor(self, a: Bit, b: Bit) -> Bit:
        return self._manager.xor(a, b)

    def iff(self, a: Bit, b: Bit) -> Bit:
        return self._manager.iff(a, b)

    def ite(self, c: Bit, t: Bit, e: Bit) -> Bit:
        return self._manager.ite(c, t, e)

    def is_true(self, a: Bit) -> bool:
        return a == TRUE

    def is_false(self, a: Bit) -> bool:
        return a == FALSE

    def solve(self, constraint: Bit) -> Optional[BddModel]:
        """Walk a satisfying path through the constraint BDD."""
        with span("bdd.any_sat"):
            assignment = self._manager.any_sat(constraint)
        if assignment is None:
            return None
        meter = self._manager.budget
        if meter is not None:
            meter.on_model()
        return BddModel(self._manager, assignment)
