"""repro (PyZen): a compositional network modeling and verification
framework.

A Python reproduction of "A General Framework for Compositional
Network Modeling" (Beckett & Mahajan, HotNets 2020).  Network
functionality is modeled as ordinary Python functions over ``Zen``
values; the same model then supports concrete simulation, bounded
model checking with SAT or BDD backends, state-set transformer
analyses (HSA-style), test input generation, and extraction of an
executable implementation.

Quickstart::

    from dataclasses import dataclass
    from repro import UInt, Zen, ZenFunction, register_object, if_

    @register_object
    @dataclass(frozen=True)
    class Header:
        dst_ip: UInt
        src_ip: UInt

    def blocked(h: Zen) -> Zen:
        return (h.dst_ip & 0xFFFFFF00) == 0x0A000100

    f = ZenFunction(blocked, [Header])
    example = f.find()          # a header hitting the filter
    assert f.evaluate(example)  # replays concretely
"""

from .core import (
    DEFAULT_MAX_LIST_LENGTH,
    Budget,
    BudgetMeter,
    InputSuite,
    QueryResult,
    RungFailure,
    StateSet,
    StateSetTransformer,
    TransformerContext,
    ZenFunction,
    compile_function,
    default_context,
    generate_inputs,
    reset_default_context,
    solve_with_fallback,
    zen_function,
)
from .errors import (
    ZenArityError,
    ZenBackendDisagreement,
    ZenBudgetExceeded,
    ZenCircuitOpen,
    ZenDepthError,
    ZenError,
    ZenEvaluationError,
    ZenQueryFailed,
    ZenQueryTimeout,
    ZenServiceError,
    ZenSolverError,
    ZenTypeError,
    ZenUnsoundResultError,
    ZenUnsupportedError,
    ZenWorkerCrash,
)
from .service import (
    AttemptRecord,
    CircuitBreaker,
    QueryEngine,
    QuerySpec,
    ServiceResult,
)
from .telemetry import (
    METRICS,
    TRACER,
    MetricsRegistry,
    QueryProfile,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
    write_chrome_trace,
)
from .lang import (
    BOOL,
    BYTE,
    INT,
    LONG,
    SBYTE,
    SHORT,
    UINT,
    ULONG,
    USHORT,
    Bool,
    Byte,
    Int,
    Long,
    SByte,
    Short,
    UInt,
    ULong,
    UShort,
    Zen,
    ZList,
    ZMap,
    ZOption,
    ZPair,
    cons,
    constant,
    create,
    empty_list,
    if_,
    lift,
    none,
    pair,
    register_object,
    some,
    symbolic,
    zen_list,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core API
    "ZenFunction",
    "zen_function",
    "StateSet",
    "StateSetTransformer",
    "TransformerContext",
    "default_context",
    "reset_default_context",
    "generate_inputs",
    "compile_function",
    "DEFAULT_MAX_LIST_LENGTH",
    # resource governance
    "Budget",
    "BudgetMeter",
    "QueryResult",
    "RungFailure",
    "solve_with_fallback",
    "InputSuite",
    # fault-isolated query service
    "QueryEngine",
    "QuerySpec",
    "ServiceResult",
    "AttemptRecord",
    "CircuitBreaker",
    # telemetry
    "TRACER",
    "METRICS",
    "Tracer",
    "Span",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "write_chrome_trace",
    "MetricsRegistry",
    "QueryProfile",
    # language
    "Zen",
    "if_",
    "lift",
    "constant",
    "symbolic",
    "create",
    "pair",
    "some",
    "none",
    "empty_list",
    "cons",
    "zen_list",
    "register_object",
    # type markers
    "Bool",
    "Byte",
    "SByte",
    "Short",
    "UShort",
    "Int",
    "UInt",
    "Long",
    "ULong",
    "ZList",
    "ZOption",
    "ZPair",
    "ZMap",
    "BOOL",
    "BYTE",
    "SBYTE",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    # errors
    "ZenError",
    "ZenTypeError",
    "ZenArityError",
    "ZenSolverError",
    "ZenEvaluationError",
    "ZenUnsupportedError",
    "ZenDepthError",
    "ZenBudgetExceeded",
    "ZenUnsoundResultError",
    "ZenServiceError",
    "ZenWorkerCrash",
    "ZenQueryTimeout",
    "ZenCircuitOpen",
    "ZenQueryFailed",
    "ZenBackendDisagreement",
]
