"""Benchmark overload protection: goodput and tail latency under storms.

Drives the :mod:`repro.service.chaos` storm harness at 2x / 5x / 10x
of pool capacity and records, per overload factor:

* ``goodput_qps`` — completed queries per second of wall clock (the
  admission controller's job is to keep this pinned near capacity no
  matter the arrival rate);
* ``baseline_p99_ms`` / per-priority ``p99_ms`` — unloaded
  interactive p99 measured first on a warm pool, then the same
  percentile per priority class during the storm.
  ``interactive_p99_ratio`` is the acceptance number: interactive
  tail latency divided by the unloaded baseline;
* ``shed_fraction`` / ``reject_fraction`` — how much admitted work
  was load-shed and how many arrivals were fast-rejected at the door
  (structured backpressure, never hangs);
* ``brownout`` entry/recovery and ``recovery_s``;
* ``hedge_win_rate`` — 0 in the storm rows (hedging pauses under
  brownout, exactly as designed); a dedicated cold-start row
  demonstrates the hedge path winning and its accounting.

Emits ``BENCH_overload.json`` in the shared ``BENCH_*.json`` schema
(``benchmarks/report.py --check-bench`` validates it).

Usage:  PYTHONPATH=src python benchmarks/bench_overload.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

from repro.service import QueryEngine, QuerySpec
from repro.service.chaos import OverloadScenario, percentile, run_overload

COLD_START = "repro.service.chaos:cold_start_ms"


def storm_row(overload: float, quick: bool, bundle_dir=None) -> dict:
    scenario = OverloadScenario(
        overload=overload,
        pool_size=2 if quick else 4,
        duration_s=0.8 if quick else 1.5,
        task_ms=40.0,
        interactive_fraction=0.05,
        batch_fraction=0.55,
        queue_depth=32 if quick else 64,
        brownout_window_s=0.5,
        baseline_queries=15 if quick else 30,
        seed=7,
    )
    engine_kwargs = (
        {"bundle_dir": str(bundle_dir)} if bundle_dir is not None else None
    )
    report = run_overload(scenario, engine_kwargs=engine_kwargs)
    return {
        "scenario": f"storm-{overload:g}x",
        "overload": overload,
        "pool_size": scenario.pool_size,
        "arrival_qps": report["scenario"]["arrival_qps"],
        "capacity_qps": report["scenario"]["capacity_qps"],
        "baseline_p99_ms": report["baseline_p99_ms"],
        "priorities": report["priorities"],
        "goodput_qps": report["goodput_qps"],
        "shed_fraction": report["shed_fraction"],
        "reject_fraction": report["reject_fraction"],
        "interactive_p99_ratio": report["interactive_p99_ratio"],
        "brownout_entered": report["brownout_entered"],
        "recovered": report["recovered"],
        "recovery_s": report["recovery_s"],
        "hedge_win_rate": report["hedge_win_rate"],
        "deadline_expired": report["deadline_expired"],
        "worker_restarts": report["worker_restarts"],
    }


def hedge_row(quick: bool) -> dict:
    """Tail-latency hedging against deterministic cold starts.

    Every query's primary attempt takes the slow path; the hedge
    (launched on the second worker after a fixed delay) takes the
    fast path and wins.  Measures the win rate bookkeeping and the
    p99 improvement hedging buys.
    """
    queries = 10 if quick else 25
    cold_ms, delay_s = 120.0, 0.02
    latencies = []
    with tempfile.TemporaryDirectory() as tmp:
        with QueryEngine(
            pool_size=2,
            hedge=True,
            hedge_after_s=delay_s,
            max_batch_size=1,
        ) as engine:
            # Spawn both workers off-clock.
            engine.run(
                QuerySpec(
                    builder="repro.service.chaos:sleep_ms",
                    kind="call",
                    args=(1.0,),
                    timeout_s=10.0,
                )
            )
            start = time.monotonic()
            for i in range(queries):
                spec = QuerySpec(
                    builder=COLD_START,
                    kind="call",
                    args=(f"{tmp}/q{i}.flag", cold_ms, 1.0),
                    timeout_s=10.0,
                )
                t0 = time.monotonic()
                engine.run(spec)
                latencies.append((time.monotonic() - t0) * 1000.0)
            wall = time.monotonic() - start
            hedge = engine.overload_stats()["hedge"]
    return {
        "scenario": "hedge-cold-start",
        "overload": 0.0,
        "pool_size": 2,
        "arrival_qps": 0.0,
        "capacity_qps": 0.0,
        "baseline_p99_ms": cold_ms,  # the unhedged path by construction
        "priorities": {
            "interactive": {
                "submitted": queries,
                "completed": queries,
                "p99_ms": round(percentile(latencies, 0.99), 2),
            },
            "batch": {"submitted": 0, "completed": 0, "p99_ms": 0.0},
            "fuzz": {"submitted": 0, "completed": 0, "p99_ms": 0.0},
        },
        "goodput_qps": round(queries / wall, 1) if wall else 0.0,
        "shed_fraction": 0.0,
        "reject_fraction": 0.0,
        "interactive_p99_ratio": round(
            percentile(latencies, 0.99) / cold_ms, 2
        ),
        "brownout_entered": False,
        "recovered": True,
        "recovery_s": 0.0,
        "hedge_win_rate": round(
            hedge["won"] / hedge["launched"] if hedge["launched"] else 0.0,
            3,
        ),
        "deadline_expired": 0,
        "worker_restarts": 0,
        "hedge": {
            "launched": hedge["launched"],
            "won": hedge["won"],
            "lost": hedge["lost"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small storms (CI chaos job)"
    )
    parser.add_argument(
        "--overloads", type=float, nargs="+", default=[2.0, 5.0, 10.0],
        help="overload factors (multiples of pool capacity) to sweep",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_overload.json",
    )
    parser.add_argument(
        "--bundle-dir",
        type=Path,
        default=None,
        help="capture flight-recorder debug bundles (brownout entry, "
        "breaker trips, ...) into this directory during the storms",
    )
    args = parser.parse_args()
    if not args.out.parent.is_dir():
        parser.error(f"--out directory does not exist: {args.out.parent}")
    if any(factor <= 0 for factor in args.overloads):
        parser.error("--overloads entries must be > 0")

    results = [
        storm_row(factor, args.quick, bundle_dir=args.bundle_dir)
        for factor in args.overloads
    ]
    results.append(hedge_row(args.quick))

    report = {
        "bench": "overload",
        "quick": args.quick,
        "python": platform.python_version(),
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"{'scenario':>16} {'pool':>5} {'goodput':>8} {'shed%':>6}"
        f" {'rej%':>6} {'i_p99':>8} {'ratio':>6} {'brownout':>9}"
        f" {'recov_s':>8} {'hedge_win':>9}"
    )
    for row in results:
        interactive = row["priorities"]["interactive"]
        print(
            f"{row['scenario']:>16} {row['pool_size']:>5}"
            f" {row['goodput_qps']:>8.1f}"
            f" {row['shed_fraction'] * 100:>6.1f}"
            f" {row['reject_fraction'] * 100:>6.1f}"
            f" {interactive['p99_ms']:>8.1f}"
            f" {row['interactive_p99_ratio']:>6.2f}"
            f" {str(row['brownout_entered']):>9}"
            f" {str(row['recovery_s']):>8}"
            f" {row['hedge_win_rate']:>9.2f}"
        )
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
