"""Microbenchmarks for the BDD kernels (perf trajectory tracking).

Compares the dedicated kernels against the seed formulations they
replaced:

* ``apply_and``        — `and_(f, g)` kernel vs the seed's 3-operand
  detour ``ite(f, g, FALSE)``;
* ``commutative_cache``— `and_(b, a)` after `and_(a, b)` (one shared
  cache entry) vs the seed's order-sensitive ``ite`` cache;
* ``and_many``         — balanced-tree reduction vs a linear fold;
* ``relational_product`` — the fused `and_exists(S, R, X)` vs
  materializing the conjunction and quantifying it;
* ``transformer_image``— end-to-end `transform_forward` on an ACL
  model (the paper's transformer hot path), with the manager's
  op-level stats attached.

The manager's own `ite` now normalizes terminal-branch triples into
the binary kernels, so ``ite(f, g, FALSE)`` is `and_(f, g)` down to
the cache entry — the seed formulation no longer exists in the
engine.  The baseline is therefore :class:`SeedIte`, a faithful
replica of the seed kernel (iterative two-phase expansion over one
order-sensitive 3-operand cache).

Emits ``BENCH_micro_bdd.json`` so successive PRs can compare numbers.

Usage:  PYTHONPATH=src python benchmarks/bench_micro_bdd.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro import ZenFunction
from repro.bdd import FALSE, Bdd
from repro.core.transformers import TransformerContext
from repro.network import Header, acl_match_line
from repro.workloads import random_acl

SEED = 2020


class SeedIte:
    """Frozen replica of the seed manager's ``ite`` kernel.

    The live engine now rewrites terminal-branch triples into the
    binary apply kernels, so ``manager.ite(f, g, FALSE)`` and
    ``manager.and_(f, g)`` execute identical code and share one cache
    — useless as a baseline.  This is a faithful port of the kernel
    the seed shipped (``git show <seed>:src/repro/bdd/manager.py``):
    iterative two-phase expansion, one order-sensitive 3-operand
    cache, inline unique-table insertion, no delegation and no
    commutative key normalization.  It reads the live manager's node
    arrays directly so both sides of a comparison share a unique
    table.
    """

    def __init__(self, manager: Bdd) -> None:
        self.manager = manager
        self.cache: dict = {}

    def clear_cache(self) -> None:
        self.cache.clear()

    def __call__(self, f: int, g: int, h: int) -> int:
        manager = self.manager
        levels = manager._level
        lows = manager._low
        highs = manager._high
        unique = manager._unique
        cache = self.cache
        expand = [(f, g, h)]
        phase = [0]
        keys: list = [None]
        results: list = []
        while expand:
            task = expand.pop()
            ph = phase.pop()
            key = keys.pop()
            if ph == 1:
                high = results.pop()
                low = results.pop()
                lv = task
                if low == high:
                    node = low
                else:
                    ukey = (lv, low, high)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(levels)
                        levels.append(lv)
                        lows.append(low)
                        highs.append(high)
                        unique[ukey] = node
                cache[key] = node
                results.append(node)
                continue
            tf, tg, th = task
            if tf == 1:
                results.append(tg)
                continue
            if tf == 0:
                results.append(th)
                continue
            if tg == th:
                results.append(tg)
                continue
            if tg == 1 and th == 0:
                results.append(tf)
                continue
            ckey = (tf, tg, th)
            cached = cache.get(ckey)
            if cached is not None:
                results.append(cached)
                continue
            lf, lg, lh = levels[tf], levels[tg], levels[th]
            lv = lf if lf < lg else lg
            if lh < lv:
                lv = lh
            f0, f1 = (lows[tf], highs[tf]) if lf == lv else (tf, tf)
            g0, g1 = (lows[tg], highs[tg]) if lg == lv else (tg, tg)
            h0, h1 = (lows[th], highs[th]) if lh == lv else (th, th)
            expand.append(lv)
            phase.append(1)
            keys.append(ckey)
            expand.append((f1, g1, h1))
            phase.append(0)
            keys.append(None)
            expand.append((f0, g0, h0))
            phase.append(0)
            keys.append(None)
        return results[-1]


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def random_formula(manager: Bdd, rng: random.Random, depth: int) -> int:
    """A random formula over the manager's existing variables."""
    if depth == 0:
        index = rng.randrange(manager.num_vars)
        return manager.var(index) if rng.random() < 0.5 else manager.nvar(index)
    left = random_formula(manager, rng, depth - 1)
    right = random_formula(manager, rng, depth - 1)
    op = rng.randrange(3)
    if op == 0:
        return manager.and_(left, right)
    if op == 1:
        return manager.or_(left, right)
    return manager.xor(left, right)


def bench_apply_vs_ite(num_vars: int, pairs: int, repeats: int) -> dict:
    """Dedicated and-kernel vs the seed's ``ite(f, g, FALSE)`` detour.

    Both formulations run on one shared manager (same unique table,
    caches cleared before every timed pass) so allocator warm-up does
    not bias either side.  The seed side is the :class:`SeedIte`
    replica — the live ``ite`` would just delegate to ``and_``.
    """
    manager = Bdd()
    manager.new_vars(num_vars)
    seed_ite = SeedIte(manager)
    rng = random.Random(SEED)
    operands = [
        (random_formula(manager, rng, 4), random_formula(manager, rng, 4))
        for _ in range(pairs)
    ]
    for f, g in operands:  # sanity: the replica agrees with the kernel
        assert seed_ite(f, g, FALSE) == manager.and_(f, g)

    def run(use_apply: bool) -> float:
        def pass_() -> None:
            manager.clear_cache()
            seed_ite.clear_cache()
            for f, g in operands:
                if use_apply:
                    manager.and_(f, g)
                else:
                    seed_ite(f, g, FALSE)

        pass_()  # warm the unique table with the result nodes
        return best_of(pass_, repeats)

    return {
        "name": "apply_and",
        "vars": num_vars,
        "pairs": pairs,
        "apply_ms": run(True) * 1000,
        "ite_ms": run(False) * 1000,
    }


def bench_commutative_cache(num_vars: int, pairs: int, repeats: int) -> dict:
    """Reversed-operand re-query: apply cache hits, seed ite misses.

    The apply kernels key caches on ``(min(f, g), max(f, g))``, so
    ``and_(g, f)`` after ``and_(f, g)`` is one cache probe.  The seed
    kernel's ``(f, g, h)`` key re-descends the whole reversed call.
    """
    manager = Bdd()
    manager.new_vars(num_vars)
    seed_ite = SeedIte(manager)
    rng = random.Random(SEED)
    operands = [
        (random_formula(manager, rng, 5), random_formula(manager, rng, 5))
        for _ in range(pairs)
    ]

    def forward_then_reversed(use_apply: bool) -> float:
        def run() -> None:
            manager.clear_cache()
            seed_ite.clear_cache()
            for f, g in operands:
                if use_apply:
                    manager.and_(f, g)
                    manager.and_(g, f)
                else:
                    seed_ite(f, g, FALSE)
                    seed_ite(g, f, FALSE)

        return best_of(run, repeats)

    manager.reset_stats()
    apply_ms = forward_then_reversed(True) * 1000
    stats = manager.stats()
    return {
        "name": "commutative_cache",
        "vars": num_vars,
        "pairs": pairs,
        "apply_ms": apply_ms,
        "ite_ms": forward_then_reversed(False) * 1000,
        "apply_hit_rate": round(stats.hit_rate("and"), 4),
    }


def bench_and_many(conjuncts_count: int, repeats: int) -> dict:
    """Balanced n-ary conjunction vs the seed's linear fold.

    The workload mirrors the Batfish-baseline consumer: each conjunct
    is a cube over its own field block (what ``rule_bdd`` conjoins per
    ACL rule).  A linear fold re-walks the ever-growing accumulator
    for every conjunct — O(n^2) node visits — where the balanced tree
    combines equal-sized halves, O(n log n).
    """
    block = 4
    manager = Bdd()
    manager.new_vars(conjuncts_count * block)
    rng = random.Random(SEED)
    conjuncts = [
        manager.cube(
            {i * block + j: rng.random() < 0.5 for j in range(block)}
        )
        for i in range(conjuncts_count)
    ]
    rng.shuffle(conjuncts)

    def balanced() -> None:
        manager.clear_cache()
        manager.and_many(conjuncts)

    def linear() -> None:
        manager.clear_cache()
        result = 1
        for node in conjuncts:
            result = manager.and_(result, node)

    return {
        "name": "and_many",
        "conjuncts": len(conjuncts),
        "balanced_ms": best_of(balanced, repeats) * 1000,
        "linear_ms": best_of(linear, repeats) * 1000,
    }


def bench_relational_product(width: int, repeats: int) -> dict:
    """Fused and_exists vs materializing the conjunction.

    The composition shape: ``left(x, aux) AND right(aux, y)`` with the
    middle block quantified away — exactly what transformer
    composition computes.  The three-way conjunction is much larger
    than either operand or the result, which is where fusion pays.
    """
    manager = Bdd()
    manager.new_vars(3 * width)
    x_levels = [3 * i for i in range(width)]
    aux_levels = [3 * i + 1 for i in range(width)]
    y_levels = [3 * i + 2 for i in range(width)]
    rng = random.Random(SEED)
    left = manager.and_many(
        manager.iff(
            manager.var(aux_levels[i]),
            manager.xor(
                manager.var(x_levels[i]),
                manager.var(x_levels[rng.randrange(width)]),
            ),
        )
        for i in range(width)
    )
    right = manager.and_many(
        manager.iff(
            manager.var(y_levels[i]),
            manager.xor(
                manager.var(aux_levels[i]),
                manager.var(aux_levels[rng.randrange(width)]),
            ),
        )
        for i in range(width)
    )

    seed_ite = SeedIte(manager)

    def fused() -> int:
        manager.clear_cache()
        return manager.and_exists(left, right, aux_levels)

    def unfused() -> int:
        # The seed formulation: conjoin through the ite detour (the
        # SeedIte replica), then quantify the materialized
        # conjunction.  Quantification still uses the live exists, so
        # the row isolates the fusion win, conservatively.
        manager.clear_cache()
        seed_ite.clear_cache()
        conj = seed_ite(left, right, FALSE)
        return manager.exists(conj, aux_levels)

    assert fused() == unfused()
    conj = manager.and_(left, right)
    return {
        "name": "relational_product",
        "width": width,
        "left_nodes": manager.node_count(left),
        "right_nodes": manager.node_count(right),
        "conjunction_nodes": manager.node_count(conj),
        "fused_ms": best_of(fused, repeats) * 1000,
        "unfused_ms": best_of(unfused, repeats) * 1000,
    }


def bench_transformer_image(lines: int, repeats: int) -> dict:
    """End-to-end transformer post-image on an ACL model.

    The input set is non-trivial (a predicate over several header
    fields), so the unfused formulation has a real conjunction to
    materialize.
    """
    acl = random_acl(lines, seed=SEED)
    f = ZenFunction(lambda h: acl_match_line(acl, h), [Header], name="acl")

    context = TransformerContext()
    transformer = f.transformer(context=context)
    predicate = ZenFunction(
        lambda h: (h.dst_port <= 1024)
        & ((h.protocol == 6) | (h.protocol == 17))
        & (h.src_port >= 1024),
        [Header],
        name="interesting",
    )
    input_set = context.from_predicate(predicate)

    # Both formulations start from the same shifted set so the timed
    # region is exactly the image kernel (the conjoin+quantify step
    # transform_forward performs).
    manager = context.manager
    in_space = context.space(transformer.input_type)
    shifted = manager.rename(
        input_set.node, dict(zip(in_space.levels, transformer.in_levels))
    )
    manager.reset_stats()

    def fused() -> None:
        manager.clear_cache()
        manager.and_exists(
            shifted, transformer.relation, transformer.in_levels
        )

    fused_ms = best_of(fused, repeats) * 1000
    stats = manager.stats()

    # Seed formulation: materialize the conjunction through the ite
    # detour (the SeedIte replica), then quantify it — what
    # transform_forward did before the fused kernel and the dedicated
    # apply kernels existed.
    seed_ite = SeedIte(manager)

    def unfused() -> None:
        manager.clear_cache()
        seed_ite.clear_cache()
        conj = seed_ite(shifted, transformer.relation, FALSE)
        manager.exists(conj, transformer.in_levels)

    unfused_ms = best_of(unfused, repeats) * 1000
    return {
        "name": "transformer_image",
        "acl_lines": lines,
        "relation_nodes": manager.node_count(transformer.relation),
        "fused_ms": fused_ms,
        "unfused_ms": unfused_ms,
        "bdd_stats": stats.as_dict(),
    }


def bench_telemetry_overhead(
    num_vars: int, pairs: int, repeats: int, baseline_ms=None
) -> dict:
    """Tracing overhead on the kernel hot path (disabled and enabled).

    The disabled number is the one that matters: instrumentation in
    ``_begin``/``_end`` must cost no more than an attribute read and a
    branch when no tracer is active (the < 5% acceptance bar, checked
    against both the enabled run and — via ``vs_baseline_ms`` from the
    previous ``BENCH_micro_bdd.json`` — the pre-telemetry kernel
    timing).  The enabled number documents the price of a full span
    per outermost op.
    """
    from repro.telemetry import TRACER, disable_tracing, enable_tracing

    manager = Bdd()
    manager.new_vars(num_vars)
    rng = random.Random(SEED)
    operands = [
        (random_formula(manager, rng, 4), random_formula(manager, rng, 4))
        for _ in range(pairs)
    ]

    def pass_() -> None:
        manager.clear_cache()
        for f, g in operands:
            manager.and_(f, g)

    pass_()  # warm the unique table

    def traced_pass() -> None:
        TRACER.reset()  # don't let span trees accumulate across passes
        pass_()

    # Flight-recorder overhead: the always-on per-query obs cost is
    # one bounded-deque append per completed operation (tracing stays
    # disabled — this isolates the recorder itself).  The acceptance
    # bar is < 5% drift vs the plain disabled pass.
    from repro.obs import FlightRecorder

    recorder = FlightRecorder(capacity=256)

    def recorded_pass() -> None:
        manager.clear_cache()
        for f, g in operands:
            manager.and_(f, g)
            recorder.record_attempt(
                {
                    "spec": "bench.and",
                    "kind": "call",
                    "priority": "batch",
                    "ok": True,
                    "outcome": "ok",
                    "latency_s": 0.0,
                    "attempts": 1,
                }
            )

    # Interleave the three variants inside each repeat: run-to-run
    # drift (allocator state, frequency scaling) then hits all three
    # equally instead of biasing whichever block ran last.
    disabled_s = enabled_s = recorder_s = float("inf")
    disable_tracing()
    for _ in range(max(repeats, 5)):
        disabled_s = min(disabled_s, best_of(pass_, 1))
        enable_tracing()
        try:
            enabled_s = min(enabled_s, best_of(traced_pass, 1))
        finally:
            disable_tracing()
            TRACER.reset()
        recorder_s = min(recorder_s, best_of(recorded_pass, 1))
    disabled_ms = disabled_s * 1000
    enabled_ms = enabled_s * 1000
    recorder_ms = recorder_s * 1000

    row = {
        "name": "telemetry_overhead",
        "vars": num_vars,
        "pairs": pairs,
        "disabled_ms": disabled_ms,
        "enabled_ms": enabled_ms,
        "enabled_overhead_pct": round(
            (enabled_ms / disabled_ms - 1.0) * 100, 2
        )
        if disabled_ms
        else 0.0,
        "recorder_ms": recorder_ms,
        "recorder_overhead_pct": round(
            (recorder_ms / disabled_ms - 1.0) * 100, 2
        )
        if disabled_ms
        else 0.0,
    }
    if baseline_ms:
        row["vs_baseline_ms"] = baseline_ms
        row["vs_baseline_pct"] = round(
            (disabled_ms / baseline_ms - 1.0) * 100, 2
        )
    return row


def load_baseline_apply_ms(path: Path, num_vars: int, pairs: int):
    """The prior run's apply_and timing, if it used the same sizes."""
    if not path.is_file():
        return None
    try:
        prior = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    for row in prior.get("results", ()):
        if (
            row.get("name") == "apply_and"
            and row.get("vars") == num_vars
            and row.get("pairs") == pairs
        ):
            return row.get("apply_ms")
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke run)"
    )
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    parser.add_argument("--repeats", type=positive_int, default=3)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_micro_bdd.json",
    )
    args = parser.parse_args()
    if not args.out.parent.is_dir():
        parser.error(f"--out directory does not exist: {args.out.parent}")

    if args.quick:
        sizes = dict(vars=24, pairs=40, many=64, width=10, acl=20)
    else:
        sizes = dict(vars=40, pairs=150, many=192, width=12, acl=60)

    # Read the previous artifact's apply_and timing before overwriting
    # it: the telemetry row reports disabled-mode drift against it.
    baseline_ms = load_baseline_apply_ms(
        args.out, sizes["vars"], sizes["pairs"]
    )

    results = [
        bench_apply_vs_ite(sizes["vars"], sizes["pairs"], args.repeats),
        bench_commutative_cache(sizes["vars"], sizes["pairs"], args.repeats),
        bench_and_many(sizes["many"], args.repeats),
        bench_relational_product(sizes["width"], args.repeats),
        bench_transformer_image(sizes["acl"], args.repeats),
        bench_telemetry_overhead(
            sizes["vars"], sizes["pairs"], args.repeats, baseline_ms
        ),
    ]

    report = {
        "bench": "micro_bdd",
        "quick": args.quick,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'benchmark':>20} {'new_ms':>10} {'seed_ms':>10} {'speedup':>8}")
    pairs = {
        "apply_and": ("apply_ms", "ite_ms"),
        "commutative_cache": ("apply_ms", "ite_ms"),
        "and_many": ("balanced_ms", "linear_ms"),
        "relational_product": ("fused_ms", "unfused_ms"),
        "transformer_image": ("fused_ms", "unfused_ms"),
    }
    for row in results:
        if row["name"] == "telemetry_overhead":
            continue
        new_key, old_key = pairs[row["name"]]
        new, old = row[new_key], row[old_key]
        speedup = old / new if new else float("inf")
        print(f"{row['name']:>20} {new:>10.2f} {old:>10.2f} {speedup:>7.2f}x")

    overhead = results[-1]
    line = (
        f"\ntelemetry: disabled {overhead['disabled_ms']:.2f}ms, "
        f"enabled {overhead['enabled_ms']:.2f}ms "
        f"({overhead['enabled_overhead_pct']:+.1f}%), "
        f"recorder {overhead['recorder_ms']:.2f}ms "
        f"({overhead['recorder_overhead_pct']:+.1f}%)"
    )
    if "vs_baseline_pct" in overhead:
        line += (
            f"; disabled vs previous run "
            f"{overhead['vs_baseline_pct']:+.1f}%"
        )
    print(line)
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
