"""Table 2: lines of code to express common network functionality.

The paper counts the lines of the *Zen model* for each component
(ACLs 28, LPM forwarding 18, route maps 75, GRE tunnels 21) against
the equivalent logic in monolithic tools (>500, >900, >1000).  This
benchmark measures our live source with the same rules — the model
functions only, excluding data-type declarations, blanks, comments
and docstrings — and prints the table.

The "existing systems" column reproduces the paper's citations; those
code bases are not vendored here.
"""

from __future__ import annotations

import inspect
import io
import tokenize

from repro.network import acl as acl_mod
from repro.network import device as device_mod
from repro.network import fib as fib_mod
from repro.network import gre as gre_mod
from repro.network import routemap as rm_mod

PAPER_ROWS = [
    ("Access Control Lists", 28, ">500 [Batfish]"),
    ("LPM-based Forwarding", 18, ">900 [HSA]"),
    ("Route Map Filters", 75, ">1000 [Minesweeper, Bonsai]"),
    ("IP GRE tunnels", 21, "(n/a)"),
]

COMPONENTS = {
    "Access Control Lists": [
        acl_mod.rule_matches,
        acl_mod.acl_allows,
        acl_mod.acl_match_line,
    ],
    "LPM-based Forwarding": [fib_mod.prefix_matches, fib_mod.forward],
    "Route Map Filters": [
        rm_mod.prefix_range_matches,
        rm_mod.clause_matches,
        rm_mod.apply_actions,
        rm_mod.apply_route_map,
        rm_mod.route_map_match_line,
    ],
    "IP GRE tunnels": [gre_mod.encap, gre_mod.decap],
    "Device composition (Fig. 6)": [
        device_mod.effective_header,
        device_mod.fwd_in,
        device_mod.fwd_out,
        device_mod.forward_along_path,
    ],
}


def model_loc(fn) -> int:
    """Count semantic lines of a function: no blanks/comments/docstrings."""
    source = inspect.getsource(fn)
    lines_with_code = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    prev_end = None
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        if tok.type == tokenize.STRING and (
            prev_end is None or tok.start[1] == 0 or _is_docstring(tok, source)
        ):
            # Docstrings: a STRING token that begins a logical line.
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            lines_with_code.add(line)
        prev_end = tok.end
    return len(lines_with_code)


def _is_docstring(tok, source: str) -> bool:
    line = source.splitlines()[tok.start[0] - 1]
    return line.lstrip().startswith(('"""', "'''", 'r"""', "f'''"))


def component_loc(name: str) -> int:
    return sum(model_loc(fn) for fn in COMPONENTS[name])


def test_table2_loc_report(benchmark, capsys):
    """Print the Table 2 reproduction and check the magnitudes."""
    benchmark.group = "table2"
    benchmark.name = "loc_count"
    benchmark(lambda: [component_loc(n) for n, _, _ in PAPER_ROWS])
    print()
    print(f"{'Network Component':<30} {'Zen(paper)':>10} {'ours':>6}  existing")
    for name, paper_loc, existing in PAPER_ROWS:
        ours = component_loc(name)
        print(f"{name:<30} {paper_loc:>10} {ours:>6}  {existing}")
    extra = component_loc("Device composition (Fig. 6)")
    print(f"{'Device composition (Fig. 6)':<30} {'—':>10} {extra:>6}")
    with capsys.disabled():
        pass


def test_acl_model_is_compact(benchmark):
    benchmark.group = "table2"
    benchmark.name = "acl_loc"
    assert benchmark(lambda: component_loc("Access Control Lists")) <= 60


def test_fib_model_is_compact(benchmark):
    benchmark.group = "table2"
    benchmark.name = "fib_loc"
    assert benchmark(lambda: component_loc("LPM-based Forwarding")) <= 30


def test_routemap_model_is_compact(benchmark):
    benchmark.group = "table2"
    benchmark.name = "routemap_loc"
    assert benchmark(lambda: component_loc("Route Map Filters")) <= 120


def test_gre_model_is_compact(benchmark):
    benchmark.group = "table2"
    benchmark.name = "gre_loc"
    assert benchmark(lambda: component_loc("IP GRE tunnels")) <= 35


def test_order_of_magnitude_vs_monoliths(benchmark):
    """The headline claim: ~10x less code than the cited monoliths."""
    benchmark.group = "table2"
    benchmark.name = "order_of_magnitude"
    benchmark(lambda: component_loc("Access Control Lists"))
    assert component_loc("Access Control Lists") * 10 <= 500 + 100
    assert component_loc("LPM-based Forwarding") * 10 <= 900 + 100
    assert component_loc("Route Map Filters") * 10 <= 1000 + 200
