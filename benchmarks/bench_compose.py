"""Benchmark compositional sharding against the monolithic fixpoint.

For each fat-tree fabric (from ``repro.workloads.generators``) this
measures one end-to-end host-to-host reachability query two ways:

* ``monolithic_ms`` — the joint product-machine fixpoint
  (:func:`repro.compose.monolithic_verdict`), once per topology (it
  does not parallelize);
* ``composed_ms`` — :func:`repro.compose.run_composed` with shard
  summaries fanned out across a :class:`repro.service.QueryEngine`
  pool, swept over pool sizes, plus ``recompose_ms`` (the parent-side
  chaining share of that) and ``escalations``.

``speedup`` is ``monolithic_ms / composed_ms`` and ``agreement``
records that both paths returned the same verdict — the differential
claim the fuzz farm checks continuously, restated under benchmark
sizes.  The full run's headline row is the 100+-device k=8 fabric,
where the monolith pays minutes of BDD relation work that the shards
never build.

Emits ``BENCH_compose.json``; ``benchmarks/report.py --check-scaling``
gates on speedup staying monotone (within tolerance) in pool size,
and ``--check-trend`` watches the ``_ms`` fields.

Usage:  PYTHONPATH=src python benchmarks/bench_compose.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.compose import monolithic_verdict, run_composed
from repro.service import QueryEngine
from repro.workloads import fat_tree, fat_tree_hosts, fat_tree_reach_query

POOL_SIZES = (1, 2, 4)


def fabric(k: int, hosts_per_edge: int = 1):
    """A fat-tree and the far-corner host-to-host query over it."""
    topo = fat_tree(k, seed=2020, hosts_per_edge=hosts_per_edge)
    hosts = fat_tree_hosts(k, hosts_per_edge)
    query = fat_tree_reach_query(hosts[0], hosts[-1])
    return topo, query


def bench_topology(name: str, k: int, repeats: int) -> list:
    topo, query = fabric(k)
    devices = len(topo["devices"])
    print(f"{name}: {devices} devices")

    started = time.perf_counter()
    mono = monolithic_verdict(topo, query)
    mono_ms = (time.perf_counter() - started) * 1000.0
    print(f"  monolith: {mono_ms:.0f} ms (reachable={mono.reachable})")

    rows = []
    for pool_size in POOL_SIZES:
        engine = QueryEngine(pool_size=pool_size, retries=1)
        try:
            run_composed(topo, query, engine)  # warm spawn + model caches
            best = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = run_composed(topo, query, engine)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                if best is None or elapsed_ms < best[0]:
                    best = (elapsed_ms, result)
        finally:
            engine.close()
        composed_ms, result = best
        row = {
            "name": name,
            "devices": devices,
            "pool_size": pool_size,
            "shards": result.shard_count,
            "monolithic_ms": round(mono_ms, 3),
            "composed_ms": round(composed_ms, 3),
            "recompose_ms": round(result.recompose_ms, 3),
            "speedup": round(mono_ms / composed_ms, 3),
            "agreement": result.reachable == mono.reachable,
            "escalations": result.escalations,
        }
        rows.append(row)
        print(
            f"  pool={pool_size}: composed {composed_ms:.0f} ms "
            f"({result.shard_count} shards, "
            f"recompose {result.recompose_ms:.0f} ms) "
            f"speedup {row['speedup']:.1f}x "
            f"agreement={row['agreement']}"
        )
        if not row["agreement"]:
            raise SystemExit(
                f"composed/monolithic divergence on {name} "
                f"pool={pool_size}: {result.reachable} vs {mono.reachable}"
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small fabric only (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_compose.json",
    )
    args = parser.parse_args()

    fabrics = [("fat_tree_k4", 4)]
    if not args.quick:
        fabrics.append(("fat_tree_k8", 8))

    results = []
    for name, k in fabrics:
        results.extend(bench_topology(name, k, args.repeats))

    report = {
        "bench": "compose",
        "quick": args.quick,
        "python": platform.python_version(),
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
