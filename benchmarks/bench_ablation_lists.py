"""Ablation: bounded-list encoding cost vs. the list-length bound.

§6 explains that composite structures use "a variable to represent the
list length and another collection of variables to represent the list
elements for different sized lengths", with the maximum length a
parameter of `find`.  This ablation measures how both backends scale
as that bound grows, for a list-heavy route-map query — quantifying
the encoding pressure that makes the SAT backend preferable on data
structures (Figure 10, right).
"""

from __future__ import annotations

import pytest

from repro import ZenFunction
from repro.lang.listops import contains
from repro.network import Route, apply_route_map
from repro.workloads import random_route_map

BOUNDS = [2, 4, 6]
LINES = 20
SEED = 7


def _query(route_map, backend: str, bound: int):
    f = ZenFunction(
        lambda r: apply_route_map(route_map, r), [Route], name="rm"
    )
    return f.find(
        lambda r, out: out.has_value()
        & contains(out.value().communities, 0),
        backend=backend,
        max_list_length=bound,
    )


@pytest.mark.parametrize("bound", BOUNDS)
def test_list_bound_sat(benchmark, bound):
    rm = random_route_map(LINES, seed=SEED)
    benchmark.group = f"ablation-lists-{bound}"
    benchmark.name = "zen_sat"
    benchmark(lambda: _query(rm, "sat", bound))


@pytest.mark.parametrize("bound", BOUNDS)
def test_list_bound_bdd(benchmark, bound):
    rm = random_route_map(LINES, seed=SEED)
    benchmark.group = f"ablation-lists-{bound}"
    benchmark.name = "zen_bdd"
    benchmark(lambda: _query(rm, "bdd", bound))
