"""Figure 3 / §2-§3 (qualitative): composed overlay+underlay analysis.

Measures the composed virtualized-network model end-to-end:

* building and checking the Va->Vb path model on the buggy network
  (must find the cross-layer witness), and
* on the fixed network (must prove absence).

This is the experiment the paper motivates compositional modeling
with; the assertion content matters more than the timing.
"""

from __future__ import annotations

import pytest

from repro import ZenFunction
from repro.network import Packet, forward_along_path
from repro.network.overlay import VA_IP, VB_IP, build_virtual_network


def _query(buggy: bool):
    vn = build_virtual_network(buggy_underlay_acl=buggy)
    f = ZenFunction(
        lambda p: forward_along_path(vn.path_va_to_vb, p),
        [Packet],
        name="va-vb",
    )
    return f.find(
        lambda p, out: (p.overlay_header.dst_ip == VB_IP)
        & (p.overlay_header.src_ip == VA_IP)
        & ~p.underlay_header.has_value()
        & ~out.has_value(),
        backend="sat",
    )


def test_fig3_composed_bug_finding(benchmark):
    benchmark.group = "fig3-composition"
    benchmark.name = "buggy_network_witness"
    witness = benchmark(lambda: _query(True))
    assert witness is not None
    assert witness.overlay_header.dst_port <= 1023


def test_fig3_composed_verification(benchmark):
    benchmark.group = "fig3-composition"
    benchmark.name = "fixed_network_proof"
    witness = benchmark(lambda: _query(False))
    assert witness is None
